//! # tirm-graph
//!
//! Directed social-graph substrate for the `tirm` workspace: a compact
//! compressed-sparse-row (CSR) digraph with both forward and reverse
//! adjacency, deterministic random-graph generators shaped like the four
//! networks used in the paper's evaluation (FLIXSTER, EPINIONS, DBLP,
//! LIVEJOURNAL), edge-list IO, a versioned binary [`snapshot`] format that
//! loads a finished CSR (plus per-topic arc probabilities) without
//! re-sorting, summary statistics, and the small hand-constructed gadgets
//! used by the paper (the Fig. 1 toy network and the 3-PARTITION reduction
//! of Theorem 1).
//!
//! Graphs are built either by buffering arcs in a [`GraphBuilder`] or — for
//! paper-scale inputs — by streaming them twice through
//! [`build_from_stream`], which keeps peak memory at the size of the final
//! CSR.
//!
//! Arc semantics follow the paper (§3): an arc `(u, v)` means *v follows u*,
//! i.e. information flows from `u` to `v`.
//!
//! ```
//! use tirm_graph::{GraphBuilder, DiGraph};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let g: DiGraph = b.build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_degree(0), 2);
//! assert_eq!(g.in_degree(3), 1);
//! ```

mod builder;
mod csr;
pub mod gadgets;
pub mod generators;
pub mod io;
pub mod relabel;
pub mod snapshot;
pub mod stats;

pub use builder::{build_from_stream, GraphBuilder};
pub use csr::{CsrParts, DiGraph, EdgeId, NodeId};
pub use relabel::Relabeling;
pub use snapshot::{
    read_snapshot, read_words_file, read_words_stream, write_atomic, write_atomic_with,
    write_snapshot, write_words_file, write_words_stream, Snapshot, SnapshotError,
};
pub use stats::GraphStats;

/// Convenience alias used across the workspace: a list of `(source, target)`
/// arcs with `u32` node ids.
pub type EdgeList = Vec<(NodeId, NodeId)>;
