//! Property tests for the graph substrate: CSR invariants, builder
//! semantics, IO round-trips and generator contracts.

use proptest::prelude::*;
use tirm_graph::{build_from_stream, generators, io, snapshot, DiGraph, GraphBuilder, NodeId};

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(move |n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..max_m)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_invariants_hold((n, edges) in arb_edges(40, 160)) {
        let g = DiGraph::from_edges(n as usize, edges.clone());
        prop_assert!(g.validate().is_ok());
        // Degree sums both equal the edge count.
        let out_sum: usize = (0..n).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..n).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        // No self loops survive the builder.
        for (_, u, v) in g.edges() {
            prop_assert_ne!(u, v);
        }
    }

    #[test]
    fn dedup_is_idempotent((n, edges) in arb_edges(25, 120)) {
        let g1 = DiGraph::from_edges(n as usize, edges.clone());
        // Feeding the canonical edge list back in yields the same graph.
        let round: Vec<(NodeId, NodeId)> = g1.edges().map(|(_, u, v)| (u, v)).collect();
        let g2 = DiGraph::from_edges(n as usize, round.clone());
        let round2: Vec<(NodeId, NodeId)> = g2.edges().map(|(_, u, v)| (u, v)).collect();
        prop_assert_eq!(round, round2);
    }

    #[test]
    fn reverse_twice_is_identity((n, edges) in arb_edges(25, 120)) {
        let g = DiGraph::from_edges(n as usize, edges);
        let rr = g.reversed().reversed();
        let a: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
        let b: Vec<_> = rr.edges().map(|(_, u, v)| (u, v)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn io_round_trip_preserves_arcs((n, edges) in arb_edges(25, 120)) {
        let g = DiGraph::from_edges(n as usize, edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let (g2, original) = io::read_edge_list(&buf[..], false).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        let mut a: Vec<(u64, u64)> =
            g.edges().map(|(_, u, v)| (u as u64, v as u64)).collect();
        let mut b: Vec<(u64, u64)> = g2
            .edges()
            .map(|(_, u, v)| (original[u as usize], original[v as usize]))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn edge_id_is_a_bijection((n, edges) in arb_edges(30, 150)) {
        let g = DiGraph::from_edges(n as usize, edges);
        for (e, u, v) in g.edges() {
            prop_assert_eq!(g.edge_id(u, v), Some(e));
            prop_assert_eq!(g.edge_endpoints(e), (u, v));
        }
    }

    #[test]
    fn generators_respect_node_counts(n in 16usize..200, seed in 0u64..64) {
        let er = generators::erdos_renyi(n, n, seed);
        prop_assert_eq!(er.num_nodes(), n);
        prop_assert!(er.validate().is_ok());
        let pa = generators::preferential_attachment(n, 3, 0.2, seed);
        prop_assert_eq!(pa.num_nodes(), n);
        prop_assert!(pa.validate().is_ok());
    }

    #[test]
    fn streaming_build_equals_vec_build((n, edges) in arb_edges(40, 200)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let via_vec = b.build();
        let via_stream = build_from_stream(n as usize, |sink| {
            for &(u, v) in &edges {
                sink(u, v);
            }
        });
        prop_assert_eq!(&via_vec, &via_stream);
        prop_assert!(via_stream.validate().is_ok());
    }

    #[test]
    fn snapshot_round_trip_bit_identical((n, edges) in arb_edges(30, 150), k in 1usize..5, seed in 0u64..1024) {
        let g = DiGraph::from_edges(n as usize, edges);
        // Probabilities from a seeded hash so odd bit patterns are covered.
        let probs: Vec<f32> = (0..g.num_edges() * k)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                (h % 1_000_000) as f32 / 1_000_000.0
            })
            .collect();
        let dir = std::env::temp_dir()
            .join(format!("tirm_graph_proptest_{}", std::process::id()));
        let path = dir.join(format!("case_{seed}.tirmsnap"));
        snapshot::write_snapshot(&path, &g, k, &probs).unwrap();
        let snap = snapshot::read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&snap.graph, &g);
        prop_assert_eq!(snap.num_topics, k);
        let got: Vec<u32> = snap.edge_probs.iter().map(|p| p.to_bits()).collect();
        let want: Vec<u32> = probs.iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn builder_undirected_symmetric((n, edges) in arb_edges(20, 60)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v) in &edges {
            b.add_undirected(u, v);
        }
        let g = b.build();
        for (_, u, v) in g.edges().collect::<Vec<_>>() {
            prop_assert!(g.has_edge(v, u), "missing reciprocal of ({u},{v})");
        }
    }
}
