//! Single forward cascade runs under IC with optional seed CTPs.

use rand::Rng;
use tirm_graph::{DiGraph, NodeId};

/// Reusable scratch space for cascade runs. Uses epoch-stamped visit marks
/// so consecutive runs need no clearing — essential in tight MC loops.
#[derive(Clone, Debug)]
pub struct CascadeWorkspace {
    epoch: u32,
    mark: Vec<u32>,
    queue: Vec<NodeId>,
}

impl CascadeWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        CascadeWorkspace {
            epoch: 0,
            mark: vec![0; n],
            queue: Vec::with_capacity(1024),
        }
    }

    /// Starts a fresh run; returns the epoch token for this run.
    #[inline]
    fn begin(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset marks so stale stamps can't match.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        self.epoch
    }

    #[inline]
    fn is_marked(&self, u: NodeId) -> bool {
        self.mark[u as usize] == self.epoch
    }

    #[inline]
    fn mark(&mut self, u: NodeId) {
        self.mark[u as usize] = self.epoch;
    }

    /// Starts a fresh run — public hook for other diffusion models (LT)
    /// built on the same epoch-stamped scratch space.
    #[inline]
    pub fn begin_public(&mut self) {
        self.begin();
        self.queue.clear();
    }

    /// Whether `u` was marked in the current run.
    #[inline]
    pub fn is_marked_public(&self, u: NodeId) -> bool {
        self.is_marked(u)
    }

    /// Marks `u` in the current run.
    #[inline]
    pub fn mark_public(&mut self, u: NodeId) {
        self.mark(u);
    }
}

/// Runs one independent cascade from `seeds` and returns the number of
/// activated nodes (= clicks: accepted seeds plus influenced users).
///
/// * `probs[e]` — per-arc influence probability for the ad being simulated
///   (the TIC projection of Eq. 1).
/// * `ctp` — optional per-node click-through probabilities `δ(·, i)`; when
///   present each seed is first filtered through its acceptance coin
///   (TIC-CTP semantics); when `None` seeds activate with probability 1
///   (plain IC, the classical model of \[19\]).
pub fn simulate_once<R: Rng>(
    g: &DiGraph,
    probs: &[f32],
    seeds: &[NodeId],
    ctp: Option<&[f32]>,
    ws: &mut CascadeWorkspace,
    rng: &mut R,
) -> usize {
    debug_assert_eq!(probs.len(), g.num_edges());
    ws.begin();
    ws.queue.clear();
    let mut activated = 0usize;
    for &s in seeds {
        if ws.is_marked(s) {
            continue; // duplicate seed
        }
        let accepts = match ctp {
            Some(d) => rng.gen::<f32>() < d[s as usize],
            None => true,
        };
        if accepts {
            ws.mark(s);
            ws.queue.push(s);
            activated += 1;
        }
    }
    let mut head = 0usize;
    while head < ws.queue.len() {
        let u = ws.queue[head];
        head += 1;
        let lo = g.out_edges(u);
        for (e, v) in lo {
            if ws.is_marked(v) {
                continue;
            }
            let p = probs[e as usize];
            if p > 0.0 && rng.gen::<f32>() < p {
                ws.mark(v);
                ws.queue.push(v);
                activated += 1;
            }
        }
    }
    activated
}

/// Like [`simulate_once`] but also increments `hits[v]` for every activated
/// node `v` — used to estimate per-node click probabilities (Fig. 1).
pub fn simulate_once_collect<R: Rng>(
    g: &DiGraph,
    probs: &[f32],
    seeds: &[NodeId],
    ctp: Option<&[f32]>,
    ws: &mut CascadeWorkspace,
    rng: &mut R,
    hits: &mut [u64],
) -> usize {
    let n = simulate_once(g, probs, seeds, ctp, ws, rng);
    for &v in &ws.queue {
        hits[v as usize] += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tirm_graph::generators;

    #[test]
    fn deterministic_extremes() {
        let g = generators::path(5);
        let mut ws = CascadeWorkspace::new(5);
        let mut rng = SmallRng::seed_from_u64(1);
        // Probability 1 arcs: whole path activates.
        let all = vec![1.0f32; g.num_edges()];
        assert_eq!(simulate_once(&g, &all, &[0], None, &mut ws, &mut rng), 5);
        // Probability 0 arcs: only the seed.
        let none = vec![0.0f32; g.num_edges()];
        assert_eq!(simulate_once(&g, &none, &[0], None, &mut ws, &mut rng), 1);
    }

    #[test]
    fn ctp_zero_blocks_everything() {
        let g = generators::star(6);
        let mut ws = CascadeWorkspace::new(6);
        let mut rng = SmallRng::seed_from_u64(2);
        let probs = vec![1.0f32; g.num_edges()];
        let ctp = vec![0.0f32; 6];
        assert_eq!(
            simulate_once(&g, &probs, &[0], Some(&ctp), &mut ws, &mut rng),
            0
        );
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = generators::path(3);
        let mut ws = CascadeWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let none = vec![0.0f32; g.num_edges()];
        assert_eq!(
            simulate_once(&g, &none, &[1, 1, 1], None, &mut ws, &mut rng),
            1
        );
    }

    #[test]
    fn collect_marks_activated_nodes() {
        let g = generators::path(4);
        let mut ws = CascadeWorkspace::new(4);
        let mut rng = SmallRng::seed_from_u64(4);
        let all = vec![1.0f32; g.num_edges()];
        let mut hits = vec![0u64; 4];
        let n = simulate_once_collect(&g, &all, &[1], None, &mut ws, &mut rng, &mut hits);
        assert_eq!(n, 3);
        assert_eq!(hits, vec![0, 1, 1, 1]);
    }

    #[test]
    fn workspace_reuse_is_clean_across_runs() {
        let g = generators::clique(8);
        let mut ws = CascadeWorkspace::new(8);
        let mut rng = SmallRng::seed_from_u64(5);
        let none = vec![0.0f32; g.num_edges()];
        for s in 0..8u32 {
            // Each run must see a fresh visited state.
            assert_eq!(simulate_once(&g, &none, &[s], None, &mut ws, &mut rng), 1);
        }
    }
}
