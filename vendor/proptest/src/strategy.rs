//! The [`Strategy`] trait and its built-in implementations.

use crate::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// A generator of random values (shim: generation only, no shrinking).
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

/// Marker trait so docs can point at the tuple implementations.
pub trait TupleStrategy {}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }

        impl<$($name: Strategy),+> TupleStrategy for ($($name,)+) {}
    )*};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));
