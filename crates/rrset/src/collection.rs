//! Growing collection of RR sets with marginal-coverage bookkeeping.
//!
//! This is the Max-Cover substrate shared by TIM's seed selection and
//! TIRM's `SelectBestNode` (Algorithm 3): it maintains, for every node,
//! the number of *uncovered* sets containing it, supports covering all
//! sets containing a chosen seed (Algorithm 2, line 12), and reports its
//! exact memory footprint for the Table 4 reproduction.

use tirm_graph::NodeId;

/// Flat-stored RR-set collection with an inverted node → set-id index.
#[derive(Clone, Debug)]
pub struct RrCollection {
    n: usize,
    /// `offsets[i]..offsets[i+1]` delimits set `i` in `nodes`.
    offsets: Vec<u32>,
    /// Flattened membership lists.
    nodes: Vec<NodeId>,
    /// Whether set `i` has been covered by a chosen seed.
    covered: Vec<bool>,
    /// Per node: number of uncovered sets containing it (marginal coverage).
    cov: Vec<u32>,
    /// Inverted index: node → ids of sets containing it.
    index: Vec<Vec<u32>>,
    num_covered: usize,
}

impl RrCollection {
    /// Empty collection over `n` nodes.
    pub fn new(n: usize) -> Self {
        RrCollection {
            n,
            offsets: vec![0],
            nodes: Vec::new(),
            covered: Vec::new(),
            cov: vec![0; n],
            index: vec![Vec::new(); n],
            num_covered: 0,
        }
    }

    /// Number of nodes the collection is defined over.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total number of sets ever added (θ in the paper's notation).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.covered.len()
    }

    /// Number of sets currently covered by chosen seeds.
    #[inline]
    pub fn num_covered(&self) -> usize {
        self.num_covered
    }

    /// Adds one RR set (a list of member nodes; duplicates are the
    /// sampler's responsibility to avoid). Returns its set id.
    pub fn add_set(&mut self, members: &[NodeId]) -> u32 {
        let sid = self.covered.len() as u32;
        self.nodes.extend_from_slice(members);
        self.offsets.push(self.nodes.len() as u32);
        self.covered.push(false);
        for &v in members {
            self.cov[v as usize] += 1;
            self.index[v as usize].push(sid);
        }
        sid
    }

    /// Members of set `sid`.
    #[inline]
    pub fn set(&self, sid: u32) -> &[NodeId] {
        let lo = self.offsets[sid as usize] as usize;
        let hi = self.offsets[sid as usize + 1] as usize;
        &self.nodes[lo..hi]
    }

    /// Marginal coverage of `v`: the number of *uncovered* sets containing
    /// it. `n · cov(v) / θ` estimates the marginal spread of adding `v`.
    #[inline]
    pub fn cov(&self, v: NodeId) -> u32 {
        self.cov[v as usize]
    }

    /// Whether set `sid` is covered.
    #[inline]
    pub fn is_covered(&self, sid: u32) -> bool {
        self.covered[sid as usize]
    }

    /// Covers every uncovered set containing `v` (the seed just chosen),
    /// decrementing the marginal coverage of all their members.
    /// Returns how many sets were newly covered (== `cov(v)` beforehand).
    pub fn cover_node(&mut self, v: NodeId) -> u32 {
        let sids = std::mem::take(&mut self.index[v as usize]);
        let mut newly = 0u32;
        for &sid in &sids {
            if self.covered[sid as usize] {
                continue;
            }
            self.covered[sid as usize] = true;
            self.num_covered += 1;
            newly += 1;
            let lo = self.offsets[sid as usize] as usize;
            let hi = self.offsets[sid as usize + 1] as usize;
            for i in lo..hi {
                let w = self.nodes[i] as usize;
                debug_assert!(self.cov[w] > 0);
                self.cov[w] -= 1;
            }
        }
        self.index[v as usize] = sids;
        newly
    }

    /// Counts the sets with id ≥ `from_sid` that contain `v` and are still
    /// uncovered — used by TIRM's `UpdateEstimates` (Algorithm 4) to credit
    /// freshly sampled sets to already-chosen seeds.
    pub fn count_uncovered_from(&self, v: NodeId, from_sid: u32) -> u32 {
        self.index[v as usize]
            .iter()
            .filter(|&&sid| sid >= from_sid && !self.covered[sid as usize])
            .count() as u32
    }

    /// Node with maximum marginal coverage among those passing `eligible`;
    /// linear scan fallback used by plain TIM and by tests (TIRM uses the
    /// lazy heap instead).
    pub fn argmax_cov(&self, mut eligible: impl FnMut(NodeId) -> bool) -> Option<(NodeId, u32)> {
        let mut best: Option<(NodeId, u32)> = None;
        for v in 0..self.n as NodeId {
            let c = self.cov[v as usize];
            if c == 0 || !eligible(v) {
                continue;
            }
            if best.is_none_or(|(_, bc)| c > bc) {
                best = Some((v, c));
            }
        }
        best
    }

    /// Exact bytes held by this collection (flat lists, flags, counters,
    /// inverted index) — the Table 4 memory metric.
    pub fn memory_bytes(&self) -> usize {
        let index_bytes: usize = self
            .index
            .iter()
            .map(|v| v.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum();
        self.nodes.capacity() * 4
            + self.offsets.capacity() * 4
            + self.covered.capacity()
            + self.cov.capacity() * 4
            + index_bytes
    }

    /// Sum of set sizes (total node entries) — a size diagnostic.
    pub fn total_entries(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> RrCollection {
        let mut c = RrCollection::new(5);
        c.add_set(&[0, 1]);
        c.add_set(&[1, 2]);
        c.add_set(&[3]);
        c.add_set(&[1, 3, 4]);
        c
    }

    #[test]
    fn coverage_counts() {
        let c = sample_collection();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.cov(1), 3);
        assert_eq!(c.cov(0), 1);
        assert_eq!(c.cov(3), 2);
        assert_eq!(c.cov(4), 1);
    }

    #[test]
    fn cover_node_updates_marginals() {
        let mut c = sample_collection();
        let newly = c.cover_node(1);
        assert_eq!(newly, 3);
        assert_eq!(c.num_covered(), 3);
        assert_eq!(c.cov(1), 0);
        assert_eq!(c.cov(0), 0, "set {{0,1}} is covered");
        assert_eq!(c.cov(2), 0);
        assert_eq!(c.cov(3), 1, "only set {{3}} remains");
        // Covering again is a no-op.
        assert_eq!(c.cover_node(1), 0);
        // Covering 3 covers the last set.
        assert_eq!(c.cover_node(3), 1);
        assert_eq!(c.num_covered(), 4);
    }

    #[test]
    fn argmax_respects_eligibility() {
        let c = sample_collection();
        assert_eq!(c.argmax_cov(|_| true), Some((1, 3)));
        let best = c.argmax_cov(|v| v != 1).unwrap();
        assert_eq!(best, (3, 2));
        assert_eq!(c.argmax_cov(|_| false), None);
    }

    #[test]
    fn count_uncovered_from_boundary() {
        let mut c = sample_collection();
        assert_eq!(c.count_uncovered_from(1, 0), 3);
        assert_eq!(c.count_uncovered_from(1, 1), 2);
        assert_eq!(c.count_uncovered_from(1, 3), 1);
        c.cover_node(2); // covers set 1
        assert_eq!(c.count_uncovered_from(1, 1), 1);
    }

    #[test]
    fn set_retrieval_and_entries() {
        let c = sample_collection();
        assert_eq!(c.set(3), &[1, 3, 4]);
        assert_eq!(c.total_entries(), 8);
        assert!(c.memory_bytes() > 0);
    }
}
