//! Fig. 4(a–d): total regret vs penalty λ ∈ {0, 0.1, 0.5, 1}, at
//! κ ∈ {1, 5}, on the FLIXSTER- and EPINIONS-like data sets.
//!
//! Expected shape (paper §6.1): regret grows with λ for every algorithm;
//! the algorithm ordering stays TIRM < IRIE ≪ MYOPIC/MYOPIC+, and TIRM
//! remains strong even at λ = 1 (showing Theorem 2's λ-assumption is
//! conservative).

use tirm_bench::{banner, run_quality_cell, write_json, AlgoKind, QualityWorkload};
use tirm_core::report::{fnum, Table};
use tirm_workloads::DatasetKind;

fn main() {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Flixster, DatasetKind::Epinions] {
        let w = QualityWorkload::new(kind, 0xf164 + kind as u64);
        banner(&format!("fig4: {}", kind.name()), &w.cfg);
        for kappa in [1u32, 5] {
            let mut t = Table::new(&["lambda", "Myopic", "Myopic+", "IRIE", "TIRM"]);
            for lambda in [0.0, 0.1, 0.5, 1.0] {
                let mut cells = vec![format!("{lambda}")];
                for algo in AlgoKind::ALL {
                    let row = run_quality_cell(&w, algo, kappa, lambda, 0x5eed);
                    eprintln!(
                        "  {} κ={kappa} λ={lambda} {}: regret={:.1} seeds={} in {:.1}s",
                        kind.name(),
                        algo.name(),
                        row.total_regret,
                        row.total_seeds,
                        row.runtime_s
                    );
                    cells.push(fnum(row.total_regret));
                    rows.push(row);
                }
                t.row(cells);
            }
            println!(
                "\nFig. 4 — {} (kappa = {kappa}): total regret vs lambda",
                kind.name()
            );
            println!("{}", t.render());
        }
    }
    write_json("fig4", &rows);
}
