//! GREEDY-IRIE (§5, §6): Algorithm 1 with spread estimation delegated to
//! the IRIE heuristic instead of Monte-Carlo simulation.
//!
//! Per ad, an [`Irie`] state tracks the activation probabilities induced by
//! the seeds chosen so far; a candidate's marginal revenue is
//! `cpe(i) · δ(u,i) · r_i(u)` where `r_i` is the seed-discounted influence
//! rank. Revenue estimates accumulate from those marginals — the same
//! mechanism a practitioner's GREEDY-IRIE uses, and the source of the
//! over/under-estimation artefacts §6.1 reports (overshooting on FLIXSTER,
//! undershooting on EPINIONS, premature termination included).

use crate::algos::DROP_TOL;
use crate::allocation::Allocation;
use crate::metrics::AlgoStats;
use crate::problem::ProblemInstance;
use crate::regret::ad_regret;
use std::time::Instant;
use tirm_graph::NodeId;
use tirm_irie::{Irie, IrieConfig};

/// Options for GREEDY-IRIE.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyIrieOptions {
    /// IRIE iteration parameters (α, iteration counts). The paper tunes
    /// α = 0.8 for quality runs and 0.7 for scalability runs.
    pub irie: IrieConfig,
    /// Safety cap on total seeds.
    pub max_total_seeds: Option<usize>,
}

/// Runs GREEDY-IRIE.
pub fn greedy_irie_allocate(
    problem: &ProblemInstance<'_>,
    opts: GreedyIrieOptions,
) -> (Allocation, AlgoStats) {
    let start = Instant::now();
    let h = problem.num_ads();
    let n = problem.num_nodes();
    let mut alloc = Allocation::empty(h, n);
    let mut revenue = vec![0.0f64; h];
    let mut oracle_calls = 0usize;

    // One IRIE state per ad over that ad's projected probabilities.
    let mut iries: Vec<Irie<'_>> = (0..h)
        .map(|i| Irie::new(problem.graph, &problem.edge_probs[i], opts.irie))
        .collect();
    let mut saturated = vec![false; h];

    loop {
        if let Some(cap) = opts.max_total_seeds {
            if alloc.total_seeds() >= cap {
                break;
            }
        }
        let mut best: Option<(NodeId, usize, f64, f64)> = None;
        for ad in 0..h {
            if saturated[ad] {
                continue;
            }
            let budget = problem.target_budget(ad);
            let cpe = problem.ads[ad].cpe;
            let seeds_len = alloc.seeds(ad).len();
            let current = ad_regret(budget, revenue[ad], problem.lambda, seeds_len);
            let mut ad_best: Option<(NodeId, f64, f64)> = None;
            for u in 0..n as NodeId {
                if !alloc.can_assign(problem, u, ad) {
                    continue;
                }
                let mg_rev = cpe * iries[ad].marginal(u, problem.ctp.get(u, ad));
                oracle_calls += 1;
                let next = ad_regret(budget, revenue[ad] + mg_rev, problem.lambda, seeds_len + 1);
                let drop = current - next;
                if drop > DROP_TOL && ad_best.is_none_or(|(_, d, _)| drop > d) {
                    ad_best = Some((u, drop, mg_rev));
                }
            }
            match ad_best {
                Some((u, drop, mg_rev)) => {
                    if best.is_none_or(|(_, _, d, _)| drop > d) {
                        best = Some((u, ad, drop, mg_rev));
                    }
                }
                None => saturated[ad] = true,
            }
        }
        match best {
            Some((u, ad, _drop, mg_rev)) => {
                alloc.assign(u, ad);
                revenue[ad] += mg_rev;
                iries[ad].add_seed(u, problem.ctp.get(u, ad));
            }
            None => break,
        }
    }

    let stats = AlgoStats {
        runtime: start.elapsed(),
        seeds_per_ad: (0..h).map(|i| alloc.seeds(i).len()).collect(),
        estimated_revenue: revenue,
        memory_bytes: iries.iter().map(|i| i.memory_bytes()).sum(),
        rr_sets_per_ad: vec![],
        oracle_calls,
        ..AlgoStats::default()
    };
    (alloc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, Attention};
    use tirm_graph::generators;
    use tirm_topics::{CtpTable, TopicDist};

    fn star_instance(g: &tirm_graph::DiGraph, budget: f64, lambda: f64) -> ProblemInstance<'_> {
        let ads = vec![Advertiser::new(budget, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.5f32; g.num_edges()]];
        let ctp = CtpTable::constant(g.num_nodes(), 1, 1.0);
        ProblemInstance::new(g, ads, probs, ctp, Attention::Uniform(1), lambda)
    }

    #[test]
    fn hub_first_for_large_budget() {
        let g = generators::star(20);
        let p = star_instance(&g, 8.0, 0.0);
        let (alloc, stats) = greedy_irie_allocate(&p, GreedyIrieOptions::default());
        assert_eq!(alloc.seeds(0)[0], 0, "hub has the top IRIE rank");
        assert!(stats.estimated_revenue[0] > 0.0);
        alloc.validate(&p).unwrap();
    }

    #[test]
    fn revenue_estimate_tracks_marginals() {
        let g = generators::star(10);
        let p = star_instance(&g, 100.0, 0.0);
        let (alloc, stats) = greedy_irie_allocate(&p, GreedyIrieOptions::default());
        // All 10 nodes end up seeded (budget unreachable), revenue equals
        // the sum of IRIE marginals which cannot exceed ~n.
        assert_eq!(alloc.seeds(0).len(), 10);
        assert!(stats.estimated_revenue[0] <= 10.5);
    }

    #[test]
    fn stops_when_lambda_dominates() {
        let g = generators::path(6);
        let mut p = star_instance(&g, 5.0, 0.0);
        p.lambda = 10.0;
        let (alloc, _) = greedy_irie_allocate(&p, GreedyIrieOptions::default());
        assert_eq!(alloc.total_seeds(), 0);
    }

    #[test]
    fn two_ads_share_users_round() {
        let g = generators::star(12);
        let ads = vec![
            Advertiser::new(4.0, 1.0, TopicDist::single(1, 0)),
            Advertiser::new(4.0, 1.0, TopicDist::single(1, 0)),
        ];
        let probs = vec![vec![0.3f32; g.num_edges()]; 2];
        let ctp = CtpTable::constant(12, 2, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, _) = greedy_irie_allocate(&p, GreedyIrieOptions::default());
        alloc.validate(&p).unwrap();
        // κ = 1: hub can only serve one ad.
        let hub_count = alloc.seeds(0).contains(&0) as usize + alloc.seeds(1).contains(&0) as usize;
        assert_eq!(hub_count, 1);
    }
}
