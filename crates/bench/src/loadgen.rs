//! Open-loop load generator for the `tirm_server` wire protocol.
//!
//! One **mutation connection** streams an event log at either a target
//! open-loop Poisson rate (requests fire on the clock's schedule,
//! whether or not the server liked the last one — the arrival process
//! is independent of service times, so backpressure shows up as shed
//! load, not as a silently slowed generator) or closed-loop as fast as
//! responses return. A pool of **reader connections** concurrently
//! hammers the snapshot-swapped read path (`regret` / `stats` / `ad`
//! queries) for the whole run — per-request-kind latency histograms on
//! both sides are the measurement the `SERVING/…` bench cells stamp
//! into the artifact.
//!
//! Two delivery modes:
//! * `retry: true` — deterministic delivery: `Overloaded` responses are
//!   retried until admitted, so the server's final state is a pure
//!   function of the log (what the bench cells and the equivalence
//!   anchor need). Shed responses still count: they measure
//!   backpressure.
//! * `retry: false` — open-loop overload probing: shed mutations are
//!   dropped, as a real ingestion edge would.
//!
//! With a reconnect budget ([`LoadgenConfig::reconnect`]) a lost
//! connection is not fatal: the generator reconnects with capped
//! exponential backoff and **resumes the log at the server's durable
//! frontier** — the `hello` handshake's `wal_seq` counts admitted
//! mutations, so the resume index is the position after the first
//! `wal_seq` mutating events of the log. Against a durable server this
//! gives exactly-once delivery across kill/restart (the crash-recovery
//! bench mode); it assumes this generator's log is the only mutation
//! source.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use tirm_online::EventKind;
use tirm_server::{Client, ClientOptions, Request, Response, StatsView};
use tirm_workloads::events::LogEvent;
use tirm_workloads::LatencyHistogram;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How `drive` offers the log to the server.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent reader connections (each closed-loop).
    pub readers: usize,
    /// Open-loop Poisson rate in events/s; `None` = closed-loop (send
    /// the next event as soon as the previous response arrives).
    pub rate: Option<f64>,
    /// Retry `Overloaded` mutations until admitted (deterministic
    /// delivery).
    pub retry: bool,
    /// Seed of the pacing clock and the readers' query mix.
    pub seed: u64,
    /// After the log is sent, poll until the writer drained the queue
    /// (epoch stable) before stopping the readers — so read latencies
    /// cover the busy period, and the caller can snapshot final state.
    pub drain: bool,
    /// Pause between a reader's queries. `ZERO` = fully closed-loop
    /// (maximum read pressure — right for multicore scaling runs); the
    /// bench cells use a small pause so that on a 1-CPU container the
    /// reader pool doesn't starve the writer of its own measurement
    /// (unpaced, cell wall time swings ±30% run-to-run with scheduler
    /// luck, which would flap the CI wall-clock gate).
    pub read_pause: Duration,
    /// Connection behavior. `reconnect_attempts == 0` (the default)
    /// keeps a lost connection fatal; a positive budget turns resets
    /// into bounded reconnect-with-backoff plus resume-from-`wal_seq`
    /// (requires `handshake`, enforced by [`drive`]). Each concurrent
    /// client derives its own deterministic backoff jitter from its
    /// seed (unless the caller pinned one here), so a fleet that lost
    /// the same server re-dials spread out instead of in lockstep.
    pub reconnect: ClientOptions,
    /// Follower read pool: reader connections are spread across these
    /// endpoints round-robin (the mutation stream always targets
    /// `addr`, the leader). Empty ⇒ all reads hit the leader.
    pub follower_addrs: Vec<SocketAddr>,
    /// Lag-aware routing threshold, in events: a reader that observes
    /// its follower lagging more than this behind the leader re-routes
    /// reads to the leader until the follower catches back up.
    pub max_lag: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            readers: 4,
            rate: None,
            retry: true,
            seed: 0x10ad,
            drain: true,
            read_pause: Duration::ZERO,
            reconnect: ClientOptions::default(),
            follower_addrs: Vec::new(),
            max_lag: 64,
        }
    }
}

/// What a `drive` run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Wall-clock seconds from the first request to the drain.
    pub wall_s: f64,
    /// Mutation attempts sent (retries count).
    pub offered: u64,
    /// Mutations admitted (`Accepted`).
    pub accepted: u64,
    /// Mutations shed (`Overloaded`), including attempts later retried.
    pub shed: u64,
    /// Per-attempt wire latency of mutations (send → response),
    /// including shed attempts.
    pub mutation_latency: LatencyHistogram,
    /// Mutation latency split by event kind ([`EventKind::ALL`] order;
    /// `RegretQuery` entries are stream-embedded reads).
    pub per_kind: Vec<(EventKind, LatencyHistogram)>,
    /// Read queries served across the reader pool.
    pub reads: u64,
    /// Wire latency of the reader pool's queries.
    pub read_latency: LatencyHistogram,
    /// Reads served per reader connection (scaling evidence: every
    /// reader makes progress while the writer grinds).
    pub reads_per_reader: Vec<u64>,
    /// Admitted mutations per wall-clock second.
    pub events_per_s: f64,
    /// Reader-pool queries per wall-clock second.
    pub reads_per_s: f64,
    /// Reads served by follower endpoints (0 without a follower pool).
    pub follower_reads: u64,
    /// Reads a follower-assigned reader routed to the leader instead —
    /// lag over [`LoadgenConfig::max_lag`] or an unreachable follower.
    pub leader_fallback_reads: u64,
    /// Follower replication lag observed in the readers' `stats`
    /// responses (events behind the leader), in observation order.
    pub follower_lag: Vec<u64>,
    /// Leader write-queue depth observed in the readers' `stats`
    /// responses while routed to the leader, in observation order —
    /// the pressure signal lag-aware routing reacts to.
    pub leader_queue_depth: Vec<u64>,
    /// Highest registry-backed process-lifetime shed counter observed
    /// on the leader (survives restarts within a process; 0 when no
    /// reader ever polled the leader's stats).
    pub leader_shed_total: u64,
    /// Server statistics after the drain.
    pub final_stats: StatsView,
}

impl LoadReport {
    /// Shed / offered (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// p99 of the observed follower lag, in events (0 with no
    /// observations — e.g. no follower pool).
    pub fn follower_lag_p99(&self) -> u64 {
        percentile_u64(&self.follower_lag, 0.99)
    }

    /// p99 of the leader write-queue depth the readers observed (0
    /// with no observations).
    pub fn leader_queue_p99(&self) -> u64 {
        percentile_u64(&self.leader_queue_depth, 0.99)
    }
}

/// Nearest-rank percentile of unordered samples (0 when empty).
pub fn percentile_u64(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives `log` against the server at `addr`. Returns when the log is
/// sent (and, with `drain`, applied) and the readers have stopped.
pub fn drive(addr: SocketAddr, log: &[LogEvent], cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    if cfg.reconnect.reconnect_attempts > 0 && !cfg.reconnect.handshake {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "reconnect needs the hello handshake: wal_seq is the resume anchor",
        ));
    }
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (mutation_side, read_side) = std::thread::scope(|s| -> io::Result<_> {
        let readers: Vec<_> = (0..cfg.readers)
            .map(|r| {
                let stop = &stop;
                let pause = cfg.read_pause;
                let max_lag = cfg.max_lag;
                let seed = cfg.seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                // Per-client jitter keyed by the reader's own seed: a
                // fleet that lost the same server must not re-dial in
                // lockstep on identical backoff schedules.
                let opts = jittered(&cfg.reconnect, seed);
                // Round-robin over the follower pool; the leader joins
                // the rotation so it keeps serving a share of reads.
                let follower = if cfg.follower_addrs.is_empty() {
                    None
                } else {
                    let pool = cfg.follower_addrs.len() + 1;
                    match r % pool {
                        0 => None,
                        k => Some(cfg.follower_addrs[k - 1]),
                    }
                };
                s.spawn(move || reader_loop(addr, follower, stop, seed, pause, opts, max_lag))
            })
            .collect();

        let mutation_side = mutation_loop(addr, log, cfg);
        stop.store(true, Ordering::Release);
        let mut read_latency = LatencyHistogram::default();
        let mut reads_per_reader = Vec::with_capacity(cfg.readers);
        let mut follower_reads = 0u64;
        let mut leader_fallback_reads = 0u64;
        let mut follower_lag = Vec::new();
        let mut leader_queue_depth = Vec::new();
        let mut leader_shed_total = 0u64;
        for handle in readers {
            let side = handle.join().expect("reader panicked")?;
            reads_per_reader.push(side.count);
            follower_reads += side.follower_reads;
            leader_fallback_reads += side.fallback_reads;
            follower_lag.extend(side.lag_samples);
            leader_queue_depth.extend(side.leader_queue_samples);
            leader_shed_total = leader_shed_total.max(side.leader_shed_total);
            for &ns in side.hist.samples() {
                read_latency.record(ns);
            }
        }
        Ok((
            mutation_side?,
            (
                read_latency,
                reads_per_reader,
                follower_reads,
                leader_fallback_reads,
                follower_lag,
                leader_queue_depth,
                leader_shed_total,
            ),
        ))
    })?;
    let wall_s = t0.elapsed().as_secs_f64();

    let (offered, accepted, shed, mutation_latency, per_kind, final_stats) = mutation_side;
    let (
        read_latency,
        reads_per_reader,
        follower_reads,
        leader_fallback_reads,
        follower_lag,
        leader_queue_depth,
        leader_shed_total,
    ) = read_side;
    let reads: u64 = reads_per_reader.iter().sum();
    Ok(LoadReport {
        wall_s,
        offered,
        accepted,
        shed,
        mutation_latency,
        per_kind,
        reads,
        read_latency,
        reads_per_reader,
        events_per_s: if wall_s > 0.0 {
            accepted as f64 / wall_s
        } else {
            0.0
        },
        reads_per_s: if wall_s > 0.0 {
            reads as f64 / wall_s
        } else {
            0.0
        },
        follower_reads,
        leader_fallback_reads,
        follower_lag,
        leader_queue_depth,
        leader_shed_total,
        final_stats,
    })
}

/// `opts` with deterministic backoff jitter keyed by `seed`, unless
/// the caller already pinned a jitter seed.
fn jittered(opts: &ClientOptions, seed: u64) -> ClientOptions {
    let mut opts = opts.clone();
    opts.jitter = opts.jitter.or(Some(seed));
    opts
}

type MutationSide = (
    u64,
    u64,
    u64,
    LatencyHistogram,
    Vec<(EventKind, LatencyHistogram)>,
    StatsView,
);

/// Index of the first log event still to send when the server's
/// durable frontier is `wal_seq`: skip exactly `wal_seq` mutating
/// events (`RegretQuery` entries are reads — never logged, never
/// counted).
fn resume_index(log: &[LogEvent], wal_seq: u64) -> usize {
    let mut mutations = 0u64;
    for (i, e) in log.iter().enumerate() {
        if mutations == wal_seq {
            return i;
        }
        if e.event.is_mutation() {
            mutations += 1;
        }
    }
    log.len()
}

/// Reconnects after a lost connection (bounded attempts with capped
/// exponential backoff inside [`Client::connect_with`]) and returns
/// the resume index the server's `hello` dictates.
fn reconnect(
    addr: SocketAddr,
    log: &[LogEvent],
    opts: &ClientOptions,
) -> io::Result<(Client, usize)> {
    let client = Client::connect_with(addr, opts)?;
    let hello = client.hello().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "reconnected without a hello; no resume anchor",
        )
    })?;
    let at = resume_index(log, hello.wal_seq);
    Ok((client, at))
}

fn mutation_loop(
    mut addr: SocketAddr,
    log: &[LogEvent],
    cfg: &LoadgenConfig,
) -> io::Result<MutationSide> {
    let opts = &jittered(&cfg.reconnect, cfg.seed);
    let resumable = opts.reconnect_attempts > 0;
    let mut i = 0usize;
    let mut client = if resumable || opts.handshake {
        let c = Client::connect_with(addr, opts)?;
        if resumable {
            // The server may already hold a durable prefix of this log
            // (a previous partial run); don't send it twice.
            i = resume_index(log, c.hello().expect("handshake enforced").wal_seq);
        }
        c
    } else {
        Client::connect(addr)?
    };
    let mut overall = LatencyHistogram::default();
    let mut per_kind: Vec<(EventKind, LatencyHistogram)> = EventKind::ALL
        .into_iter()
        .map(|k| (k, LatencyHistogram::default()))
        .collect();
    let (mut offered, mut accepted, mut shed) = (0u64, 0u64, 0u64);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let t0 = Instant::now();
    let mut next = Duration::ZERO;
    let total_mutations = log.iter().filter(|e| e.event.is_mutation()).count() as u64;
    let mut resend_passes = 0u32;
    'passes: loop {
        'events: while i < log.len() {
            let e = &log[i];
            // Open-loop pacing: fire on the schedule, not on the last
            // response.
            if let Some(rate) = cfg.rate {
                let gap: f64 = rng.gen::<f64>().max(1e-12);
                next += Duration::from_secs_f64(-gap.ln() / rate);
                let now = t0.elapsed();
                if next > now {
                    std::thread::sleep(next - now);
                }
            }
            let kind = e.event.kind();
            let record = |hists: &mut Vec<(EventKind, LatencyHistogram)>,
                          overall: &mut LatencyHistogram,
                          nanos: u64| {
                overall.record(nanos);
                hists
                    .iter_mut()
                    .find(|(k, _)| *k == kind)
                    .expect("all kinds present")
                    .1
                    .record(nanos);
            };
            loop {
                let t = Instant::now();
                let resp = match client.send_event(&e.event) {
                    Ok(resp) => resp,
                    // A reset mid-flight (the server was killed): with a
                    // reconnect budget, come back and resume at the durable
                    // frontier — an event admitted-and-fsynced but un-acked
                    // is *not* resent (wal_seq already counts it), an event
                    // lost from the queue is.
                    Err(_) if resumable => {
                        let (c, at) = reconnect(addr, log, opts)?;
                        client = c;
                        i = at;
                        continue 'events;
                    }
                    Err(e) => return Err(e),
                };
                let nanos = t.elapsed().as_nanos() as u64;
                match resp {
                    Response::Accepted { .. } => {
                        offered += 1;
                        accepted += 1;
                        record(&mut per_kind, &mut overall, nanos);
                        break;
                    }
                    Response::Overloaded { .. } => {
                        offered += 1;
                        shed += 1;
                        record(&mut per_kind, &mut overall, nanos);
                        if !cfg.retry {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    // Stream-embedded reads and allocator-level rejections
                    // still measure a served request.
                    Response::Regret { .. } | Response::Rejected { .. } => {
                        record(&mut per_kind, &mut overall, nanos);
                        break;
                    }
                    // We dialed a follower (or a leader that has since
                    // been deposed): chase the referral when it names a
                    // leader, then resume at *that* process's durable
                    // frontier.
                    Response::NotLeader { leader } if resumable => {
                        if let Ok(next) = leader.parse::<SocketAddr>() {
                            addr = next;
                        }
                        let (c, at) = reconnect(addr, log, opts)?;
                        client = c;
                        i = at;
                        continue 'events;
                    }
                    // The server draining mid-log means the rest of the log
                    // cannot be delivered — loud failure, never a silent
                    // partial replay (deterministic-delivery callers treat
                    // the final state as a pure function of the *full* log).
                    Response::ShuttingDown => {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            format!(
                                "server began shutdown after {accepted} of {} events",
                                log.len()
                            ),
                        ))
                    }
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected response to mutation: {other:?}"),
                        ))
                    }
                }
            }
            i += 1;
        }

        if !(resumable && cfg.retry) {
            break 'passes;
        }
        // `Accepted` is admission, not durability: a SIGKILL can eat the
        // queued-but-unlogged tail *after* the last ack, and only the
        // durable frontier knows. Deterministic delivery therefore holds
        // the send loop open until `wal_seq` covers every mutation in
        // the log (this loadgen is the only mutation source), resending
        // whatever a crash lost. The resume anchor keeps the resend
        // exactly-once: a crash severs this connection, so a stats
        // failure is the crash signal, and the replacement `hello` says
        // where the durable prefix ends — a live, merely slow server
        // never triggers a resend.
        let mut last_seq = 0u64;
        let mut last_advance = Instant::now();
        let covered = loop {
            match client.stats() {
                Ok(s) if s.wal_seq >= total_mutations => break true,
                Ok(s) => {
                    if s.wal_seq > last_seq {
                        last_seq = s.wal_seq;
                        last_advance = Instant::now();
                    } else if last_advance.elapsed() > Duration::from_secs(60) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "durable frontier stalled at {last_seq} of \
                                 {total_mutations} mutations on a live server"
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break false,
            }
        };
        if covered {
            break 'passes;
        }
        resend_passes += 1;
        if resend_passes > opts.reconnect_attempts {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "reconnect budget exhausted with the durable frontier at \
                     {last_seq} of {total_mutations} mutations"
                ),
            ));
        }
        let (c, at) = reconnect(addr, log, opts)?;
        client = c;
        i = at;
    }
    // Drain: wait until the writer applied everything it admitted.
    let poll_stats = |client: &mut Client| -> io::Result<StatsView> {
        match client.stats() {
            Ok(s) => Ok(s),
            Err(_) if resumable => {
                *client = Client::connect_with(addr, opts)?;
                client.stats()
            }
            Err(e) => Err(e),
        }
    };
    let mut stats = poll_stats(&mut client)?;
    if cfg.drain {
        loop {
            if stats.queue_depth == 0 {
                let again = poll_stats(&mut client)?;
                if again.epoch == stats.epoch {
                    stats = again;
                    break;
                }
                stats = again;
            } else {
                std::thread::sleep(Duration::from_millis(1));
                stats = poll_stats(&mut client)?;
            }
        }
    }
    Ok((offered, accepted, shed, overall, per_kind, stats))
}

/// What one reader thread measured.
struct ReaderSide {
    count: u64,
    hist: LatencyHistogram,
    follower_reads: u64,
    fallback_reads: u64,
    lag_samples: Vec<u64>,
    leader_queue_samples: Vec<u64>,
    leader_shed_total: u64,
}

/// While demoted to the leader, re-probe the assigned follower after
/// this many queries.
const FOLLOWER_PROBE_EVERY: u64 = 64;

/// One reader connection: closed-loop mix of `regret` / `stats` / `ad`
/// queries until stopped.
///
/// With a `follower` assigned the reader prefers that replica and
/// watches its replication lag through the `stats` responses already in
/// the query mix: more than `max_lag` events behind (or unreachable)
/// demotes the reader to the leader, and a periodic probe promotes it
/// back once the follower has caught up.
fn reader_loop(
    leader: SocketAddr,
    follower: Option<SocketAddr>,
    stop: &AtomicBool,
    seed: u64,
    pause: Duration,
    opts: ClientOptions,
    max_lag: u64,
) -> io::Result<ReaderSide> {
    let resumable = opts.reconnect_attempts > 0;
    let mut on_follower = follower.is_some();
    let mut addr = follower.unwrap_or(leader);
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        // Follower not accepting yet (still bootstrapping): start on
        // the leader and let the probe bring us over later.
        Err(_) if on_follower && resumable => {
            on_follower = false;
            addr = leader;
            Client::connect_with(addr, &opts)?
        }
        Err(e) => return Err(e),
    };
    let mut side = ReaderSide {
        count: 0,
        hist: LatencyHistogram::default(),
        follower_reads: 0,
        fallback_reads: 0,
        lag_samples: Vec::new(),
        leader_queue_samples: Vec::new(),
        leader_shed_total: 0,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut since_probe = 0u64;
    while !stop.load(Ordering::Acquire) {
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        if let Some(f) = follower {
            if !on_follower {
                since_probe += 1;
                if since_probe >= FOLLOWER_PROBE_EVERY {
                    since_probe = 0;
                    if let Ok(mut probe) = Client::connect(f) {
                        if let Ok(s) = probe.stats() {
                            side.lag_samples.push(s.lag());
                            if s.lag() <= max_lag {
                                client = probe;
                                addr = f;
                                on_follower = true;
                            }
                        }
                    }
                }
            }
        }
        let roll = rng.gen_range(0..6u32);
        let req = match roll {
            0..=2 => Request::RegretQuery,
            3 | 4 => Request::Stats,
            _ => Request::AdQuery {
                id: rng.gen_range(1..12u32) as u64,
            },
        };
        let t = Instant::now();
        let resp = match client.request(&req) {
            Ok(resp) => resp,
            // Readers are stateless: across a kill/restart just get a
            // fresh connection and keep measuring. A dead *follower*
            // additionally demotes to the leader right away instead of
            // burning the reconnect budget on a corpse.
            Err(_) if resumable => {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if on_follower {
                    on_follower = false;
                    addr = leader;
                    since_probe = 0;
                }
                client = Client::connect_with(addr, &opts)?;
                continue;
            }
            Err(e) => return Err(e),
        };
        side.hist.record(t.elapsed().as_nanos() as u64);
        let routed = |side: &mut ReaderSide| {
            side.count += 1;
            if on_follower {
                side.follower_reads += 1;
            } else if follower.is_some() {
                side.fallback_reads += 1;
            }
        };
        match resp {
            Response::Regret { .. } | Response::Ad { .. } => routed(&mut side),
            Response::Stats(s) => {
                routed(&mut side);
                if on_follower {
                    side.lag_samples.push(s.lag());
                    if s.lag() > max_lag {
                        // Too stale to serve fresh-enough reads: demote.
                        on_follower = false;
                        addr = leader;
                        since_probe = 0;
                        client = Client::connect_with(addr, &opts)?;
                    }
                } else {
                    // Routed to the leader: these stats are the leader's
                    // own, so the registry-backed counters are the
                    // pressure signal lag-aware routing was blind to.
                    side.leader_queue_samples.push(s.queue_depth as u64);
                    let shedding = s.shed_total > side.leader_shed_total;
                    side.leader_shed_total = side.leader_shed_total.max(s.shed_total);
                    if shedding && follower.is_some() {
                        // The leader is shedding writes while we add
                        // read load to it — re-probe the follower at
                        // the next iteration instead of waiting out
                        // the full probe interval.
                        since_probe = FOLLOWER_PROBE_EVERY;
                    }
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected read response: {other:?}"),
                ))
            }
        }
    }
    Ok(side)
}
