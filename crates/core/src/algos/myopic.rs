//! MYOPIC baseline (§6): assign every user her `κ_u` most relevant ads by
//! expected direct revenue `δ(u,i)·cpe(i)`, ignoring virality and budgets.
//! Allocation A of Fig. 1 follows this rule.

use crate::allocation::Allocation;
use crate::metrics::AlgoStats;
use crate::problem::ProblemInstance;
use std::time::Instant;
use tirm_graph::NodeId;

/// Runs MYOPIC. Every user with a positive-revenue ad gets assigned, so the
/// number of distinct targeted users is `n` whenever all CTPs are positive
/// (the Table 3 behaviour).
pub fn myopic_allocate(problem: &ProblemInstance<'_>) -> (Allocation, AlgoStats) {
    let start = Instant::now();
    let h = problem.num_ads();
    let n = problem.num_nodes();
    let mut alloc = Allocation::empty(h, n);
    // (score, ad) scratch reused per user.
    let mut scored: Vec<(f64, usize)> = Vec::with_capacity(h);
    for u in 0..n as NodeId {
        let k = problem.attention.of(u) as usize;
        if k == 0 {
            continue;
        }
        scored.clear();
        for i in 0..h {
            let rev = problem.direct_revenue(u, i);
            if rev > 0.0 {
                scored.push((rev, i));
            }
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, i) in scored.iter().take(k) {
            alloc.assign(u, i);
        }
    }
    let stats = AlgoStats {
        runtime: start.elapsed(),
        seeds_per_ad: (0..h).map(|i| alloc.seeds(i).len()).collect(),
        estimated_revenue: (0..h)
            .map(|i| {
                alloc
                    .seeds(i)
                    .iter()
                    .map(|&u| problem.direct_revenue(u, i))
                    .sum()
            })
            .collect(),
        memory_bytes: 0,
        rr_sets_per_ad: vec![],
        oracle_calls: 0,
        ..AlgoStats::default()
    };
    (alloc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, Attention};
    use tirm_graph::generators;
    use tirm_topics::{CtpTable, TopicDist};

    #[test]
    fn picks_highest_direct_revenue_ad() {
        // Two ads: ad 0 has CTP 0.9 for everyone, ad 1 has 0.8 (Fig. 1
        // shape). With κ = 1 everyone goes to ad 0.
        let g = generators::path(6);
        let ads = vec![
            Advertiser::new(4.0, 1.0, TopicDist::single(1, 0)),
            Advertiser::new(2.0, 1.0, TopicDist::single(1, 0)),
        ];
        let probs = vec![vec![0.2f32; g.num_edges()]; 2];
        let ctp = CtpTable::direct(vec![vec![0.9; 6], vec![0.8; 6]]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, stats) = myopic_allocate(&p);
        assert_eq!(alloc.seeds(0).len(), 6);
        assert_eq!(alloc.seeds(1).len(), 0);
        assert_eq!(alloc.distinct_targeted(), 6);
        alloc.validate(&p).unwrap();
        assert!((stats.estimated_revenue[0] - 5.4).abs() < 1e-6);
    }

    #[test]
    fn cpe_breaks_ctp_ties() {
        // Same CTP but ad 1 pays double → ad 1 wins.
        let g = generators::path(3);
        let ads = vec![
            Advertiser::new(1.0, 1.0, TopicDist::single(1, 0)),
            Advertiser::new(1.0, 2.0, TopicDist::single(1, 0)),
        ];
        let probs = vec![vec![0.0f32; g.num_edges()]; 2];
        let ctp = CtpTable::constant(3, 2, 0.5);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, _) = myopic_allocate(&p);
        assert_eq!(alloc.seeds(1).len(), 3);
        assert!(alloc.seeds(0).is_empty());
    }

    #[test]
    fn kappa_takes_top_k() {
        let g = generators::path(4);
        let ads = (0..3)
            .map(|_| Advertiser::new(1.0, 1.0, TopicDist::single(1, 0)))
            .collect();
        let probs = vec![vec![0.0f32; g.num_edges()]; 3];
        let ctp = CtpTable::direct(vec![vec![0.3; 4], vec![0.2; 4], vec![0.1; 4]]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(2), 0.0);
        let (alloc, _) = myopic_allocate(&p);
        assert_eq!(alloc.seeds(0).len(), 4);
        assert_eq!(alloc.seeds(1).len(), 4);
        assert_eq!(alloc.seeds(2).len(), 0, "κ=2 stops at the second ad");
        alloc.validate(&p).unwrap();
    }
}
