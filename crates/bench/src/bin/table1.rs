//! Table 1: statistics of the (generated) network data sets, printed next
//! to the paper's real-data numbers for comparison.

use tirm_bench::{banner, write_json};
use tirm_core::report::Table;
use tirm_workloads::{Dataset, DatasetKind, ScaleConfig};

fn main() {
    let cfg = ScaleConfig::from_env();
    banner("table1: dataset statistics", &cfg);
    let mut t = Table::new(&[
        "dataset",
        "#nodes",
        "#edges",
        "type",
        "paper #nodes",
        "paper #edges",
        "max indeg",
        "gini(indeg)",
        "reciprocity",
    ]);
    let mut rows = Vec::new();
    for kind in [
        DatasetKind::Flixster,
        DatasetKind::Epinions,
        DatasetKind::Dblp,
        DatasetKind::LiveJournal,
    ] {
        let d = Dataset::generate(kind, &cfg, 0xda7a + kind as u64);
        let st = d.stats();
        let (paper_n, paper_m) = match kind {
            DatasetKind::Flixster => ("30K", "425K"),
            DatasetKind::Epinions => ("76K", "509K"),
            DatasetKind::Dblp => ("317K", "1.05M (undirected)"),
            DatasetKind::LiveJournal => ("4.8M", "69M"),
        };
        let ty = if st.reciprocity > 0.95 {
            "undirected"
        } else {
            "directed"
        };
        t.row(vec![
            kind.name().to_string(),
            st.nodes.to_string(),
            st.edges.to_string(),
            ty.to_string(),
            paper_n.to_string(),
            paper_m.to_string(),
            st.max_in_degree.to_string(),
            format!("{:.3}", st.in_degree_gini),
            format!("{:.3}", st.reciprocity),
        ]);
        rows.push(serde_json::json!({
            "dataset": kind.name(),
            "nodes": st.nodes,
            "edges": st.edges,
            "max_in_degree": st.max_in_degree,
            "mean_degree": st.mean_degree,
            "gini_in": st.in_degree_gini,
            "reciprocity": st.reciprocity,
        }));
    }
    println!("{}", t.render());
    write_json("table1", &rows);
}
