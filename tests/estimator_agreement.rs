//! Cross-crate estimator agreement: RR-set coverage estimates, RRC
//! sampling, Monte-Carlo simulation and exact enumeration must all agree
//! within their error budgets (Propositions 1–2, Lemma 2, Theorem 5).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tirm_diffusion::{exact_spread, mc_spread};
use tirm_graph::{generators, NodeId};
use tirm_rrset::{RrCollection, RrSampler, SampleWorkspace};

/// Coverage-based spread estimate `n · F_R(S)` over a fresh collection.
fn rr_estimate(
    g: &tirm_graph::DiGraph,
    probs: &[f32],
    seeds: &[NodeId],
    samples: usize,
    seed: u64,
    ctp: Option<&[f32]>,
) -> f64 {
    let sampler = RrSampler::new(g, probs);
    let mut ws = SampleWorkspace::new(g.num_nodes());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut covered = 0usize;
    for _ in 0..samples {
        let set = match ctp {
            None => sampler.sample(&mut ws, &mut rng),
            Some(c) => sampler.sample_rrc(c, &mut ws, &mut rng),
        };
        if set.iter().any(|v| seeds.contains(v)) {
            covered += 1;
        }
    }
    g.num_nodes() as f64 * covered as f64 / samples as f64
}

#[test]
fn proposition_1_rr_estimates_ic_spread() {
    // n·E[F_R(S)] = σ_ic(S) — checked against exact enumeration.
    let g = generators::erdos_renyi(10, 16, 5);
    let probs = vec![0.3f32; g.num_edges()];
    let seeds = vec![0u32, 3];
    let truth = exact_spread(&g, &probs, &seeds, None);
    let est = rr_estimate(&g, &probs, &seeds, 200_000, 9, None);
    assert!(
        (est - truth).abs() < 0.05,
        "RR estimate {est} vs exact {truth}"
    );
}

#[test]
fn lemma_2_rrc_estimates_ctp_spread() {
    // n·E[F_Q(S)] = σ_ctp(S) with node-level CTP coins in the sampler.
    let g = generators::erdos_renyi(10, 16, 6);
    let probs = vec![0.3f32; g.num_edges()];
    let ctp: Vec<f32> = (0..10).map(|i| 0.2 + 0.05 * i as f32).collect();
    let seeds = vec![1u32, 4];
    let truth = exact_spread(&g, &probs, &seeds, Some(&ctp));
    let est = rr_estimate(&g, &probs, &seeds, 300_000, 11, Some(&ctp));
    assert!(
        (est - truth).abs() < 0.05,
        "RRC estimate {est} vs exact {truth}"
    );
}

#[test]
fn theorem_5_ctp_scaled_rr_marginals_match_rrc_marginals() {
    // δ(u)·(E[F_R(S∪u)] − E[F_R(S)]) = E[F_Q(S∪u)] − E[F_Q(S)].
    let g = generators::preferential_attachment(60, 3, 0.3, 2);
    let probs = vec![0.25f32; g.num_edges()];
    let delta_u = 0.3f32;
    let mut ctp = vec![1.0f32; 60];
    let u: NodeId = 0; // the PA hub — large marginal, good signal
    ctp[u as usize] = delta_u;
    let s: Vec<NodeId> = vec![10, 20];
    let mut s_u = s.clone();
    s_u.push(u);
    let samples = 300_000;
    // Left side: plain RR sampling, marginal scaled by δ(u).
    let rr_s = rr_estimate(&g, &probs, &s, samples, 21, None);
    let rr_su = rr_estimate(&g, &probs, &s_u, samples, 21, None);
    let lhs = delta_u as f64 * (rr_su - rr_s);
    // Right side: RRC sampling with CTPs (seeds in S have CTP 1).
    let rrc_s = rr_estimate(&g, &probs, &s, samples, 22, Some(&ctp));
    let rrc_su = rr_estimate(&g, &probs, &s_u, samples, 22, Some(&ctp));
    let rhs = rrc_su - rrc_s;
    assert!(
        (lhs - rhs).abs() < 0.15,
        "Theorem 5: {lhs} vs {rhs} (marginals must agree)"
    );
}

#[test]
fn max_cover_greedy_matches_mc_ranking() {
    // The node TIM/TIRM pick by coverage must have the best MC spread too.
    let g = generators::star(80);
    let probs = vec![0.3f32; g.num_edges()];
    let sampler = RrSampler::new(&g, &probs);
    let mut ws = SampleWorkspace::new(80);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut coll = RrCollection::new(80);
    for _ in 0..50_000 {
        coll.add_set(sampler.sample(&mut ws, &mut rng));
    }
    let (best, _) = coll.argmax_cov(|_| true).unwrap();
    assert_eq!(best, 0, "the hub must dominate coverage");
    let hub_mc = mc_spread(&g, &probs, &[0], None, 20_000, 1);
    let leaf_mc = mc_spread(&g, &probs, &[1], None, 20_000, 1);
    assert!(hub_mc > leaf_mc * 5.0);
}
