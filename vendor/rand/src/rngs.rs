//! Named generators (only `SmallRng` is provided).

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng};

/// Small, fast, non-cryptographic RNG (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl SmallRng {
    /// The generator's raw 256-bit state (checkpoint support).
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.0.state()
    }

    /// Rebuilds a generator at an exact stream position captured by
    /// [`Self::state`]. Panics on the (unreachable-by-seeding) all-zero
    /// state.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng(Xoshiro256PlusPlus::from_state(s))
    }
}

impl SeedableRng for SmallRng {
    #[inline]
    fn seed_from_u64(state: u64) -> Self {
        SmallRng(Xoshiro256PlusPlus::from_seed_u64(state))
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.0.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
