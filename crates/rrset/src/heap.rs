//! Lazy max-heap for CELF-style best-candidate selection.
//!
//! Keys (coverage counts / cached marginal gains) only *decrease* between
//! rebuilds, so a popped entry whose stored key no longer matches the
//! current value can simply be re-inserted with the fresh (smaller) key —
//! the classic CELF invariant. Entries that became permanently ineligible
//! (attention bound exhausted, already seeded) are dropped.

use std::collections::BinaryHeap;
use tirm_graph::NodeId;

/// Max-heap of `(key, node)` with lazy invalidation.
#[derive(Clone, Debug, Default)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<(u64, NodeId)>,
}

/// Verdict returned by the caller's inspection closure in
/// [`LazyMaxHeap::pop_best`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The stored key is still accurate and the node usable → return it.
    Take,
    /// The node can never be used again → drop it.
    Drop,
    /// The key is stale; re-insert with this fresh key.
    Refresh(u64),
}

impl LazyMaxHeap {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap pre-filled from `(node, key)` pairs.
    pub fn build(entries: impl IntoIterator<Item = (NodeId, u64)>) -> Self {
        LazyMaxHeap {
            heap: entries.into_iter().map(|(v, k)| (k, v)).collect(),
        }
    }

    /// Number of live entries (including stale ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pushes an entry.
    pub fn push(&mut self, node: NodeId, key: u64) {
        self.heap.push((key, node));
    }

    /// Clears and refills from scratch (used after RR-sample top-ups, when
    /// keys may have *increased* and lazy invalidation would be unsound).
    pub fn rebuild(&mut self, entries: impl IntoIterator<Item = (NodeId, u64)>) {
        self.heap.clear();
        for (v, k) in entries {
            self.heap.push((k, v));
        }
    }

    /// Pops the best valid entry. `judge(node, stored_key)` inspects the
    /// current top; see [`Verdict`]. Returns `None` when the heap empties.
    pub fn pop_best(
        &mut self,
        mut judge: impl FnMut(NodeId, u64) -> Verdict,
    ) -> Option<(NodeId, u64)> {
        while let Some((key, node)) = self.heap.pop() {
            match judge(node, key) {
                Verdict::Take => return Some((node, key)),
                Verdict::Drop => continue,
                Verdict::Refresh(fresh) => {
                    debug_assert!(
                        fresh <= key,
                        "lazy heap keys must be non-increasing (got {key} -> {fresh})"
                    );
                    self.heap.push((fresh, node));
                }
            }
        }
        None
    }

    /// Peeks at the maximum stored key (possibly stale).
    pub fn peek_key(&self) -> Option<u64> {
        self.heap.peek().map(|&(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_best_takes_max() {
        let mut h = LazyMaxHeap::build(vec![(0, 5), (1, 9), (2, 3)]);
        let got = h.pop_best(|_, _| Verdict::Take).unwrap();
        assert_eq!(got, (1, 9));
    }

    #[test]
    fn refresh_reorders() {
        // Node 1 claims 9 but is stale (really 1); node 0 should win.
        let mut h = LazyMaxHeap::build(vec![(0, 5), (1, 9)]);
        let got = h
            .pop_best(|node, key| {
                if node == 1 && key == 9 {
                    Verdict::Refresh(1)
                } else {
                    Verdict::Take
                }
            })
            .unwrap();
        assert_eq!(got, (0, 5));
        // Node 1 remains with its refreshed key.
        let next = h.pop_best(|_, _| Verdict::Take).unwrap();
        assert_eq!(next, (1, 1));
    }

    #[test]
    fn drop_removes_permanently() {
        let mut h = LazyMaxHeap::build(vec![(0, 5), (1, 9)]);
        let got = h
            .pop_best(|node, _| {
                if node == 1 {
                    Verdict::Drop
                } else {
                    Verdict::Take
                }
            })
            .unwrap();
        assert_eq!(got.0, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn empty_heap_returns_none() {
        let mut h = LazyMaxHeap::new();
        assert_eq!(h.pop_best(|_, _| Verdict::Take), None);
    }

    #[test]
    fn rebuild_replaces_contents() {
        let mut h = LazyMaxHeap::build(vec![(0, 1)]);
        h.rebuild(vec![(5, 7), (6, 2)]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.peek_key(), Some(7));
    }
}
