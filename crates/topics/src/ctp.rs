//! Click-through probabilities `δ(u, i)` — the probability that user `u`
//! clicks ad `i` when shown it as a promoted post with no social proof.
//!
//! The paper derives `δ(u,i)` by projecting per-topic seed click
//! probabilities `p^z_{H,u}` through the ad's topic distribution (§3), but
//! its quality experiments simply sample `δ(u,i) ~ U[0.01, 0.03]` (§6).
//! Both routes are provided.

use crate::dist::TopicDist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tirm_graph::NodeId;

/// Per-topic seed click probabilities `p^z_{H,u}`, node-major
/// (`probs[u·K + z]`).
#[derive(Clone, Debug)]
pub struct NodeTopicProbs {
    k: usize,
    probs: Vec<f32>,
}

impl NodeTopicProbs {
    /// All-zero table for `n` nodes, `k` topics.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0);
        NodeTopicProbs {
            k,
            probs: vec![0.0; n * k],
        }
    }

    /// Builds by evaluating `f(node, topic)`.
    pub fn from_fn(n: usize, k: usize, mut f: impl FnMut(NodeId, usize) -> f32) -> Self {
        let mut t = NodeTopicProbs::new(n, k);
        for u in 0..n {
            for z in 0..k {
                t.set(u as NodeId, z, f(u as NodeId, z));
            }
        }
        t
    }

    /// Number of topics.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.probs.len() / self.k
    }

    /// Sets `p^z_{H,u}`.
    #[inline]
    pub fn set(&mut self, u: NodeId, z: usize, p: f32) {
        debug_assert!((0.0..=1.0).contains(&p));
        self.probs[u as usize * self.k + z] = p;
    }

    /// Reads `p^z_{H,u}`.
    #[inline]
    pub fn get(&self, u: NodeId, z: usize) -> f32 {
        self.probs[u as usize * self.k + z]
    }

    /// Projects through an ad's topic distribution, yielding `δ(·, i)`.
    pub fn project(&self, ad: &TopicDist) -> Vec<f32> {
        assert_eq!(ad.k(), self.k, "ad lives in a different topic space");
        let n = self.num_nodes();
        let w = ad.weights();
        let mut out = vec![0.0f32; n];
        for (u, slot) in out.iter_mut().enumerate() {
            let row = &self.probs[u * self.k..(u + 1) * self.k];
            let acc: f32 = w.iter().zip(row).map(|(wz, pz)| wz * pz).sum();
            *slot = acc.clamp(0.0, 1.0);
        }
        out
    }
}

/// The materialised `δ(u, i)` table: one probability vector per ad.
#[derive(Clone, Debug)]
pub struct CtpTable {
    per_ad: Vec<Vec<f32>>,
}

impl CtpTable {
    /// Wraps explicit per-ad CTP vectors (all must share the node count).
    pub fn direct(per_ad: Vec<Vec<f32>>) -> Self {
        assert!(!per_ad.is_empty(), "need at least one ad");
        let n = per_ad[0].len();
        assert!(
            per_ad.iter().all(|v| v.len() == n),
            "all ads must cover the same node set"
        );
        CtpTable { per_ad }
    }

    /// Projects per-topic seed probabilities through each ad (§3 route).
    pub fn from_topics(seed_probs: &NodeTopicProbs, ads: &[TopicDist]) -> Self {
        CtpTable::direct(ads.iter().map(|a| seed_probs.project(a)).collect())
    }

    /// The §6 route: `δ(u,i) ~ U[lo, hi]` i.i.d. for all user–ad pairs
    /// (the paper uses `[0.01, 0.03]`, "in keeping with real-life CTPs").
    pub fn uniform_random(n: usize, h: usize, lo: f32, hi: f32, seed: u64) -> Self {
        assert!(h > 0 && (0.0..=1.0).contains(&lo) && (lo..=1.0).contains(&hi));
        let mut rng = SmallRng::seed_from_u64(seed);
        let per_ad = (0..h)
            .map(|_| (0..n).map(|_| rng.gen_range(lo..=hi)).collect())
            .collect();
        CtpTable { per_ad }
    }

    /// Constant CTP for every pair (the scalability experiments use 1).
    pub fn constant(n: usize, h: usize, value: f32) -> Self {
        assert!((0.0..=1.0).contains(&value));
        CtpTable {
            per_ad: vec![vec![value; n]; h],
        }
    }

    /// Number of ads `h`.
    #[inline]
    pub fn num_ads(&self) -> usize {
        self.per_ad.len()
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.per_ad[0].len()
    }

    /// `δ(u, i)`.
    #[inline]
    pub fn get(&self, u: NodeId, ad: usize) -> f32 {
        self.per_ad[ad][u as usize]
    }

    /// Full CTP vector of ad `i`.
    #[inline]
    pub fn ad(&self, ad: usize) -> &[f32] {
        &self.per_ad[ad]
    }

    /// Smallest CTP in the table (used by λ-assumption checks: Theorem 2
    /// assumes `λ ≤ δ(u,i)·cpe(i)` for all pairs).
    pub fn min_ctp(&self) -> f32 {
        self.per_ad
            .iter()
            .flat_map(|v| v.iter().copied())
            .fold(f32::INFINITY, f32::min)
    }

    /// Bytes held by the table.
    pub fn memory_bytes(&self) -> usize {
        self.per_ad.iter().map(|v| v.len() * 4).sum()
    }

    /// Consumes the table, returning the per-ad columns — the inverse of
    /// [`CtpTable::direct`]. The online serving layer uses this to hand
    /// each ad its CTP column back after a re-allocation borrowed them
    /// into a transient [`CtpTable`].
    pub fn into_columns(self) -> Vec<Vec<f32>> {
        self.per_ad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_within_bounds_and_deterministic() {
        let a = CtpTable::uniform_random(100, 3, 0.01, 0.03, 7);
        let b = CtpTable::uniform_random(100, 3, 0.01, 0.03, 7);
        for ad in 0..3 {
            for u in 0..100 {
                let p = a.get(u, ad);
                assert!((0.01..=0.03).contains(&p));
                assert_eq!(p, b.get(u, ad));
            }
        }
        assert!(a.min_ctp() >= 0.01);
    }

    #[test]
    fn topic_projection_route() {
        // Node 0 clicks only topic-0 ads, node 1 only topic-1 ads.
        let probs = NodeTopicProbs::from_fn(2, 2, |u, z| if u as usize == z { 0.8 } else { 0.0 });
        let ads = vec![TopicDist::single(2, 0), TopicDist::single(2, 1)];
        let t = CtpTable::from_topics(&probs, &ads);
        assert!((t.get(0, 0) - 0.8).abs() < 1e-6);
        assert_eq!(t.get(0, 1), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
        assert!((t.get(1, 1) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn constant_table() {
        let t = CtpTable::constant(5, 2, 1.0);
        assert_eq!(t.num_ads(), 2);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.get(4, 1), 1.0);
        assert_eq!(t.min_ctp(), 1.0);
        assert_eq!(t.memory_bytes(), 2 * 5 * 4);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn direct_rejects_ragged() {
        CtpTable::direct(vec![vec![0.1; 3], vec![0.1; 4]]);
    }

    #[test]
    fn mixed_topic_ad_interpolates() {
        let probs = NodeTopicProbs::from_fn(1, 2, |_, z| if z == 0 { 0.9 } else { 0.1 });
        let ad = TopicDist::new(vec![0.5, 0.5]).unwrap();
        let t = CtpTable::from_topics(&probs, &[ad]);
        assert!((t.get(0, 0) - 0.5).abs() < 1e-6);
    }
}
