//! The Fig. 1 worked example as a ready-made problem instance.
//!
//! Four ads `a, b, c, d` share the same arc probabilities; CTPs are
//! `δ(u,a) = 0.9`, `δ(u,b) = 0.8`, `δ(u,c) = 0.7`, `δ(u,d) = 0.6` for all
//! six users; budgets `(4, 2, 2, 1)`, CPE 1, κ = 1.

use tirm_core::{Advertiser, Allocation, Attention, ProblemInstance};
use tirm_graph::{gadgets, DiGraph};
use tirm_topics::{CtpTable, TopicDist};

/// Owns the toy graph and its probabilities so instances can borrow them.
pub struct Fig1 {
    /// The six-node network.
    pub graph: DiGraph,
    /// Shared arc probabilities (same for all four ads).
    pub probs: Vec<f32>,
}

impl Fig1 {
    /// Builds the gadget.
    pub fn new() -> Self {
        let (graph, probs) = gadgets::fig1_toy();
        Fig1 { graph, probs }
    }

    /// The problem instance with the given penalty λ (Examples 1–2 use
    /// λ = 0 and λ = 0.1).
    pub fn problem(&self, lambda: f64) -> ProblemInstance<'_> {
        let ctps = [0.9f32, 0.8, 0.7, 0.6];
        let budgets = [4.0f64, 2.0, 2.0, 1.0];
        let ads = budgets
            .iter()
            .map(|&b| Advertiser::new(b, 1.0, TopicDist::single(1, 0)))
            .collect();
        let edge_probs = vec![self.probs.clone(); 4];
        let ctp = CtpTable::direct(ctps.iter().map(|&d| vec![d; 6]).collect::<Vec<_>>());
        ProblemInstance::new(
            &self.graph,
            ads,
            edge_probs,
            ctp,
            Attention::Uniform(1),
            lambda,
        )
    }

    /// The paper's Allocation A: every user gets ad `a` (MYOPIC's output).
    pub fn allocation_a(&self) -> Allocation {
        let mut al = Allocation::empty(4, 6);
        for u in 0..6 {
            al.assign(u, 0);
        }
        al
    }

    /// The paper's Allocation B: `⟨v1,a⟩,⟨v2,a⟩,⟨v3,b⟩,⟨v4,c⟩,⟨v5,c⟩,⟨v6,d⟩`.
    pub fn allocation_b(&self) -> Allocation {
        let mut al = Allocation::empty(4, 6);
        al.assign(0, 0);
        al.assign(1, 0);
        al.assign(2, 1);
        al.assign(3, 2);
        al.assign(4, 2);
        al.assign(5, 3);
        al
    }
}

impl Default for Fig1 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_diffusion::exact_activation_probs;

    /// Exact expected clicks of every (allocation, ad) pair, summed.
    fn exact_total_clicks(fig: &Fig1, alloc: &Allocation) -> f64 {
        let p = fig.problem(0.0);
        (0..4)
            .map(|i| {
                let seeds = alloc.seeds(i);
                if seeds.is_empty() {
                    return 0.0;
                }
                exact_activation_probs(&fig.graph, &fig.probs, seeds, Some(p.ctp.ad(i)))
                    .iter()
                    .sum::<f64>()
            })
            .sum()
    }

    #[test]
    fn allocation_a_expected_clicks_match_paper() {
        // Paper: 5.55 (computed with an independence approximation at v6;
        // the exact value differs by < 0.01).
        let fig = Fig1::new();
        let total = exact_total_clicks(&fig, &fig.allocation_a());
        assert!((total - 5.55).abs() < 0.02, "got {total}");
    }

    #[test]
    fn allocation_b_expected_clicks_match_paper() {
        // Paper: 6.3 (same caveat).
        let fig = Fig1::new();
        let total = exact_total_clicks(&fig, &fig.allocation_b());
        assert!((total - 6.3).abs() < 0.05, "got {total}");
    }

    #[test]
    fn allocation_b_beats_a() {
        let fig = Fig1::new();
        let a = exact_total_clicks(&fig, &fig.allocation_a());
        let b = exact_total_clicks(&fig, &fig.allocation_b());
        assert!(b > a, "virality-aware allocation must win: {b} vs {a}");
    }

    #[test]
    fn both_allocations_valid() {
        let fig = Fig1::new();
        let p = fig.problem(0.0);
        fig.allocation_a().validate(&p).unwrap();
        fig.allocation_b().validate(&p).unwrap();
    }
}
