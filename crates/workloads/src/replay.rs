//! Replay driver: feeds an event log through an
//! [`OnlineAllocator`], recording per-event-type latency
//! histograms and end-to-end throughput.
//!
//! The driver processes events as fast as the engine allows (the log's
//! virtual timestamps are pacing metadata, not a schedule): the measured
//! events/s is the serving layer's capacity, and the per-kind latency
//! percentiles are what the `online` bench tier stamps into its artifact
//! cells.

use crate::events::LogEvent;
use std::time::Instant;
use tirm_online::{EventKind, OnlineAllocator, OnlineStats};

/// Exact-sample latency store, now shared workspace-wide from
/// [`tirm_obs`]. Re-exported under its historical name so report fields
/// and downstream callers (loadgen, the bench suite) are unchanged; its
/// nearest-rank percentile semantics are pinned by tests in `tirm_obs`.
pub use tirm_obs::SampleHistogram as LatencyHistogram;

/// What a replay measured.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Events processed (accepted + rejected).
    pub events: usize,
    /// Events the engine rejected (invalid ids/payloads).
    pub rejected: usize,
    /// End-to-end wall-clock seconds.
    pub wall_s: f64,
    /// Accepted events per wall-clock second.
    pub events_per_s: f64,
    /// Latency histogram over all accepted events.
    pub overall: LatencyHistogram,
    /// Per-kind histograms, [`EventKind::ALL`] order, kinds never seen
    /// included (empty histograms).
    pub per_kind: Vec<(EventKind, LatencyHistogram)>,
    /// Engine regret estimate after the final event.
    pub final_regret_estimate: f64,
    /// Engine lifetime counters after the replay.
    pub stats: OnlineStats,
}

impl ReplayReport {
    /// The histogram of one kind.
    pub fn kind(&self, kind: EventKind) -> &LatencyHistogram {
        &self
            .per_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all kinds present")
            .1
    }
}

/// Replays `log` through `allocator`, measuring each `process` call.
/// Rejected events are counted and skipped (a serving layer logs and
/// moves on).
pub fn replay(allocator: &mut OnlineAllocator<'_>, log: &[LogEvent]) -> ReplayReport {
    let mut overall = LatencyHistogram::default();
    let mut per_kind: Vec<(EventKind, LatencyHistogram)> = EventKind::ALL
        .into_iter()
        .map(|k| (k, LatencyHistogram::default()))
        .collect();
    let mut rejected = 0usize;
    let t0 = Instant::now();
    for e in log {
        let kind = e.event.kind();
        let t = Instant::now();
        let outcome = allocator.process(&e.event);
        let nanos = t.elapsed().as_nanos() as u64;
        match outcome {
            Ok(_) => {
                overall.record(nanos);
                per_kind
                    .iter_mut()
                    .find(|(k, _)| *k == kind)
                    .expect("all kinds present")
                    .1
                    .record(nanos);
            }
            Err(_) => rejected += 1,
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let accepted = log.len() - rejected;
    ReplayReport {
        events: log.len(),
        rejected,
        wall_s,
        events_per_s: if wall_s > 0.0 {
            accepted as f64 / wall_s
        } else {
            0.0
        },
        overall,
        per_kind,
        final_regret_estimate: allocator.regret_estimate(),
        stats: allocator.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use crate::events::EventStreamSpec;
    use tirm_core::TirmOptions;
    use tirm_graph::generators;
    use tirm_online::{OnlineConfig, OnlineEvent};
    use tirm_topics::genprob;

    #[test]
    fn histogram_reexport_keeps_pinned_percentiles() {
        // The real behavior pin lives in tirm_obs; this guards the
        // re-export path reports are built against.
        let mut h = LatencyHistogram::default();
        for ns in [1_000u64, 2_000, 3_000, 4_000, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.percentile_us(50.0), 3.0);
    }

    #[test]
    fn replay_measures_and_counts() {
        let g = generators::preferential_attachment(200, 3, 0.3, 3);
        let probs = genprob::exponential_topic_probs(g.num_edges(), 10, 12.0, 5);
        let mut alloc = OnlineAllocator::new(
            &g,
            &probs,
            OnlineConfig {
                tirm: TirmOptions {
                    max_theta_per_ad: Some(5_000),
                    ..TirmOptions::default()
                },
                kappa: 2,
                ..OnlineConfig::default()
            },
        );
        let mut log = EventStreamSpec::for_dataset(DatasetKind::Epinions, 30, 9).generate(0.05);
        // One invalid event: the driver must count, not die.
        log.push(crate::events::LogEvent {
            at: 1e9,
            event: OnlineEvent::AdDeparture { id: 999_999 },
        });
        let report = replay(&mut alloc, &log);
        assert_eq!(report.events, 31);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.overall.count(), 30);
        assert!(report.events_per_s > 0.0);
        assert!(report.kind(EventKind::Arrival).count() > 0);
        let counted: usize = report.per_kind.iter().map(|(_, h)| h.count()).sum();
        assert_eq!(counted, 30);
        assert!(report.stats.events >= 31);
    }
}
