//! The correctness anchor of the degree-relabeled sampling layout:
//! allocating with the relabeled mark space and mapping everything back
//! through the inverse permutation (which the fast path does internally —
//! sampled sets always carry original node ids) must be **bit-identical**
//! to allocating on the original labeling. Not statistically close:
//! identical seeds, identical revenue estimates, identical regret. The
//! layout walks the original CSR in original arc order and only permutes
//! mark-array indices, so the RNG word stream never shifts — these tests
//! pin that construction against regressions.

use proptest::prelude::*;
use tirm_core::{
    evaluate, tirm_allocate, Advertiser, Attention, ProblemInstance, RelabelMode, TirmOptions,
};
use tirm_graph::generators;
use tirm_topics::{CtpTable, TopicDist};

// Force the layouts explicitly: the property graphs are far below the
// `RelabelMode::Auto` threshold, so `Auto` would make both arms identity
// and the comparison vacuous.
fn opts(seed: u64, threads: usize, relabel: RelabelMode) -> TirmOptions {
    TirmOptions {
        eps: 0.3,
        seed,
        threads,
        max_theta_per_ad: Some(3_000),
        relabel,
        ..TirmOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn relabeled_allocation_is_bit_identical(
        seed in 0u64..1000,
        gseed in 0u64..50,
        n in 60usize..200,
        h in 1usize..4,
        threads in 1usize..3,
        ctp_code in 0usize..3,
        p_edge in 1u32..20,
    ) {
        let g = generators::preferential_attachment(n, 3, 0.25, gseed);
        let ads: Vec<Advertiser> = (0..h)
            .map(|i| Advertiser::new(6.0 + i as f64, 1.0, TopicDist::single(1, 0)))
            .collect();
        let probs = vec![vec![p_edge as f32 / 40.0; g.num_edges()]; h];
        // δ = 1 exercises the scalability setup, small δ the quality one.
        let delta = [1.0f32, 0.5, 0.05][ctp_code];
        let ctp = CtpTable::constant(n, h, delta);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(2), 0.0);

        let (a_plain, s_plain) = tirm_allocate(&p, opts(seed, threads, RelabelMode::Off));
        let (a_fast, s_fast) = tirm_allocate(&p, opts(seed, threads, RelabelMode::On));

        for i in 0..h {
            prop_assert_eq!(a_plain.seeds(i), a_fast.seeds(i), "ad {}", i);
        }
        // Revenue estimates must match to the bit, not approximately.
        prop_assert_eq!(&s_plain.estimated_revenue, &s_fast.estimated_revenue);
        prop_assert_eq!(s_plain.rr_sets_per_ad, s_fast.rr_sets_per_ad);
        prop_assert_eq!(s_plain.oracle_calls, s_fast.oracle_calls);

        // Identical allocations evaluate to identical regret; assert it
        // end to end anyway so the property reads like the guarantee.
        let r_plain = evaluate(&p, &a_plain, 500, 3, 1).regret.total();
        let r_fast = evaluate(&p, &a_fast, 500, 3, 1).regret.total();
        prop_assert_eq!(r_plain.to_bits(), r_fast.to_bits());
    }
}
