//! Compressed-sparse-row digraph with forward and reverse adjacency.

/// Node identifier. `u32` keeps adjacency arrays compact (the paper's largest
/// graph, LIVEJOURNAL, has 4.8M nodes — far below `u32::MAX`).
pub type NodeId = u32;

/// Canonical edge identifier: the position of the arc in the forward
/// (out-adjacency) CSR ordering. Reverse adjacency stores, for every
/// in-neighbour position, the canonical id of the corresponding arc so that
/// per-edge attribute vectors (e.g. per-ad influence probabilities) can be
/// shared between forward simulation and reverse-reachable sampling.
pub type EdgeId = u32;

/// An immutable directed graph in CSR form.
///
/// Both directions are materialised:
/// * `out_offsets`/`out_targets` — forward adjacency, defining edge ids;
/// * `in_offsets`/`in_sources`/`in_edge_ids` — reverse adjacency, each entry
///   carrying the canonical [`EdgeId`] of the arc it mirrors.
#[derive(Clone, Debug)]
pub struct DiGraph {
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) in_edge_ids: Vec<EdgeId>,
}

impl DiGraph {
    /// Builds a graph from an arc list. Arcs are deduplicated and self-loops
    /// removed; see [`crate::GraphBuilder`] for the full pipeline.
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = crate::GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `u` (number of followers that see `u`'s posts).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as usize
    }

    /// In-degree of `v` (number of users `v` follows).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Iterates over `u`'s out-arcs as `(edge_id, target)` pairs.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        (lo..hi).map(move |i| (i as EdgeId, self.out_targets[i]))
    }

    /// Iterates over `v`'s in-arcs as `(edge_id, source)` pairs, where
    /// `edge_id` is the canonical (forward) id of the arc `source → v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.in_edge_ids[i], self.in_sources[i]))
    }

    /// Out-neighbour slice of `u` (targets only).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbour slice of `v` (sources only).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Returns the canonical id of arc `(u, v)` if present (binary search on
    /// the sorted out-adjacency of `u`).
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        self.out_targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|p| (lo + p) as EdgeId)
    }

    /// True iff arc `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Source and target of a canonical edge id. `O(log n)` (binary search on
    /// the offset array for the source); intended for diagnostics, not hot
    /// loops — hot loops already know the endpoint they iterate from.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let v = self.out_targets[e as usize];
        // Find u: the largest u with out_offsets[u] <= e.
        let u = match self.out_offsets.binary_search(&e) {
            Ok(mut i) => {
                // Skip empty adjacency runs mapping to the same offset.
                while i + 1 < self.out_offsets.len() && self.out_offsets[i + 1] == e {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (u as NodeId, v)
    }

    /// Iterates over all arcs as `(edge_id, source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |u| self.out_edges(u).map(move |(e, v)| (e, u, v)))
    }

    /// Total bytes held by the adjacency arrays (used for memory reporting).
    pub fn memory_bytes(&self) -> usize {
        4 * (self.out_offsets.len()
            + self.out_targets.len()
            + self.in_offsets.len()
            + self.in_sources.len()
            + self.in_edge_ids.len())
    }

    /// Reverses the graph: arc `(u,v)` becomes `(v,u)`. Useful for tests and
    /// for treating an undirected edge list as bidirectional flow.
    pub fn reversed(&self) -> DiGraph {
        let edges: Vec<(NodeId, NodeId)> = self.edges().map(|(_, u, v)| (v, u)).collect();
        DiGraph::from_edges(self.num_nodes(), edges)
    }

    /// Internal consistency check: offsets monotone, reverse adjacency
    /// mirrors forward adjacency exactly. Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.in_offsets.len() != n + 1 {
            return Err("in_offsets length mismatch".into());
        }
        for w in self.out_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("out_offsets not monotone".into());
            }
        }
        for w in self.in_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("in_offsets not monotone".into());
            }
        }
        if *self.out_offsets.last().unwrap() as usize != self.out_targets.len() {
            return Err("out_offsets tail mismatch".into());
        }
        if *self.in_offsets.last().unwrap() as usize != self.in_sources.len() {
            return Err("in_offsets tail mismatch".into());
        }
        if self.in_sources.len() != self.out_targets.len() {
            return Err("edge count mismatch between directions".into());
        }
        if self.in_edge_ids.len() != self.in_sources.len() {
            return Err("in_edge_ids length mismatch".into());
        }
        // Every reverse entry must name a real forward arc.
        for v in 0..n as NodeId {
            for (e, u) in self.in_edges(v) {
                if self.out_targets[e as usize] != v {
                    return Err(format!("in-edge id {e} of node {v} maps to wrong target"));
                }
                let lo = self.out_offsets[u as usize];
                let hi = self.out_offsets[u as usize + 1];
                if e < lo || e >= hi {
                    return Err(format!("in-edge id {e} not within source {u}'s range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn edge_id_round_trip() {
        let g = diamond();
        for (e, u, v) in g.edges().collect::<Vec<_>>() {
            assert_eq!(g.edge_id(u, v), Some(e));
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
        assert_eq!(g.edge_id(3, 0), None);
        assert!(!g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn in_edges_carry_canonical_ids() {
        let g = diamond();
        let mut seen: Vec<(EdgeId, NodeId)> = g.in_edges(3).collect();
        seen.sort_unstable();
        let e13 = g.edge_id(1, 3).unwrap();
        let e23 = g.edge_id(2, 3).unwrap();
        let mut want = vec![(e13, 1), (e23, 2)];
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn validate_accepts_well_formed() {
        diamond().validate().unwrap();
    }

    #[test]
    fn reversed_flips_arcs() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(3, 2));
        assert!(!r.has_edge(0, 1));
        r.validate().unwrap();
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = DiGraph::from_edges(3, Vec::<(NodeId, NodeId)>::new());
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(1), 0);
        g.validate().unwrap();
    }

    #[test]
    fn edge_endpoints_with_empty_runs() {
        // Node 1 has no out-edges; make sure the offset binary search still
        // attributes edges correctly around it.
        let g = DiGraph::from_edges(4, vec![(0, 2), (2, 3), (3, 0)]);
        for (e, u, v) in g.edges().collect::<Vec<_>>() {
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
    }
}
