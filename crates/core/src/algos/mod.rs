//! The paper's allocation algorithms.
//!
//! | Algorithm | Paper | Module |
//! |---|---|---|
//! | MYOPIC | §6 baseline: top-κ ads per user by `δ(u,i)·cpe(i)` | [`myopic`] |
//! | MYOPIC+ | §6 baseline: CTP-ranked seeding until budgets exhaust | [`myopic_plus`] |
//! | GREEDY | Algorithm 1 (oracle-generic; MC = the paper's Greedy) | [`greedy`] |
//! | GREEDY-IRIE | Algorithm 1 with IRIE spread estimation | [`greedy_irie`] |
//! | TIRM | Algorithm 2–4: Two-phase Iterative Regret Minimization | [`tirm`] |

pub mod greedy;
pub mod greedy_irie;
pub mod myopic;
pub mod myopic_plus;
pub mod tirm;

pub use greedy::{greedy_allocate, GreedyOptions};
pub use greedy_irie::{greedy_irie_allocate, GreedyIrieOptions};
pub use myopic::myopic_allocate;
pub use myopic_plus::myopic_plus_allocate;
pub use tirm::{
    tirm_allocate, tirm_allocate_seeded, tirm_allocate_warm, AdSeeds, AdWarmParts, AdWarmState,
    RelabelMode, TirmOptions,
};

/// Numerical tolerance for "strictly decreasing regret" tests: guards
/// against floating-point churn keeping the greedy loops alive forever.
pub(crate) const DROP_TOL: f64 = 1e-9;
