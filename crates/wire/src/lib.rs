//! # tirm-wire
//!
//! The typed wire protocol shared by the serving frontend
//! (`tirm_server`) and its clients (`tirm_bench`'s load generator, the
//! crash-soak driver): length-prefixed JSON frames carrying versioned
//! [`Request`]/[`Response`] shapes. One crate owns the encode/decode of
//! every frame on the wire, so the server and each client cannot drift.
//!
//! Every message is one **frame**: a 4-byte little-endian length prefix
//! followed by exactly that many bytes of UTF-8 JSON. Frames are capped
//! at [`MAX_FRAME_BYTES`] — a peer announcing a larger frame is a
//! protocol error, not an allocation request.
//!
//! Connections may open with a `hello` exchange: the client announces
//! [`PROTOCOL_VERSION`], the server echoes its own plus the current
//! snapshot epoch and WAL sequence number — the anchor a reconnecting
//! client resumes its event log from (see [`Response::Hello`]). The
//! handshake is optional for backward compatibility: any other request
//! is served without one.
//!
//! Requests reuse the event-log vocabulary verbatim: a mutation request
//! is exactly the JSON object [`tirm_workloads::events::event_json_fields`]
//! produces for the same event, so any log line (minus its `at` pacing
//! field) is a valid request body and the server and the log reader
//! reject exactly the same malformed payloads. Read requests use `type`
//! tags outside the event vocabulary (`allocation`, `ad`, `stats`,
//! `shutdown`, `hello`).
//!
//! Responses are typed: the admission-control outcomes (`accepted` /
//! `overloaded` / `shutting_down`), the read-path payloads (`regret` /
//! `allocation` / `ad` / `stats` / `hello`) and `rejected` for malformed
//! requests. Allocation payloads embed [`AllocationSnapshot::to_json`]
//! and decode bit-exactly (shortest round-trip float printing), so a
//! client can verify the server's allocation against an in-process
//! replay down to revenue-estimate bits.

use serde_json::Value;
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;
use tirm_online::{AdId, AdSnapshot, AllocationSnapshot, OnlineEvent};
use tirm_workloads::events::{event_from_value, event_json_fields};

/// Version of the request/response vocabulary. Bumped on any change a
/// peer cannot ignore; the `hello` exchange surfaces skew as a typed
/// error instead of a mid-stream decode failure.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's body. Requests are small (an arrival with a
/// full topic-weight vector is hundreds of bytes); responses embed at
/// most one allocation snapshot. 16 MiB leaves three orders of
/// magnitude of headroom while bounding what a hostile peer can make
/// the server buffer.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Protocol handshake (`{"type":"hello","version":N}`): announce the
    /// client's protocol version, learn the server's version, snapshot
    /// epoch and WAL sequence number.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// A mutating event for the writer queue (`arrival` / `topup` /
    /// `departure` / `reallocate` in event-log notation).
    Mutate(OnlineEvent),
    /// Current regret estimate, served from the snapshot
    /// (`regret_query` — the event vocabulary's only read is a wire
    /// read too).
    RegretQuery,
    /// The full standing allocation (`{"type":"allocation"}`).
    AllocationQuery,
    /// One ad's slice of the allocation (`{"type":"ad","id":N}`).
    AdQuery {
        /// Advertiser id to look up.
        id: AdId,
    },
    /// Serving statistics (`{"type":"stats"}`).
    Stats,
    /// Ask the server to begin graceful shutdown
    /// (`{"type":"shutdown"}`).
    Shutdown,
}

impl Request {
    /// Encodes the request as a JSON object (frame body).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { version } => {
                format!("{{\"type\":\"hello\",\"version\":{version}}}")
            }
            Request::Mutate(ev) => format!("{{{}}}", event_json_fields(ev)),
            Request::RegretQuery => "{\"type\":\"regret_query\"}".to_string(),
            Request::AllocationQuery => "{\"type\":\"allocation\"}".to_string(),
            Request::AdQuery { id } => format!("{{\"type\":\"ad\",\"id\":{id}}}"),
            Request::Stats => "{\"type\":\"stats\"}".to_string(),
            Request::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        }
    }

    /// Decodes a frame body. Mutating events go through the shared
    /// event codec; `RegretQuery` — an event kind that mutates nothing —
    /// is routed to the read path.
    pub fn decode(bytes: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "missing `type`".to_string())?;
        match ty {
            "hello" => Ok(Request::Hello {
                version: v
                    .get("version")
                    .and_then(|x| x.as_u64())
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| "missing `version`".to_string())?,
            }),
            "allocation" => Ok(Request::AllocationQuery),
            "ad" => Ok(Request::AdQuery {
                id: v
                    .get("id")
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| "missing `id`".to_string())?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            _ => match event_from_value(&v)? {
                OnlineEvent::RegretQuery => Ok(Request::RegretQuery),
                ev => Ok(Request::Mutate(ev)),
            },
        }
    }
}

/// Serving statistics as reported over the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsView {
    /// Mutating events applied (the published snapshot's epoch).
    pub epoch: u64,
    /// Admitted mutations durably logged (the WAL sequence number); 0 on
    /// a server running without a WAL.
    pub wal_seq: u64,
    /// Live campaigns.
    pub live_ads: usize,
    /// Seeds allocated in total.
    pub total_seeds: usize,
    /// RR sets held across live shards.
    pub total_rr_sets: usize,
    /// Allocator index + capital bytes.
    pub engine_memory_bytes: usize,
    /// Mutations currently queued or in flight at the writer.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth` over the server's lifetime.
    pub max_queue_depth: usize,
    /// Mutations admitted to the queue.
    pub accepted: u64,
    /// Mutations shed with `overloaded` (queue full).
    pub shed: u64,
    /// Admitted mutations the allocator rejected (unknown ids, malformed
    /// payload domains).
    pub rejected: u64,
    /// Frames that failed to decode as requests.
    pub bad_requests: u64,
    /// Currently open connections.
    pub connections: usize,
}

/// One decoded response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake reply: the server's protocol version and the two
    /// resume anchors a reconnecting client needs — the snapshot epoch
    /// and the WAL sequence number (count of admitted mutations durably
    /// logged; a client replaying an event log resumes right after its
    /// `wal_seq`-th non-query event).
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Snapshot epoch at handshake time.
        epoch: u64,
        /// WAL sequence number at handshake time (0 without a WAL).
        wal_seq: u64,
    },
    /// The mutation was admitted to the writer queue: it will be
    /// **processed** before the server exits (the drain guarantee).
    /// Admission is a delivery promise, not a validity one — the
    /// allocator may still reject the event when it is applied
    /// (duplicate arrival id, unknown top-up target); such rejections
    /// count into `stats.rejected`, and a client that needs
    /// confirmation queries the ad (or watches the epoch) afterwards.
    /// Exactly the same events are rejected by an in-process replay, so
    /// the bit-identity anchor is unaffected. `epoch` is the snapshot
    /// epoch visible at admission, not the one the event will produce.
    Accepted {
        /// Snapshot epoch at admission time.
        epoch: u64,
        /// Queue depth right after admission.
        queue_depth: usize,
    },
    /// The write queue is full: the mutation was **shed**, not queued.
    /// The client may retry; the server never blocks its accept loop on
    /// a slow writer.
    Overloaded {
        /// Queue depth observed when the mutation was shed.
        queue_depth: usize,
    },
    /// The server is draining and no longer admits mutations.
    ShuttingDown,
    /// The request was malformed (decode failure); nothing was admitted.
    Rejected {
        /// Human-readable decode failure.
        why: String,
    },
    /// Regret estimate from the latest snapshot.
    Regret {
        /// Snapshot epoch.
        epoch: u64,
        /// Live campaigns.
        live_ads: usize,
        /// Engine regret estimate.
        regret_estimate: f64,
    },
    /// The full standing allocation from the latest snapshot.
    Allocation(AllocationSnapshot),
    /// One ad's slice of the latest snapshot (`None`: not live).
    Ad {
        /// Snapshot epoch.
        epoch: u64,
        /// The ad's slice, if live.
        ad: Option<AdSnapshot>,
    },
    /// Serving statistics.
    Stats(StatsView),
}

impl Response {
    /// Encodes the response as a JSON object (frame body).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello {
                version,
                epoch,
                wal_seq,
            } => format!(
                "{{\"type\":\"hello\",\"version\":{version},\"epoch\":{epoch},\
                 \"wal_seq\":{wal_seq}}}"
            ),
            Response::Accepted { epoch, queue_depth } => {
                format!("{{\"type\":\"accepted\",\"epoch\":{epoch},\"queue_depth\":{queue_depth}}}")
            }
            Response::Overloaded { queue_depth } => {
                format!("{{\"type\":\"overloaded\",\"queue_depth\":{queue_depth}}}")
            }
            Response::ShuttingDown => "{\"type\":\"shutting_down\"}".to_string(),
            Response::Rejected { why } => format!(
                "{{\"type\":\"rejected\",\"why\":{}}}",
                serde_json::to_string(why).expect("string serialization is infallible")
            ),
            Response::Regret {
                epoch,
                live_ads,
                regret_estimate,
            } => format!(
                "{{\"type\":\"regret\",\"epoch\":{epoch},\"live_ads\":{live_ads},\
                 \"regret_estimate\":{regret_estimate}}}"
            ),
            Response::Allocation(snap) => {
                format!(
                    "{{\"type\":\"allocation\",\"snapshot\":{}}}",
                    snap.to_json()
                )
            }
            Response::Ad { epoch, ad } => {
                let ad_json = match ad {
                    None => "null".to_string(),
                    Some(a) => a.to_json(),
                };
                format!("{{\"type\":\"ad\",\"epoch\":{epoch},\"ad\":{ad_json}}}")
            }
            Response::Stats(s) => format!(
                "{{\"type\":\"stats\",\"epoch\":{},\"wal_seq\":{},\"live_ads\":{},\
                 \"total_seeds\":{},\"total_rr_sets\":{},\"engine_memory_bytes\":{},\
                 \"queue_depth\":{},\"max_queue_depth\":{},\"accepted\":{},\"shed\":{},\
                 \"rejected\":{},\"bad_requests\":{},\"connections\":{}}}",
                s.epoch,
                s.wal_seq,
                s.live_ads,
                s.total_seeds,
                s.total_rr_sets,
                s.engine_memory_bytes,
                s.queue_depth,
                s.max_queue_depth,
                s.accepted,
                s.shed,
                s.rejected,
                s.bad_requests,
                s.connections
            ),
        }
    }

    /// Decodes a frame body.
    pub fn decode(bytes: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "missing `type`".to_string())?;
        let u = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing `{key}`"))
        };
        let f = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing `{key}`"))
        };
        match ty {
            "hello" => Ok(Response::Hello {
                version: u("version")?
                    .try_into()
                    .map_err(|_| "version out of range".to_string())?,
                epoch: u("epoch")?,
                wal_seq: u("wal_seq")?,
            }),
            "accepted" => Ok(Response::Accepted {
                epoch: u("epoch")?,
                queue_depth: u("queue_depth")? as usize,
            }),
            "overloaded" => Ok(Response::Overloaded {
                queue_depth: u("queue_depth")? as usize,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "rejected" => Ok(Response::Rejected {
                why: v
                    .get("why")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| "missing `why`".to_string())?
                    .to_string(),
            }),
            "regret" => Ok(Response::Regret {
                epoch: u("epoch")?,
                live_ads: u("live_ads")? as usize,
                regret_estimate: f("regret_estimate")?,
            }),
            "allocation" => {
                let snap = v
                    .get("snapshot")
                    .ok_or_else(|| "missing `snapshot`".to_string())?;
                Ok(Response::Allocation(snapshot_from_value(snap)?))
            }
            "ad" => {
                let ad = match v.get("ad") {
                    None => return Err("missing `ad`".to_string()),
                    Some(a) if a.is_null() => None,
                    Some(a) => Some(ad_from_value(a)?),
                };
                Ok(Response::Ad {
                    epoch: u("epoch")?,
                    ad,
                })
            }
            "stats" => Ok(Response::Stats(StatsView {
                epoch: u("epoch")?,
                wal_seq: u("wal_seq")?,
                live_ads: u("live_ads")? as usize,
                total_seeds: u("total_seeds")? as usize,
                total_rr_sets: u("total_rr_sets")? as usize,
                engine_memory_bytes: u("engine_memory_bytes")? as usize,
                queue_depth: u("queue_depth")? as usize,
                max_queue_depth: u("max_queue_depth")? as usize,
                accepted: u("accepted")?,
                shed: u("shed")?,
                rejected: u("rejected")?,
                bad_requests: u("bad_requests")?,
                connections: u("connections")? as usize,
            })),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// Client-side connection policy, mirrored against the server's
/// `ServerConfig`: handshake behavior and the bounded
/// reconnect-with-backoff schedule a client applies when the server
/// restarts underneath it (the crash-recovery bench mode).
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Disable Nagle's algorithm (request/response pipelining).
    pub nodelay: bool,
    /// Open each connection with a `hello` exchange and fail fast on
    /// protocol-version skew.
    pub handshake: bool,
    /// Bounded reconnect attempts after a lost connection. `0` fails
    /// fast (the pre-recovery behavior); kill/restart bench modes use a
    /// budget that covers the server's recovery time.
    pub reconnect_attempts: u32,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Cap on the per-attempt backoff.
    pub backoff_max: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            nodelay: true,
            handshake: true,
            reconnect_attempts: 0,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

impl ClientOptions {
    /// Options with a reconnect budget of `attempts` (exponential
    /// backoff, default base/cap).
    pub fn reconnecting(attempts: u32) -> Self {
        ClientOptions {
            reconnect_attempts: attempts,
            ..ClientOptions::default()
        }
    }

    /// Backoff before reconnect attempt `attempt` (0-based):
    /// `base · 2^attempt`, saturating at the cap.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// Decodes one ad object of an allocation payload.
fn ad_from_value(v: &Value) -> Result<AdSnapshot, String> {
    let seeds = v
        .get("seeds")
        .and_then(|x| x.as_array())
        .ok_or_else(|| "missing `seeds`".to_string())?
        .iter()
        .map(|s| s.as_u64().map(|x| x as u32))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| "non-integer seed".to_string())?;
    let f = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("missing `{key}`"))
    };
    Ok(AdSnapshot {
        id: v
            .get("id")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| "missing `id`".to_string())?,
        budget: f("budget")?,
        cpe: f("cpe")?,
        seeds,
        revenue_est: f("revenue_est")?,
    })
}

/// Decodes an [`AllocationSnapshot::to_json`] payload. Lifetime counters
/// are not on the wire ([`AllocationSnapshot::same_allocation`] ignores
/// them), so `stats` decodes to zeros.
pub fn snapshot_from_value(v: &Value) -> Result<AllocationSnapshot, String> {
    let u = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let f = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let ads = v
        .get("ads")
        .and_then(|x| x.as_array())
        .ok_or_else(|| "missing `ads`".to_string())?
        .iter()
        .map(ad_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(AllocationSnapshot {
        epoch: u("epoch")?,
        kappa: u("kappa")? as u32,
        lambda: f("lambda")?,
        ads,
        regret_estimate: f("regret_estimate")?,
        total_rr_sets: u("total_rr_sets")? as usize,
        engine_memory_bytes: u("engine_memory_bytes")? as usize,
        stats: Default::default(),
    })
}

/// Writes one frame (length prefix + body).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame too large to send");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, blocking. `Ok(None)` on clean EOF before the first
/// header byte; errors on truncation mid-frame or an oversized length
/// prefix.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    read_frame_polling(r, || false)
}

/// [`read_frame`] with a cancellation probe for sockets carrying a read
/// timeout: on `WouldBlock`/`TimedOut` with **no bytes buffered yet**,
/// `should_stop()` decides between waiting for the next request
/// (`false`) and a clean `Ok(None)` exit (`true`). A *partial* frame is
/// never abandoned at the first timeout — the peer gets a grace period
/// of further polls to finish it (so a slow writer isn't corrupted by
/// shutdown racing its frame), after which truncation is an error.
pub fn read_frame_polling(
    r: &mut impl Read,
    should_stop: impl Fn() -> bool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_polling(r, &mut header, &should_stop, true)? {
        ReadOutcome::CleanExit => return Ok(None),
        ReadOutcome::Done => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    match read_exact_polling(r, &mut body, &should_stop, false)? {
        ReadOutcome::CleanExit => unreachable!("mid-frame reads never exit cleanly"),
        ReadOutcome::Done => Ok(Some(body)),
    }
}

enum ReadOutcome {
    Done,
    CleanExit,
}

/// Number of timeout polls a peer gets to finish a frame it started
/// after shutdown was requested. With the default 25 ms poll interval
/// this is a ~2 s grace period.
const PARTIAL_FRAME_GRACE_POLLS: u32 = 80;

fn read_exact_polling(
    r: &mut impl Read,
    buf: &mut [u8],
    should_stop: &impl Fn() -> bool,
    eof_is_clean: bool,
) -> std::io::Result<ReadOutcome> {
    let mut filled = 0usize;
    let mut stopped_polls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if eof_is_clean && filled == 0 {
                    Ok(ReadOutcome::CleanExit)
                } else {
                    Err(ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if should_stop() {
                    if filled == 0 && eof_is_clean {
                        return Ok(ReadOutcome::CleanExit);
                    }
                    stopped_polls += 1;
                    if stopped_polls > PARTIAL_FRAME_GRACE_POLLS {
                        return Err(ErrorKind::TimedOut.into());
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_topics::TopicDist;

    fn arrival() -> OnlineEvent {
        OnlineEvent::AdArrival {
            id: 7,
            budget: 12.5,
            cpe: 1.25,
            topics: TopicDist::concentrated(4, 1, 0.91),
            ctp: 0.03,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Mutate(arrival()),
            Request::Mutate(OnlineEvent::BudgetTopUp { id: 3, amount: 2.5 }),
            Request::Mutate(OnlineEvent::AdDeparture { id: 3 }),
            Request::Mutate(OnlineEvent::Reallocate),
            Request::RegretQuery,
            Request::AllocationQuery,
            Request::AdQuery { id: 9 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let text = req.encode();
            let back = Request::decode(text.as_bytes()).unwrap();
            assert_eq!(back, req, "{text}");
        }
    }

    #[test]
    fn mutation_requests_are_event_log_lines() {
        // The wire vocabulary IS the log vocabulary: a log line without
        // its `at` field decodes as the same request.
        let ev = arrival();
        let log_line = format!("{{{}}}", event_json_fields(&ev));
        assert_eq!(
            Request::decode(log_line.as_bytes()).unwrap(),
            Request::Mutate(ev)
        );
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(Request::decode(b"not json").is_err());
        assert!(Request::decode(b"{\"type\":\"martian\"}").is_err());
        assert!(Request::decode(b"{\"budget\":5}").is_err());
        assert!(
            Request::decode(b"{\"type\":\"ad\"}").is_err(),
            "ad needs id"
        );
        assert!(
            Request::decode(b"{\"type\":\"hello\"}").is_err(),
            "hello needs version"
        );
        assert!(Request::decode(&[0xff, 0xfe]).is_err(), "not UTF-8");
    }

    #[test]
    fn responses_round_trip() {
        let snap = AllocationSnapshot {
            epoch: 5,
            kappa: 2,
            lambda: 0.5,
            ads: vec![AdSnapshot {
                id: 7,
                budget: 12.5,
                cpe: 1.25,
                seeds: vec![3, 1, 4],
                revenue_est: 11.0625,
            }],
            regret_estimate: 1.4375,
            total_rr_sets: 1000,
            engine_memory_bytes: 4096,
            stats: Default::default(),
        };
        let resps = [
            Response::Hello {
                version: PROTOCOL_VERSION,
                epoch: 12,
                wal_seq: 9,
            },
            Response::Accepted {
                epoch: 4,
                queue_depth: 2,
            },
            Response::Overloaded { queue_depth: 64 },
            Response::ShuttingDown,
            Response::Rejected {
                why: "bad \"quote\" and\nnewline".to_string(),
            },
            Response::Regret {
                epoch: 5,
                live_ads: 1,
                regret_estimate: 1.4375,
            },
            Response::Allocation(snap.clone()),
            Response::Ad {
                epoch: 5,
                ad: Some(snap.ads[0].clone()),
            },
            Response::Ad { epoch: 5, ad: None },
            Response::Stats(StatsView {
                epoch: 5,
                wal_seq: 4,
                live_ads: 1,
                total_seeds: 3,
                total_rr_sets: 1000,
                engine_memory_bytes: 4096,
                queue_depth: 1,
                max_queue_depth: 7,
                accepted: 40,
                shed: 2,
                rejected: 1,
                bad_requests: 3,
                connections: 5,
            }),
        ];
        for resp in resps {
            let text = resp.encode();
            let back = Response::decode(text.as_bytes()).unwrap();
            assert_eq!(back, resp, "{text}");
        }
    }

    #[test]
    fn allocation_payload_is_bit_exact() {
        // The equivalence contract extends over the wire: floats decode
        // to the same bits they were encoded from.
        let snap = AllocationSnapshot {
            epoch: 1,
            kappa: 1,
            lambda: 0.1 + 0.2, // a value with no short decimal form
            ads: vec![AdSnapshot {
                id: 1,
                budget: 1.0 / 3.0,
                cpe: 2.0 / 7.0,
                seeds: vec![42],
                revenue_est: 0.123_456_789_012_345_67,
            }],
            regret_estimate: std::f64::consts::PI,
            total_rr_sets: 0,
            engine_memory_bytes: 0,
            stats: Default::default(),
        };
        let text = Response::Allocation(snap.clone()).encode();
        match Response::decode(text.as_bytes()).unwrap() {
            Response::Allocation(back) => {
                assert!(back.same_allocation(&snap), "wire round trip drifted");
                assert_eq!(back.lambda.to_bits(), snap.lambda.to_bits());
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Oversized announced length is refused before allocation.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());

        // Truncation mid-frame is an error, not silence.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"hello").unwrap();
        truncated.truncate(6);
        let mut r = &truncated[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let opts = ClientOptions::reconnecting(8);
        assert_eq!(opts.backoff(0), Duration::from_millis(50));
        assert_eq!(opts.backoff(1), Duration::from_millis(100));
        assert_eq!(opts.backoff(2), Duration::from_millis(200));
        assert_eq!(opts.backoff(10), opts.backoff_max, "capped");
        assert_eq!(opts.backoff(40), opts.backoff_max, "no shift overflow");
    }
}
