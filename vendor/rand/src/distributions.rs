//! Standard-distribution sampling and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
#[inline]
pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits.
#[inline]
pub fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` — the helper
/// behind [`SampleRange`]. Mirrors `rand::distributions::uniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics when the range is empty.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics when the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform integer in `[0, span)` without modulo bias (widening multiply).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(below(rng, span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty, $unit:path);*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (hi - lo) * $unit(rng)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, unit_f32; f64, unit_f64);

/// Ranges samplable by `rng.gen_range(range)`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}
