//! # tirm-online
//!
//! The **online allocation engine**: a long-lived serving layer that
//! keeps the paper's key asset — the per-ad RR-set index — alive across
//! campaign churn. The paper's batch experiments rebuild everything per
//! run; a host serving real traffic sees ads *arrive* with fresh budgets,
//! get *topped up*, and *depart*, while the reverse-reachability capital
//! (§5) stays reusable. This crate makes that explicit:
//!
//! * [`events`] — the deterministic event vocabulary
//!   ([`OnlineEvent`]: `AdArrival`, `BudgetTopUp`, `AdDeparture`,
//!   `Reallocate`, `RegretQuery`) and outcomes.
//! * [`allocator`] — [`OnlineAllocator`], owning a **sharded inverted RR
//!   index** (one [`tirm_rrset::RrIndex`] shard per ad: node → RR-set
//!   postings) with incremental coverage maintenance: arrivals/top-ups
//!   re-run only the affected ad through the postings lists and the
//!   lazy-greedy heap when the standing allocation is contention-free,
//!   and fall back to an exact warm interleaved re-run otherwise.
//! * [`pool`] — the [`RetainedPool`] departed shards are released into
//!   (bounded bytes, oldest-first eviction, topic-fingerprint
//!   invalidation).
//! * [`frontier`] — [`ReplicationFrontier`], the sequence-number
//!   vocabulary a replicated serving frontend uses to describe where a
//!   replica stands relative to its leader (lag, apply backlog,
//!   fencing epoch).
//! * [`snapshot`] — [`AllocationSnapshot`], the immutable read-model a
//!   serving frontend publishes after every applied event
//!   ([`OnlineAllocator::snapshot`] extracts one in O(live ads + seeds));
//!   readers answer queries from it without ever touching the allocator.
//!
//! **Correctness anchor:** replaying any event log produces allocations
//! bit-identical to batch [`tirm_core::tirm_allocate_seeded`] on the
//! live ad set — the online path changes *where RR sets come from*
//! (cached postings vs fresh graph walks), never what is computed.
//! Property-tested in `tests/replay_equivalence.rs`.

pub mod allocator;
pub mod events;
pub mod frontier;
pub mod pool;
pub mod snapshot;

pub use allocator::checkpoint::{CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use allocator::{OnlineAllocator, OnlineConfig, OnlineStats};
pub use events::{AdId, EventKind, EventOutcome, OnlineError, OnlineEvent};
pub use frontier::ReplicationFrontier;
pub use pool::RetainedPool;
pub use snapshot::{AdSnapshot, AllocationSnapshot};
