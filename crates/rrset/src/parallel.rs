//! Deterministic parallel RR-set sampling engine.
//!
//! The serial sampler ([`crate::RrSampler`]) draws one set at a time from a
//! single `SmallRng` + [`SampleWorkspace`] pair — the hot path of TIM's θ
//! sampling, TIRM's per-ad growing collections and RR-based evaluation,
//! using exactly one core. [`ParallelSampler`] shards a batch of θ samples
//! over `threads` workers:
//!
//! * **Per-shard state.** Every shard owns a persistent `SmallRng` (seeded
//!   `seed ⊕ shard_id·γ`, where γ is the 64-bit golden-ratio constant; shard
//!   0's seed is exactly `seed`) and its own [`SampleWorkspace`], so
//!   consecutive batches continue each shard's stream — no cross-thread
//!   contention, no reseeding between top-ups.
//! * **Deterministic merge.** Workers write into per-shard arenas
//!   ([`RrArena`]: one flat node buffer + offsets, no per-set allocation);
//!   the merge pass drains arenas in shard order, so a fixed
//!   `(seed, threads)` pair yields an identical collection no matter how
//!   the OS schedules the workers.
//! * **Serial compatibility.** With `threads = 1` the engine *is* the old
//!   serial loop: one shard, seeded `seed`, samples appended in draw order —
//!   bit-identical to `SmallRng::seed_from_u64(seed)` + a `for` loop.
//! * **Batch-split invariance.** Global draw `g` (counted across the
//!   engine's lifetime) is assigned to shard `g mod threads` and the merge
//!   pass interleaves arenas in that same round-robin order, so
//!   `sample_into(a); sample_into(b)` produces *exactly* the sequence of
//!   `sample_into(a + b)`. The engine's output is a single deterministic
//!   stream of which every batch reads the next window — the property the
//!   online serving layer's warm RR-index reuse is built on (a cached
//!   prefix stays valid no matter how a later re-allocation re-chunks its
//!   θ requests). The stream still depends on `threads` by design —
//!   reproducibility is per-configuration, matching
//!   `mc_spread_parallel`'s contract.

use crate::collection::RrCollection;
use crate::fastpath::FastPath;
use crate::sampler::{RrSampler, SampleWorkspace};
use crate::weighted::WeightedRrCollection;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tirm_graph::NodeId;

/// 2^64 / φ — the weyl-sequence constant used to spread shard seeds.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of a sampling engine: worker count, base RNG seed, and an
/// optional cumulative cap on drawn samples (a memory guard mirroring
/// [`crate::SampleBound::max_theta`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Worker threads (clamped to ≥ 1). `1` reproduces the serial path.
    pub threads: usize,
    /// Base seed; shard `i` derives `seed ⊕ i·γ` (shard 0 gets `seed`).
    pub seed: u64,
    /// Cumulative cap on samples drawn through one engine; `None` = unlimited.
    pub max_theta: Option<usize>,
}

impl SamplingConfig {
    /// Parallel configuration without a sample cap.
    pub fn new(threads: usize, seed: u64) -> Self {
        SamplingConfig {
            threads,
            seed,
            max_theta: None,
        }
    }

    /// Single-threaded configuration — bit-identical to the serial path.
    pub fn serial(seed: u64) -> Self {
        SamplingConfig::new(1, seed)
    }

    /// Worker count clamped to at least one.
    #[inline]
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Deterministic seed of shard `shard`.
    #[inline]
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.seed ^ (shard as u64).wrapping_mul(GOLDEN_GAMMA)
    }
}

/// Anything that can absorb sampled RR sets (the merge-pass target).
pub trait RrSink {
    /// Adds one sampled set.
    fn add_rr_set(&mut self, members: &[NodeId]);
}

impl RrSink for RrCollection {
    #[inline]
    fn add_rr_set(&mut self, members: &[NodeId]) {
        self.add_set(members);
    }
}

impl RrSink for WeightedRrCollection {
    #[inline]
    fn add_rr_set(&mut self, members: &[NodeId]) {
        self.add_set(members);
    }
}

impl RrSink for Vec<Vec<NodeId>> {
    #[inline]
    fn add_rr_set(&mut self, members: &[NodeId]) {
        self.push(members.to_vec());
    }
}

/// Flat per-shard output buffer: all sets in one node vector plus offsets.
/// Avoids per-set allocation inside workers; drained in shard order by the
/// merge pass.
#[derive(Clone, Debug, Default)]
pub struct RrArena {
    offsets: Vec<u32>,
    nodes: Vec<NodeId>,
}

impl RrArena {
    fn with_capacity(sets: usize) -> Self {
        RrArena {
            offsets: Vec::with_capacity(sets + 1),
            nodes: Vec::with_capacity(sets * 4),
        }
    }

    #[inline]
    fn push(&mut self, members: &[NodeId]) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.nodes.extend_from_slice(members);
        self.offsets.push(self.nodes.len() as u32);
    }

    /// Number of sets stored.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the stored sets in draw order.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.offsets
            .windows(2)
            .map(move |w| &self.nodes[w[0] as usize..w[1] as usize])
    }

    /// The `i`-th stored set.
    #[inline]
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.nodes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// One worker's persistent state. The RNG is the bare generator, *not*
/// the block-buffered [`BlockRng`]: the two emit identical word streams
/// (pinned by the fastpath tests), but the buffer's per-draw loads and
/// stores measured ~2× slower than xoshiro state the compiler keeps in
/// registers across the BFS loop (`sampler_inner_loop` microbench), so
/// the buffered wrapper stays available without being on the hot path.
struct Shard {
    rng: SmallRng,
    ws: SampleWorkspace,
}

/// Deterministic multi-threaded RR-set sampler with persistent per-shard
/// RNG streams. See the module docs for the determinism contract.
pub struct ParallelSampler {
    config: SamplingConfig,
    shards: Vec<Shard>,
    total_sampled: usize,
}

/// Detached, serializable position of a [`ParallelSampler`]: the
/// configuration plus every shard's raw RNG state and the cumulative
/// draw counter. The per-shard [`SampleWorkspace`]s are rebuildable
/// scratch (epoch-marked visit arrays that never influence the output
/// stream) and are deliberately *not* captured — an engine rebuilt via
/// [`ParallelSampler::from_state`] continues the exact same sample
/// stream as the original.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplerState {
    /// Engine configuration (threads, base seed, cumulative cap).
    pub config: SamplingConfig,
    /// One xoshiro256++ state per shard, shard order.
    pub rng_states: Vec<[u64; 4]>,
    /// Samples drawn through the engine so far.
    pub total_sampled: usize,
}

impl ParallelSampler {
    /// Captures the engine's position for checkpointing. See
    /// [`SamplerState`].
    pub fn export_state(&self) -> SamplerState {
        SamplerState {
            config: self.config,
            rng_states: self.shards.iter().map(|s| s.rng.state()).collect(),
            total_sampled: self.total_sampled,
        }
    }

    /// Rebuilds an engine at a previously captured position over a graph
    /// with `num_nodes` nodes. Errors (instead of panicking) on a state
    /// whose shard count disagrees with its own configuration — the
    /// malformed-checkpoint path.
    pub fn from_state(state: &SamplerState, num_nodes: usize) -> Result<Self, String> {
        if state.rng_states.len() != state.config.effective_threads() {
            return Err(format!(
                "sampler state has {} shard RNGs for {} configured threads",
                state.rng_states.len(),
                state.config.effective_threads()
            ));
        }
        if state.rng_states.iter().any(|s| s.iter().all(|&w| w == 0)) {
            return Err("sampler state contains an all-zero RNG state".to_string());
        }
        let shards = state
            .rng_states
            .iter()
            .map(|&s| Shard {
                rng: SmallRng::from_state(s),
                ws: SampleWorkspace::new(num_nodes),
            })
            .collect();
        Ok(ParallelSampler {
            config: state.config,
            shards,
            total_sampled: state.total_sampled,
        })
    }

    /// Engine over a graph with `num_nodes` nodes.
    pub fn new(config: SamplingConfig, num_nodes: usize) -> Self {
        let shards = (0..config.effective_threads())
            .map(|i| Shard {
                rng: SmallRng::seed_from_u64(config.shard_seed(i)),
                ws: SampleWorkspace::new(num_nodes),
            })
            .collect();
        ParallelSampler {
            config,
            shards,
            total_sampled: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Samples drawn through this engine so far (across all batches).
    pub fn total_sampled(&self) -> usize {
        self.total_sampled
    }

    /// Bytes held by the engine's persistent per-shard workspaces
    /// (O(n · threads) mark arrays) — counted by long-lived owners like
    /// the online serving layer's warm states.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.ws.memory_bytes() + std::mem::size_of::<SmallRng>())
            .sum()
    }

    /// Caps `count` against the configured cumulative `max_theta`.
    fn admissible(&self, count: usize) -> usize {
        match self.config.max_theta {
            Some(cap) => count.min(cap.saturating_sub(self.total_sampled)),
            None => count,
        }
    }

    /// Per-shard quotas for the batch of `count` samples starting at
    /// global draw `start`: draw `g` belongs to shard `g mod threads`, so
    /// the quota of shard `i` is the number of such `g` in
    /// `[start, start + count)`. Depending only on `(start, count)` — not
    /// on how earlier requests were chunked — is what makes the engine's
    /// output batch-split invariant.
    fn quotas(&self, start: usize, count: usize) -> Vec<usize> {
        let t = self.shards.len();
        // Draws of shard i in [0, x).
        let upto = |x: usize, i: usize| x / t + usize::from(x % t > i);
        (0..t)
            .map(|i| upto(start + count, i) - upto(start, i))
            .collect()
    }

    /// Draws `count` classic RR sets into `sink` (θ-batch sampling).
    /// Returns the number actually drawn (may be below `count` when the
    /// cumulative `max_theta` cap bites).
    pub fn sample_into(
        &mut self,
        sampler: &RrSampler<'_>,
        count: usize,
        sink: &mut impl RrSink,
    ) -> usize {
        self.sample_into_with(sampler, None, count, sink)
    }

    /// [`Self::sample_into`], optionally routed through a precomputed
    /// [`FastPath`] (integer thresholds + relabeled marks). The fast
    /// route is bit-identical to the plain one — `fast` only changes
    /// speed, never the stream.
    pub fn sample_into_with(
        &mut self,
        sampler: &RrSampler<'_>,
        fast: Option<&FastPath>,
        count: usize,
        sink: &mut impl RrSink,
    ) -> usize {
        match fast {
            Some(fp) => self.run_batch(count, sink, |shard, quota, emit| {
                for _ in 0..quota {
                    emit(sampler.sample_with(fp, &mut shard.ws, &mut shard.rng));
                }
            }),
            None => self.run_batch(count, sink, |shard, quota, emit| {
                for _ in 0..quota {
                    emit(sampler.sample(&mut shard.ws, &mut shard.rng));
                }
            }),
        }
    }

    /// Draws `count` RRC sets (§5.2 node-level CTP coins) into `sink`.
    pub fn sample_rrc_into(
        &mut self,
        sampler: &RrSampler<'_>,
        ctp: &[f32],
        count: usize,
        sink: &mut impl RrSink,
    ) -> usize {
        self.run_batch(count, sink, |shard, quota, emit| {
            for _ in 0..quota {
                emit(sampler.sample_rrc(ctp, &mut shard.ws, &mut shard.rng));
            }
        })
    }

    /// Draws `count` RR sets and maps each through `map`, returning the
    /// results in deterministic stream order (used by KPT width
    /// estimation, where only a per-set statistic is needed and sets are
    /// discarded).
    pub fn sample_map<T, F>(&mut self, sampler: &RrSampler<'_>, count: usize, map: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&[NodeId]) -> T + Sync,
    {
        self.sample_map_with(sampler, None, count, map)
    }

    /// [`Self::sample_map`], optionally routed through a precomputed
    /// [`FastPath`]. Bit-identical stream either way.
    pub fn sample_map_with<T, F>(
        &mut self,
        sampler: &RrSampler<'_>,
        fast: Option<&FastPath>,
        count: usize,
        map: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(&[NodeId]) -> T + Sync,
    {
        let count = self.admissible(count);
        let start = self.total_sampled;
        let map = &map;
        let draw = |shard: &mut Shard| match fast {
            Some(fp) => map(sampler.sample_with(fp, &mut shard.ws, &mut shard.rng)),
            None => map(sampler.sample(&mut shard.ws, &mut shard.rng)),
        };
        let draw = &draw;
        let mut out = Vec::with_capacity(count);
        if self.shards.len() == 1 {
            let shard = &mut self.shards[0];
            for _ in 0..count {
                out.push(draw(shard));
            }
        } else {
            let t = self.shards.len();
            let quotas = self.quotas(start, count);
            let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&quotas)
                    .map(|(shard, &quota)| {
                        scope.spawn(move || {
                            let mut chunk = Vec::with_capacity(quota);
                            for _ in 0..quota {
                                chunk.push(draw(shard));
                            }
                            chunk
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sampling worker panicked"))
                    .collect()
            });
            let mut iters: Vec<_> = chunks.into_iter().map(Vec::into_iter).collect();
            for g in start..start + count {
                out.push(iters[g % t].next().expect("quota covers the window"));
            }
        }
        self.total_sampled += count;
        tirm_obs::registry::RR_SETS_SAMPLED.add(count as u64);
        out
    }

    /// Shared batch driver. `work` draws one shard's quota, handing each
    /// sampled set to an `emit` callback. With one shard the emitter *is*
    /// the sink (sets stream straight into the collection, like the old
    /// serial loop); with several, each worker emits into a private
    /// [`RrArena`] and the arenas are merged into `sink` in round-robin
    /// draw order (`g mod threads`) — byte-identical sink contents for a
    /// fixed configuration no matter how requests are chunked.
    fn run_batch<W>(&mut self, count: usize, sink: &mut impl RrSink, work: W) -> usize
    where
        W: Fn(&mut Shard, usize, &mut dyn FnMut(&[NodeId])) + Sync,
    {
        let count = self.admissible(count);
        if count == 0 {
            return 0;
        }
        let start = self.total_sampled;
        if self.shards.len() == 1 {
            work(&mut self.shards[0], count, &mut |set| sink.add_rr_set(set));
        } else {
            let t = self.shards.len();
            let quotas = self.quotas(start, count);
            let work = &work;
            let arenas: Vec<RrArena> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&quotas)
                    .map(|(shard, &quota)| {
                        scope.spawn(move || {
                            let mut arena = RrArena::with_capacity(quota);
                            work(shard, quota, &mut |set| arena.push(set));
                            arena
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sampling worker panicked"))
                    .collect()
            });
            let mut cursors = vec![0usize; t];
            for g in start..start + count {
                let s = g % t;
                sink.add_rr_set(arenas[s].get(cursors[s]));
                cursors[s] += 1;
            }
        }
        self.total_sampled += count;
        // Batch-granular observability: one sharded counter add per call,
        // nothing per set.
        tirm_obs::registry::RR_SETS_SAMPLED.add(count as u64);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use tirm_graph::generators;

    fn probs_for(g: &tirm_graph::DiGraph) -> Vec<f32> {
        (0..g.num_edges())
            .map(|e| 0.1 + 0.8 * ((e * 37 % 97) as f32 / 97.0))
            .collect()
    }

    #[test]
    fn single_thread_matches_serial_loop_bit_for_bit() {
        let g = generators::erdos_renyi(60, 240, 3);
        let probs = probs_for(&g);
        let sampler = RrSampler::new(&g, &probs);

        let mut serial: Vec<Vec<NodeId>> = Vec::new();
        let mut ws = SampleWorkspace::new(g.num_nodes());
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..500 {
            serial.push(sampler.sample(&mut ws, &mut rng).to_vec());
        }

        let mut engine = ParallelSampler::new(SamplingConfig::serial(42), g.num_nodes());
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        // Split across two batches: per-shard streams must persist.
        engine.sample_into(&sampler, 200, &mut out);
        engine.sample_into(&sampler, 300, &mut out);
        assert_eq!(serial, out);
    }

    #[test]
    fn fixed_config_is_reproducible_across_runs() {
        let g = generators::preferential_attachment(120, 3, 0.2, 9);
        let probs = probs_for(&g);
        let sampler = RrSampler::new(&g, &probs);
        for threads in [1usize, 2, 4] {
            let run = |n1: usize, n2: usize| {
                let mut e = ParallelSampler::new(SamplingConfig::new(threads, 7), g.num_nodes());
                let mut v: Vec<Vec<NodeId>> = Vec::new();
                e.sample_into(&sampler, n1, &mut v);
                e.sample_into(&sampler, n2, &mut v);
                v
            };
            // Identical regardless of scheduling...
            assert_eq!(run(400, 100), run(400, 100), "threads={threads}");
        }
    }

    #[test]
    fn parallel_collections_match_single_thread_statistically() {
        // Proposition 1: n·E[F_R({u})] = σ({u}) — frequency estimates from
        // different thread counts must agree within sampling noise.
        let n = 21usize;
        let g = generators::star(n);
        let probs = vec![0.3f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let samples = 60_000;
        let hub_estimate = |threads: usize| {
            let mut e = ParallelSampler::new(SamplingConfig::new(threads, 5), n);
            let mut coll = RrCollection::new(n);
            e.sample_into(&sampler, samples, &mut coll);
            assert_eq!(coll.num_sets(), samples);
            n as f64 * coll.cov(0) as f64 / samples as f64
        };
        for threads in [1usize, 2, 4] {
            let est = hub_estimate(threads);
            assert!((est - 7.0).abs() < 0.25, "threads={threads}: {est}");
        }
    }

    #[test]
    fn max_theta_caps_cumulative_draws() {
        let g = generators::path(8);
        let probs = vec![1.0f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let mut cfg = SamplingConfig::new(2, 1);
        cfg.max_theta = Some(150);
        let mut e = ParallelSampler::new(cfg, 8);
        let mut coll = RrCollection::new(8);
        assert_eq!(e.sample_into(&sampler, 100, &mut coll), 100);
        assert_eq!(e.sample_into(&sampler, 100, &mut coll), 50);
        assert_eq!(e.sample_into(&sampler, 100, &mut coll), 0);
        assert_eq!(coll.num_sets(), 150);
        assert_eq!(e.total_sampled(), 150);
    }

    #[test]
    fn sample_map_matches_sample_into_order() {
        let g = generators::erdos_renyi(40, 160, 11);
        let probs = probs_for(&g);
        let sampler = RrSampler::new(&g, &probs);
        let mut e1 = ParallelSampler::new(SamplingConfig::new(3, 13), g.num_nodes());
        let mut sets: Vec<Vec<NodeId>> = Vec::new();
        e1.sample_into(&sampler, 333, &mut sets);
        let mut e2 = ParallelSampler::new(SamplingConfig::new(3, 13), g.num_nodes());
        let sizes = e2.sample_map(&sampler, 333, |set| set.len());
        assert_eq!(
            sets.iter().map(Vec::len).collect::<Vec<_>>(),
            sizes,
            "same config ⇒ same draw order for both batch APIs"
        );
    }

    #[test]
    fn rrc_batches_respect_ctp_blocking() {
        // Path 0→1→2 with p = 1 and δ(1) = 0: node 1 never appears, node 0
        // appears whenever the root is ≥ 1 one hop away (it relays).
        let g = generators::path(3);
        let probs = vec![1.0f32; 2];
        let ctp = vec![1.0f32, 0.0, 1.0];
        let sampler = RrSampler::new(&g, &probs);
        let mut e = ParallelSampler::new(SamplingConfig::new(4, 3), 3);
        let mut sets: Vec<Vec<NodeId>> = Vec::new();
        e.sample_rrc_into(&sampler, &ctp, 600, &mut sets);
        assert_eq!(sets.len(), 600);
        assert!(sets.iter().all(|s| !s.contains(&1)), "1 is CTP-blocked");
        assert!(
            sets.iter().any(|s| s.contains(&0) && s.len() == 2),
            "0 must relay through blocked 1 to root 2"
        );
    }

    #[test]
    fn batch_split_invariance() {
        // The engine's output is one deterministic stream: chunking a
        // request differently must not change the sequence — the warm
        // RR-index reuse of the online layer depends on this.
        let g = generators::preferential_attachment(100, 3, 0.2, 4);
        let probs = probs_for(&g);
        let sampler = RrSampler::new(&g, &probs);
        for threads in [1usize, 2, 3, 4] {
            let run = |splits: &[usize]| {
                let mut e = ParallelSampler::new(SamplingConfig::new(threads, 17), g.num_nodes());
                let mut v: Vec<Vec<NodeId>> = Vec::new();
                for &s in splits {
                    e.sample_into(&sampler, s, &mut v);
                }
                v
            };
            let whole = run(&[700]);
            assert_eq!(whole, run(&[300, 400]), "threads={threads}");
            assert_eq!(whole, run(&[1, 699]), "threads={threads}");
            assert_eq!(whole, run(&[233, 233, 234]), "threads={threads}");
        }
    }

    #[test]
    fn fast_route_is_bit_identical_through_the_engine() {
        // sample_into_with(Some(..)) and sample_map_with(Some(..)) must
        // reproduce the plain routes exactly — thresholds, block RNG and
        // relabeled marks are pure speed, never stream changes.
        use crate::fastpath::{FastPath, SamplingLayout};
        use std::sync::Arc;

        let g = generators::preferential_attachment(150, 3, 0.2, 8);
        let probs = probs_for(&g);
        let sampler = RrSampler::new(&g, &probs);
        let layout = Arc::new(SamplingLayout::degree_ordered(&g));
        let fp = FastPath::new(layout, &g, &probs);
        for threads in [1usize, 2, 3] {
            let mut plain_e = ParallelSampler::new(SamplingConfig::new(threads, 23), 150);
            let mut plain: Vec<Vec<NodeId>> = Vec::new();
            plain_e.sample_into(&sampler, 400, &mut plain);
            let plain_sizes = plain_e.sample_map(&sampler, 111, |s| s.len());

            let mut fast_e = ParallelSampler::new(SamplingConfig::new(threads, 23), 150);
            let mut fast: Vec<Vec<NodeId>> = Vec::new();
            fast_e.sample_into_with(&sampler, Some(&fp), 400, &mut fast);
            let fast_sizes = fast_e.sample_map_with(&sampler, Some(&fp), 111, |s| s.len());

            assert_eq!(plain, fast, "threads={threads}");
            assert_eq!(plain_sizes, fast_sizes, "threads={threads}");
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_anchor_shard_zero() {
        let cfg = SamplingConfig::new(8, 0xdead_beef);
        assert_eq!(cfg.shard_seed(0), 0xdead_beef);
        let mut seeds: Vec<u64> = (0..8).map(|i| cfg.shard_seed(i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn arena_round_trips_sets() {
        let mut a = RrArena::default();
        assert!(a.is_empty());
        a.push(&[1, 2, 3]);
        a.push(&[]);
        a.push(&[7]);
        assert_eq!(a.len(), 3);
        let sets: Vec<&[NodeId]> = a.iter().collect();
        assert_eq!(sets, vec![&[1u32, 2, 3][..], &[][..], &[7][..]]);
        assert_eq!(a.get(0), &[1, 2, 3]);
        assert_eq!(a.get(2), &[7]);
    }
}
