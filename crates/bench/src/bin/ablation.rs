//! Ablation studies beyond the paper's figures, probing the design choices
//! DESIGN.md calls out:
//!
//! 1. **Selection rule** — Algorithm 3's max-coverage candidate vs the
//!    exact max-regret-drop candidate (TIRM option `exact_drop_selection`).
//! 2. **Budget boost β** — the §3 Discussion mechanism `B' = (1+β)B`:
//!    sweeps β and reports revenue vs free service.
//! 3. **θ cap sensitivity** — how the per-ad RR-set cap trades memory for
//!    regret.
//! 4. **RRC vs RR+Theorem-5** — sample-count ratio of CTP-aware RRC
//!    sampling against plain RR sampling with CTP-scaled marginals,
//!    demonstrating why §5.2 rejects the RRC route.
//!
//! Parts 1–3 report through `tirm_bench::suite::cell_from_run` into a
//! schema [`BenchReport`] (`ablation.json`), so ablation variants are
//! diffable against baselines with `bench_diff`; part 4 has no allocation
//! and keeps its own row format (`ablation_rrc.json`).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tirm_bench::schema::{BenchCell, BenchReport, EnvFingerprint};
use tirm_bench::suite::{cell_from_run, CellLabels};
use tirm_bench::{banner, write_json, write_report, QualityWorkload};
use tirm_core::report::{fnum, Table};
use tirm_core::{evaluate, tirm_allocate, TirmOptions};
use tirm_rrset::{RrSampler, SampleWorkspace};
use tirm_workloads::DatasetKind;

fn main() {
    let w = QualityWorkload::new(DatasetKind::Flixster, 0xab1a);
    banner("ablation (FLIXSTER-like)", &w.cfg);
    let mut cells: Vec<BenchCell> = Vec::new();

    // --- 1. selection rule + 3. θ cap ------------------------------------
    let mut t = Table::new(&[
        "variant",
        "total regret",
        "seeds",
        "RR sets",
        "mem GB",
        "secs",
    ]);
    let base = TirmOptions {
        eps: 0.1,
        seed: 0xab1a,
        max_theta_per_ad: Some(1_000_000),
        ..TirmOptions::default()
    };
    let variants: Vec<(&str, &str, TirmOptions)> = vec![
        ("alg3", "TIRM (Alg. 3 max-coverage)", base),
        (
            "exact-drop",
            "TIRM exact-drop selection",
            TirmOptions {
                exact_drop_selection: true,
                ..base
            },
        ),
        (
            "hard-cover",
            "TIRM hard-cover (paper literal line 12)",
            TirmOptions {
                hard_cover: true,
                ..base
            },
        ),
        (
            "theta-div10",
            "TIRM theta cap /10",
            TirmOptions {
                max_theta_per_ad: Some(100_000),
                ..base
            },
        ),
        (
            "theta-div100",
            "TIRM theta cap /100",
            TirmOptions {
                max_theta_per_ad: Some(10_000),
                ..base
            },
        ),
    ];
    // The ablation runs single-threaded throughout (TirmOptions::default
    // has threads = 1; evaluation below matches), and the cell labels say
    // so — `threads` is part of cell identity and steers RNG partitioning.
    let threads = 1;
    for (slug, name, opts) in variants {
        let problem = w.problem(1, 0.0);
        let t0 = std::time::Instant::now();
        let (alloc, stats) = tirm_allocate(&problem, opts);
        let secs = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let ev = evaluate(&problem, &alloc, w.cfg.eval_runs, 0xe7a1, threads);
        let eval_s = t1.elapsed().as_secs_f64();
        eprintln!("  {name}: regret {:.1} in {:.1}s", ev.regret.total(), secs);
        t.row(vec![
            name.to_string(),
            fnum(ev.regret.total()),
            alloc.total_seeds().to_string(),
            stats.rr_sets_total().to_string(),
            format!("{:.3}", stats.memory_bytes as f64 / 1e9),
            fnum(secs),
        ]);
        cells.push(cell_from_run(
            CellLabels {
                id: format!("ABLATION/select/{slug}"),
                dataset: w.dataset.kind.name(),
                prob_model: "topic",
                allocator: name,
                threads,
                kappa: 1,
                lambda: 0.0,
                seed: opts.seed,
            },
            &problem,
            &alloc,
            &stats,
            Some(&ev),
            secs,
            eval_s,
        ));
    }
    println!("\nAblation 1+3 — selection rule and theta cap (kappa=1, lambda=0)");
    println!("{}", t.render());

    // --- 2. budget boost β -----------------------------------------------
    let mut t = Table::new(&["beta", "revenue", "target", "free service", "undershoot"]);
    for beta in [0.0, 0.1, 0.25, 0.5] {
        let problem = w.problem(1, 0.0).with_beta(beta);
        let t0 = std::time::Instant::now();
        let (alloc, stats) = tirm_allocate(&problem, base);
        let secs = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let ev = evaluate(&problem, &alloc, w.cfg.eval_runs, 1, threads);
        let eval_s = t1.elapsed().as_secs_f64();
        // Free service = revenue beyond the *original* budgets.
        let original: f64 = w.ads.iter().map(|a| a.budget).sum();
        let revenue = ev.regret.total_revenue();
        let free = (revenue - original).max(0.0);
        let under = (original - revenue).max(0.0);
        eprintln!("  beta={beta}: revenue {revenue:.1} vs base budget {original:.1}");
        t.row(vec![
            format!("{beta}"),
            fnum(revenue),
            fnum(ev.regret.total_budget()),
            fnum(free),
            fnum(under),
        ]);
        cells.push(cell_from_run(
            CellLabels {
                id: format!("ABLATION/beta/{beta}"),
                dataset: w.dataset.kind.name(),
                prob_model: "topic",
                allocator: "TIRM",
                threads,
                kappa: 1,
                lambda: 0.0,
                seed: base.seed,
            },
            &problem,
            &alloc,
            &stats,
            Some(&ev),
            secs,
            eval_s,
        ));
    }
    println!("\nAblation 2 — budget boost beta (Section 3 Discussion)");
    println!("{}", t.render());

    write_report(
        "ablation",
        &BenchReport::new("ablation", EnvFingerprint::current(&w.cfg), cells),
    );

    // --- 4. RRC vs RR sample economics -----------------------------------
    // Average RRC-set membership shrinks by ~E[δ] vs RR sets, so hitting
    // the same coverage-estimate precision needs ~1/E[δ] more samples —
    // with 1–3% CTPs that is two orders of magnitude (the §5.2 argument).
    let problem = w.problem(1, 0.0);
    let probs = &problem.edge_probs[0];
    let sampler = RrSampler::new(problem.graph, probs);
    let mut ws = SampleWorkspace::new(problem.graph.num_nodes());
    let mut rng = SmallRng::seed_from_u64(99);
    let samples = 20_000;
    let (mut rr_members, mut rrc_members) = (0usize, 0usize);
    for _ in 0..samples {
        rr_members += sampler.sample(&mut ws, &mut rng).len();
    }
    for _ in 0..samples {
        rrc_members += sampler
            .sample_rrc(problem.ctp.ad(0), &mut ws, &mut rng)
            .len();
    }
    let ratio = rr_members as f64 / rrc_members.max(1) as f64;
    println!("\nAblation 4 — RRC vs RR sampling economics ({samples} samples each)");
    println!(
        "  mean RR-set size : {:.3}",
        rr_members as f64 / samples as f64
    );
    println!(
        "  mean RRC-set size: {:.3}",
        rrc_members as f64 / samples as f64
    );
    println!("  membership ratio : {ratio:.1}x (≈ 1/E[CTP]; §5.2 predicts ~50x at 1–3% CTPs)");
    write_json(
        "ablation_rrc",
        &vec![serde_json::json!({
            "experiment": "rrc_vs_rr",
            "rr_mean_size": rr_members as f64 / samples as f64,
            "rrc_mean_size": rrc_members as f64 / samples as f64,
            "ratio": ratio,
        })],
    );
}
