//! # tirm-server
//!
//! The **network serving frontend** over the online allocation engine:
//! the paper frames TIRM as the allocation core of a social-ad serving
//! platform, and this crate is the request/response boundary that makes
//! the reproduction one — a std-only multithreaded TCP server fronting
//! [`tirm_online::OnlineAllocator`] with a length-prefixed JSON wire
//! protocol.
//!
//! * [`protocol`] — the wire vocabulary, re-exported from the shared
//!   [`tirm_wire`] crate (one codec for the server and every client):
//!   mutation requests *are* event log lines (shared codec with
//!   `tirm_workloads::events`), reads are `allocation` / `ad` /
//!   `regret_query` / `stats`, a versioned `hello` handshake carries
//!   the recovery anchors, responses are typed (`accepted` /
//!   `overloaded` / `shutting_down` / payloads).
//! * [`wal`] — the durability layer: a segmented write-ahead log of
//!   admitted mutations (group-commit fsync), allocator checkpoints
//!   through the checksummed snapshot container, and the recovery
//!   scan that rebuilds a server from checkpoint + log tail.
//! * [`swap`] — the snapshot-swap cell: the writer publishes an
//!   immutable [`tirm_online::AllocationSnapshot`] after every applied
//!   event; readers serve queries from a cached `Arc` without ever
//!   blocking on allocator work.
//! * [`server`] — [`serve`]: one writer thread owns the allocator and
//!   drains a **bounded** MPSC queue; admission control sheds mutations
//!   with a typed `Overloaded` response when the queue is full (the
//!   accept path never blocks on the writer), and the drain-then-close
//!   shutdown applies every admitted mutation before exit.
//! * [`client`] — a blocking client ([`Client`]) for load generators
//!   and harnesses, including the retry-on-overload deterministic
//!   delivery mode.
//!
//! **Correctness anchor:** replaying an event log through the server
//! (mutations over the wire, in order) lands on a final
//! `AllocationSnapshot` bit-identical — allocations *and* revenue
//! estimates — to `tirm_online` replaying the same log in-process.
//! Property-tested in `tests/wire_equivalence.rs`.

pub mod client;
pub mod replica;
pub mod server;
pub mod swap;
pub mod wal;

use tirm_core::TirmOptions;
use tirm_online::OnlineConfig;
use tirm_workloads::{DatasetKind, ScaleConfig};

/// The serving stack's canonical allocator configuration for a dataset
/// at a scale — the exact derivation the `tirm_server` binary uses
/// (quality-tier ε and θ-cap, `ScaleConfig` thread count, the perf
/// suite's θ-cap scaling). Out-of-process harnesses (the crash soak,
/// replay oracles) build the same config so their in-process replays
/// are bit-comparable to a served instance.
pub fn serving_online_config(
    dataset: DatasetKind,
    scale: &ScaleConfig,
    kappa: u32,
    lambda: f64,
    seed: u64,
) -> OnlineConfig {
    let quality = matches!(dataset, DatasetKind::Flixster | DatasetKind::Epinions);
    let mut tirm = TirmOptions {
        eps: if quality { 0.1 } else { 0.2 },
        seed,
        max_theta_per_ad: Some(if quality { 1_000_000 } else { 400_000 }),
        ..TirmOptions::default()
    };
    tirm.threads = scale.threads;
    tirm.scale_theta_cap(scale.scale);
    OnlineConfig {
        tirm,
        kappa,
        lambda,
        ..OnlineConfig::default()
    }
}

/// The wire vocabulary lives in the shared [`tirm_wire`] crate; this
/// alias keeps the crate-local `protocol` paths working.
pub use tirm_wire as protocol;

pub use client::{CheckpointChunk, Client, HelloInfo};
pub use protocol::{
    ClientOptions, Request, Response, Role, StatsView, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use replica::{serve_follower, FollowerConfig, FollowerReport};
pub use server::{serve, DurabilityConfig, ServeReport, ServerConfig, ServerHandle};
pub use swap::{SnapshotReader, SnapshotSwap};
pub use wal::{RecoveryReport, RecoveryWarning, ReplicaBatch, Wal};
