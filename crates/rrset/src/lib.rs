//! # tirm-rrset
//!
//! Reverse-reachable (RR) set machinery (§5 of the paper):
//!
//! * [`sampler`] — random RR-set generation by reverse BFS with per-arc
//!   coin flips, plus the CTP-aware **RRC** variant of §5.2 (node-level
//!   acceptance coins; blocked nodes still propagate).
//! * [`index`] — [`RrIndex`], the flat RR-set storage + inverted
//!   node→set-id postings shared by every coverage overlay, with exact
//!   memory accounting. Persistent: the online serving layer keeps one
//!   per ad alive across re-allocations.
//! * [`collection`] — growing collection of RR sets over an [`RrIndex`]
//!   with marginal coverage counts and `cover` operations (the Max-Cover
//!   primitive TIM and TIRM both use).
//! * [`parallel`] — the deterministic multi-threaded sampling engine
//!   ([`ParallelSampler`]): θ samples sharded over persistent per-thread
//!   RNG/workspace pairs, merged contention-free in shard order. Same
//!   `(seed, threads)` ⇒ identical collections; `threads = 1` is
//!   bit-identical to the serial path.
//! * [`heap`] — lazy max-heaps for CELF-style best-node selection.
//! * [`tim`] — the TIM sample-size machinery: KPT estimation,
//!   `λ(s, ε)` / `L(s, ε)` bounds (Eq. 5) and a complete TIM influence
//!   maximizer used for validation and as a substrate baseline.
//! * [`special`] — `ln Γ`, `ln C(n, s)` helpers the bounds need.

pub mod collection;
pub mod fastpath;
pub mod heap;
pub mod index;
pub mod parallel;
pub mod sampler;
pub mod special;
pub mod tim;
pub mod weighted;

pub use collection::RrCollection;
pub use fastpath::{coin_threshold, BlockRng, FastPath, SamplingLayout};
pub use heap::LazyMaxHeap;
pub use index::{Postings, RrIndex};
pub use parallel::{ParallelSampler, RrArena, RrSink, SamplerState, SamplingConfig};
pub use sampler::{RrSampler, SampleWorkspace};
pub use tim::{tim_select, tim_select_with, KptEstimator, KptState, SampleBound, TimResult};
pub use weighted::{score_key, WeightedRrCollection};
