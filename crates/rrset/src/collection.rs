//! Growing collection of RR sets with marginal-coverage bookkeeping.
//!
//! This is the Max-Cover substrate shared by TIM's seed selection and
//! TIRM's `SelectBestNode` (Algorithm 3): it maintains, for every node,
//! the number of *uncovered* sets containing it, supports covering all
//! sets containing a chosen seed (Algorithm 2, line 12), and reports its
//! exact memory footprint for the Table 4 reproduction.
//!
//! Storage and the inverted node → set-id postings live in the shared
//! [`RrIndex`]; this type adds the covered/marginal-count overlay.

use crate::index::RrIndex;
use tirm_graph::NodeId;

/// RR-set collection: an [`RrIndex`] plus a covered-set overlay.
#[derive(Clone, Debug)]
pub struct RrCollection {
    index: RrIndex,
    /// Whether set `i` has been covered by a chosen seed.
    covered: Vec<bool>,
    /// Per node: number of uncovered sets containing it (marginal coverage).
    cov: Vec<u32>,
    num_covered: usize,
}

impl RrCollection {
    /// Empty collection over `n` nodes.
    pub fn new(n: usize) -> Self {
        RrCollection {
            index: RrIndex::new(n),
            covered: Vec::new(),
            cov: vec![0; n],
            num_covered: 0,
        }
    }

    /// Number of nodes the collection is defined over.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.index.num_nodes()
    }

    /// Total number of sets ever added (θ in the paper's notation).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.covered.len()
    }

    /// Number of sets currently covered by chosen seeds.
    #[inline]
    pub fn num_covered(&self) -> usize {
        self.num_covered
    }

    /// Adds one RR set (a list of member nodes; duplicates are the
    /// sampler's responsibility to avoid). Returns its set id.
    pub fn add_set(&mut self, members: &[NodeId]) -> u32 {
        let sid = self.index.push_set(members);
        self.covered.push(false);
        for &v in members {
            self.cov[v as usize] += 1;
        }
        sid
    }

    /// Members of set `sid`.
    #[inline]
    pub fn set(&self, sid: u32) -> &[NodeId] {
        self.index.set(sid)
    }

    /// Marginal coverage of `v`: the number of *uncovered* sets containing
    /// it. `n · cov(v) / θ` estimates the marginal spread of adding `v`.
    #[inline]
    pub fn cov(&self, v: NodeId) -> u32 {
        self.cov[v as usize]
    }

    /// Whether set `sid` is covered.
    #[inline]
    pub fn is_covered(&self, sid: u32) -> bool {
        self.covered[sid as usize]
    }

    /// Covers every uncovered set containing `v` (the seed just chosen),
    /// decrementing the marginal coverage of all their members.
    /// Returns how many sets were newly covered (== `cov(v)` beforehand).
    pub fn cover_node(&mut self, v: NodeId) -> u32 {
        let mut newly = 0u32;
        for sid in self.index.postings(v) {
            if self.covered[sid as usize] {
                continue;
            }
            self.covered[sid as usize] = true;
            self.num_covered += 1;
            newly += 1;
            for &w in self.index.set(sid) {
                debug_assert!(self.cov[w as usize] > 0);
                self.cov[w as usize] -= 1;
            }
        }
        newly
    }

    /// Counts the sets with id ≥ `from_sid` that contain `v` and are still
    /// uncovered — used by TIRM's `UpdateEstimates` (Algorithm 4) to credit
    /// freshly sampled sets to already-chosen seeds.
    pub fn count_uncovered_from(&self, v: NodeId, from_sid: u32) -> u32 {
        self.index
            .postings(v)
            .into_iter()
            .filter(|&sid| sid >= from_sid && !self.covered[sid as usize])
            .count() as u32
    }

    /// Node with maximum marginal coverage among those passing `eligible`;
    /// linear scan fallback used by plain TIM and by tests (TIRM uses the
    /// lazy heap instead).
    pub fn argmax_cov(&self, mut eligible: impl FnMut(NodeId) -> bool) -> Option<(NodeId, u32)> {
        let mut best: Option<(NodeId, u32)> = None;
        for v in 0..self.num_nodes() as NodeId {
            let c = self.cov[v as usize];
            if c == 0 || !eligible(v) {
                continue;
            }
            if best.is_none_or(|(_, bc)| c > bc) {
                best = Some((v, c));
            }
        }
        best
    }

    /// Exact bytes held by this collection (index storage, flags,
    /// counters) — the Table 4 memory metric.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.covered.capacity() + self.cov.capacity() * 4
    }

    /// Sum of set sizes (total node entries) — a size diagnostic.
    pub fn total_entries(&self) -> usize {
        self.index.total_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> RrCollection {
        let mut c = RrCollection::new(5);
        c.add_set(&[0, 1]);
        c.add_set(&[1, 2]);
        c.add_set(&[3]);
        c.add_set(&[1, 3, 4]);
        c
    }

    #[test]
    fn coverage_counts() {
        let c = sample_collection();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.cov(1), 3);
        assert_eq!(c.cov(0), 1);
        assert_eq!(c.cov(3), 2);
        assert_eq!(c.cov(4), 1);
    }

    #[test]
    fn cover_node_updates_marginals() {
        let mut c = sample_collection();
        let newly = c.cover_node(1);
        assert_eq!(newly, 3);
        assert_eq!(c.num_covered(), 3);
        assert_eq!(c.cov(1), 0);
        assert_eq!(c.cov(0), 0, "set {{0,1}} is covered");
        assert_eq!(c.cov(2), 0);
        assert_eq!(c.cov(3), 1, "only set {{3}} remains");
        // Covering again is a no-op.
        assert_eq!(c.cover_node(1), 0);
        // Covering 3 covers the last set.
        assert_eq!(c.cover_node(3), 1);
        assert_eq!(c.num_covered(), 4);
    }

    #[test]
    fn argmax_respects_eligibility() {
        let c = sample_collection();
        assert_eq!(c.argmax_cov(|_| true), Some((1, 3)));
        let best = c.argmax_cov(|v| v != 1).unwrap();
        assert_eq!(best, (3, 2));
        assert_eq!(c.argmax_cov(|_| false), None);
    }

    #[test]
    fn count_uncovered_from_boundary() {
        let mut c = sample_collection();
        assert_eq!(c.count_uncovered_from(1, 0), 3);
        assert_eq!(c.count_uncovered_from(1, 1), 2);
        assert_eq!(c.count_uncovered_from(1, 3), 1);
        c.cover_node(2); // covers set 1
        assert_eq!(c.count_uncovered_from(1, 1), 1);
    }

    #[test]
    fn set_retrieval_and_entries() {
        let c = sample_collection();
        assert_eq!(c.set(3), &[1, 3, 4]);
        assert_eq!(c.total_entries(), 8);
        assert!(c.memory_bytes() > 0);
    }
}
