//! Baseline comparison with noise-aware thresholds — the logic behind the
//! `bench_diff` regression gate.
//!
//! Two artifact files are joined on cell ids. Deterministic payload fields
//! (θ, seeds, regret, memory accounting) must match up to float-printing
//! tolerance on identical code — any drift is surfaced, and drift that
//! makes quality or memory *worse* beyond per-metric thresholds is a
//! regression. Wall-clock fields are only compared when both artifacts
//! carry [`crate::schema::EnvFingerprint`]s of the same machine class, and
//! only for cells slow enough to be above measurement noise (min-sample
//! gating).

use crate::schema::{BenchCell, BenchReport};
use tirm_core::report::{fnum, Table};

/// Per-metric tolerances. Defaults flag a 20% slowdown with margin while
/// tolerating ordinary scheduler jitter.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative wall-clock increase considered a regression (0.15 = 15%).
    pub time_rel_tol: f64,
    /// Cells with a baseline wall time below this many seconds are never
    /// time-flagged: sub-noise samples produce junk ratios.
    pub time_min_s: f64,
    /// A wall-clock change must also exceed this many *absolute* seconds
    /// to be flagged — 15% of a 90 ms cell is scheduler noise, 15% of a
    /// 15 s cell is not. Shared CI runners drift ±20% on sub-second
    /// cells run-to-run (measured on this repo's own container), hence
    /// the 100 ms default.
    pub time_abs_slack_s: f64,
    /// Relative `memory_bytes` / peak-RSS increase considered a regression.
    pub mem_rel_tol: f64,
    /// Memory cells below this baseline size are never flagged.
    pub mem_min_bytes: usize,
    /// Relative total-regret increase considered a quality regression.
    pub regret_rel_tol: f64,
    /// Compare wall-clock fields even when the environment fingerprints
    /// differ (off by default; deterministic fields are always compared).
    pub force_time: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            time_rel_tol: 0.15,
            time_min_s: 0.05,
            time_abs_slack_s: 0.1,
            mem_rel_tol: 0.25,
            mem_min_bytes: 1 << 20,
            regret_rel_tol: 0.02,
            force_time: false,
        }
    }
}

/// What happened to one metric of one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Worse beyond tolerance — fails the gate.
    Regression,
    /// Better beyond tolerance — informational.
    Improvement,
    /// Deterministic payload changed (neither clearly better nor worse).
    Drift,
    /// Cell present in the baseline but absent from the new artifact.
    MissingCell,
    /// Cell only in the new artifact.
    NewCell,
}

/// One finding: a `(cell, metric)` pair that moved.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Cell id.
    pub id: String,
    /// Metric name (`wall_s`, `total_regret`, …) or `-` for cell-level
    /// findings.
    pub metric: String,
    /// Baseline value (0 when the cell is new).
    pub old: f64,
    /// New value (0 when the cell is missing).
    pub new: f64,
    /// Classification.
    pub verdict: Verdict,
}

impl Finding {
    /// Relative change `new/old − 1`, `∞`-safe.
    pub fn rel_change(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.old - 1.0
        }
    }
}

/// The comparison result: findings plus gate summary.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// All findings, baseline cell order.
    pub findings: Vec<Finding>,
    /// Whether wall-clock metrics were compared at all.
    pub times_compared: bool,
    /// Cells present in both artifacts.
    pub cells_joined: usize,
}

impl DiffReport {
    /// True when any finding fails the gate.
    pub fn has_regressions(&self) -> bool {
        self.regressions() > 0
    }

    /// Number of gate-failing findings (regressions + missing cells).
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| matches!(f.verdict, Verdict::Regression | Verdict::MissingCell))
            .count()
    }

    /// Number of cells only present in the new artifact (informational —
    /// a fresh tier's first run shows up here, not as silence).
    pub fn new_cells(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.verdict == Verdict::NewCell)
            .count()
    }

    /// Renders the findings as a GitHub-flavoured markdown table plus a
    /// one-line summary (what the CI job prints).
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "No changes across {} compared cells{}.\n",
                self.cells_joined,
                if self.times_compared {
                    ""
                } else {
                    " (wall-clock skipped: environments differ)"
                }
            ));
            return out;
        }
        let mut t = Table::new(&["cell", "metric", "old", "new", "Δ%", "verdict"]);
        for f in &self.findings {
            let delta = f.rel_change();
            // Baseline-less (new) and result-less (missing) cells have no
            // meaningful "other side" — render it as a dash, not a zero.
            let old = if f.verdict == Verdict::NewCell {
                "-".into()
            } else {
                fnum(f.old)
            };
            let new = if f.verdict == Verdict::MissingCell {
                "-".into()
            } else {
                fnum(f.new)
            };
            t.row(vec![
                f.id.clone(),
                f.metric.clone(),
                old,
                new,
                if delta.is_finite() {
                    format!("{:+.1}", delta * 100.0)
                } else {
                    "-".into()
                },
                match f.verdict {
                    Verdict::Regression => "REGRESSION".into(),
                    Verdict::Improvement => "improvement".into(),
                    Verdict::Drift => "drift".into(),
                    Verdict::MissingCell => "MISSING CELL".into(),
                    Verdict::NewCell => "NEW CELL".into(),
                },
            ]);
        }
        out.push_str(&t.render_markdown());
        let new_cells = self.new_cells();
        out.push_str(&format!(
            "\n{} finding(s), {} gate-failing, {} new cell(s), over {} compared cells{}.\n",
            self.findings.len(),
            self.regressions(),
            new_cells,
            self.cells_joined,
            if self.times_compared {
                ""
            } else {
                " (wall-clock skipped: environments differ)"
            }
        ));
        out
    }
}

/// Tolerance for "identical" deterministic floats: artifacts print f64s
/// with Rust's shortest round-trip formatting, so equality survives the
/// JSON round trip exactly; the epsilon only guards summed metrics.
const DET_EPS: f64 = 1e-9;

fn rel_exceeds(old: f64, new: f64, tol: f64) -> bool {
    new > old * (1.0 + tol) + f64::EPSILON
}

/// Compares two artifacts. `old` is the committed baseline, `new` the
/// fresh measurement.
pub fn diff_reports(old: &BenchReport, new: &BenchReport, opts: &DiffOptions) -> DiffReport {
    let times_compared = opts.force_time || old.env.time_comparable(&new.env);
    let mut findings = Vec::new();
    let mut joined = 0usize;

    for oc in &old.cells {
        match new.cell(&oc.id) {
            None => findings.push(Finding {
                id: oc.id.clone(),
                metric: "-".into(),
                old: 0.0,
                new: 0.0,
                verdict: Verdict::MissingCell,
            }),
            Some(nc) => {
                joined += 1;
                findings.extend(diff_cell(oc, nc, opts, times_compared));
            }
        }
    }
    for nc in &new.cells {
        if old.cell(&nc.id).is_none() {
            // A cell with no baseline is surfaced with its headline
            // measurement so a fresh tier's first run is auditable in the
            // table rather than invisible until its second run.
            findings.push(Finding {
                id: nc.id.clone(),
                metric: "wall_s".into(),
                old: 0.0,
                new: nc.wall_s,
                verdict: Verdict::NewCell,
            });
        }
    }

    // Run-wide peak RSS: the per-cell field is a monotone high-water
    // mark, so only the maxima are comparable — and only between same
    // machine classes, and only when both runs cover the same cells
    // (a filtered run peaks differently by construction).
    if times_compared && joined == old.cells.len() && joined == new.cells.len() {
        let peak = |r: &BenchReport| r.cells.iter().map(|c| c.peak_rss_bytes).max().unwrap_or(0);
        let (o, n) = (peak(old), peak(new));
        if o >= opts.mem_min_bytes {
            let (of, nf) = (o as f64, n as f64);
            if rel_exceeds(of, nf, opts.mem_rel_tol) {
                findings.push(Finding {
                    id: "(run)".into(),
                    metric: "peak_rss_bytes".into(),
                    old: of,
                    new: nf,
                    verdict: Verdict::Regression,
                });
            } else if rel_exceeds(nf, of, opts.mem_rel_tol) {
                findings.push(Finding {
                    id: "(run)".into(),
                    metric: "peak_rss_bytes".into(),
                    old: of,
                    new: nf,
                    verdict: Verdict::Improvement,
                });
            }
        }
    }
    DiffReport {
        findings,
        times_compared,
        cells_joined: joined,
    }
}

fn diff_cell(
    oc: &BenchCell,
    nc: &BenchCell,
    opts: &DiffOptions,
    times_compared: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |metric: &str, old: f64, new: f64, verdict: Verdict| {
        out.push(Finding {
            id: oc.id.clone(),
            metric: metric.into(),
            old,
            new,
            verdict,
        })
    };

    // Quality: regret increases beyond tolerance are regressions,
    // decreases are improvements; other deterministic payload movement is
    // drift (the gate surfaces it so a baseline refresh is a conscious
    // act, but only worse-quality or worse-memory movement fails CI).
    let o = oc.total_regret;
    let n = nc.total_regret;
    if rel_exceeds(o, n, opts.regret_rel_tol) {
        push("total_regret", o, n, Verdict::Regression);
    } else if rel_exceeds(n, o, opts.regret_rel_tol) {
        push("total_regret", o, n, Verdict::Improvement);
    } else if (o - n).abs() > DET_EPS * o.abs().max(1.0) {
        push("total_regret", o, n, Verdict::Drift);
    }

    // Memory: precise per-cell accounting. (Peak RSS is a process-wide
    // high-water mark — monotone across a run and order-dependent — so it
    // is compared once per report in `diff_reports`, not per cell.)
    let (o, n) = (oc.memory_bytes, nc.memory_bytes);
    if o >= opts.mem_min_bytes {
        let (of, nf) = (o as f64, n as f64);
        if rel_exceeds(of, nf, opts.mem_rel_tol) {
            push("memory_bytes", of, nf, Verdict::Regression);
        } else if rel_exceeds(nf, of, opts.mem_rel_tol) {
            push("memory_bytes", of, nf, Verdict::Improvement);
        }
    }

    // RR-index layout: bytes-per-posting is deterministic (a pure
    // function of the run's postings), so it gates like memory but
    // cross-machine too. A zero baseline (pre-v5 artifact, or a non-RR
    // cell) has nothing to compare — the field's introduction surfaces
    // as drift, not a regression.
    let (o, n) = (oc.bytes_per_posting, nc.bytes_per_posting);
    if o > 0.0 && rel_exceeds(o, n, opts.mem_rel_tol) {
        push("bytes_per_posting", o, n, Verdict::Regression);
    } else if o > 0.0 && rel_exceeds(n, o, opts.mem_rel_tol) {
        push("bytes_per_posting", o, n, Verdict::Improvement);
    } else if (o - n).abs() > DET_EPS * o.abs().max(1.0) {
        push("bytes_per_posting", o, n, Verdict::Drift);
    }

    // Remaining deterministic payload: any movement is drift.
    for (name, o, n) in [
        ("theta", oc.theta as f64, nc.theta as f64),
        ("total_seeds", oc.total_seeds as f64, nc.total_seeds as f64),
        (
            "distinct_targeted",
            oc.distinct_targeted as f64,
            nc.distinct_targeted as f64,
        ),
        ("revenue", oc.revenue, nc.revenue),
        (
            "legacy_bytes_per_posting",
            oc.legacy_bytes_per_posting,
            nc.legacy_bytes_per_posting,
        ),
        ("nodes", oc.nodes as f64, nc.nodes as f64),
        ("edges", oc.edges as f64, nc.edges as f64),
    ] {
        if (o - n).abs() > DET_EPS * o.abs().max(1.0) {
            push(name, o, n, Verdict::Drift);
        }
    }

    // Wall clock, env- and noise-gated: a finding needs both the relative
    // threshold and an absolute movement beyond scheduler noise (15% of a
    // 90 ms cell is jitter; 15% of a 15 s cell is not).
    if times_compared {
        for (name, o, n) in [
            ("wall_s", oc.wall_s, nc.wall_s),
            ("eval_s", oc.eval_s, nc.eval_s),
        ] {
            if o < opts.time_min_s {
                continue;
            }
            if rel_exceeds(o, n, opts.time_rel_tol) && n - o > opts.time_abs_slack_s {
                push(name, o, n, Verdict::Regression);
            } else if rel_exceeds(n, o, opts.time_rel_tol) && o - n > opts.time_abs_slack_s {
                push(name, o, n, Verdict::Improvement);
            }
        }

        // Serving metrics (0 on batch cells, so they never gate there).
        // Latency percentiles — including the network read path's p99 —
        // gate like wall-clock with their own noise floors; throughput
        // gates in the *opposite* direction (a drop is the regression).
        for (name, o, n) in [
            ("latency_p50_us", oc.latency_p50_us, nc.latency_p50_us),
            ("latency_p95_us", oc.latency_p95_us, nc.latency_p95_us),
            ("latency_p99_us", oc.latency_p99_us, nc.latency_p99_us),
            ("read_p99_us", oc.read_p99_us, nc.read_p99_us),
        ] {
            if o < LATENCY_MIN_US {
                continue;
            }
            if rel_exceeds(o, n, opts.time_rel_tol) && n - o > LATENCY_SLACK_US {
                push(name, o, n, Verdict::Regression);
            } else if rel_exceeds(n, o, opts.time_rel_tol) && o - n > LATENCY_SLACK_US {
                push(name, o, n, Verdict::Improvement);
            }
        }
        for (name, o, n) in [
            ("events_per_s", oc.events_per_s, nc.events_per_s),
            ("reads_per_s", oc.reads_per_s, nc.reads_per_s),
            (
                "follower_reads_per_s",
                oc.follower_reads_per_s,
                nc.follower_reads_per_s,
            ),
        ] {
            if o >= EVENTS_PER_S_MIN {
                if rel_exceeds(n, o, opts.time_rel_tol) {
                    push(name, o, n, Verdict::Regression);
                } else if rel_exceeds(o, n, opts.time_rel_tol) {
                    push(name, o, n, Verdict::Improvement);
                }
            }
        }
        // Replication lag p99 (events behind the leader, replicated
        // cells only) gates upward like a latency: more lag under the
        // same load means the shipping path got slower. The floor keeps
        // near-zero-lag cells — where a single straggler sample is the
        // whole p99 — out of the gate.
        {
            let (o, n) = (oc.follower_lag_p99, nc.follower_lag_p99);
            if o >= FOLLOWER_LAG_MIN_EVENTS {
                if rel_exceeds(o, n, opts.time_rel_tol) && n - o > FOLLOWER_LAG_SLACK_EVENTS {
                    push("follower_lag_p99", o, n, Verdict::Regression);
                } else if rel_exceeds(n, o, opts.time_rel_tol) && o - n > FOLLOWER_LAG_SLACK_EVENTS
                {
                    push("follower_lag_p99", o, n, Verdict::Improvement);
                }
            }
        }
        // `shed_rate` is recorded but never gated: in deterministic-
        // delivery runs it measures retry pressure — a pure function of
        // machine speed, too noisy for a pass/fail threshold.
    }
    out
}

/// Serving-latency noise gates: latencies below ~2 ms are wire/scheduler
/// noise on shared 1-CPU runners (a single delayed response moves a
/// 150-sample p99 by milliseconds), so only baselines above the floor
/// gate — the in-process ONLINE cells' allocator latencies (3–20 ms)
/// and any real serving tail. Sub-floor metrics are still recorded in
/// the artifact. A finding additionally needs ≥ 1 ms of absolute
/// movement (mirroring `time_abs_slack_s` at event scale).
const LATENCY_MIN_US: f64 = 2_000.0;
const LATENCY_SLACK_US: f64 = 1_000.0;

/// Replication-lag noise gates (in events, not time): lag baselines
/// below this are dominated by poll-interval quantisation, and a
/// finding needs a few whole events of absolute movement on top of the
/// relative threshold.
const FOLLOWER_LAG_MIN_EVENTS: f64 = 8.0;
const FOLLOWER_LAG_SLACK_EVENTS: f64 = 4.0;
/// Throughput below one event per second is a degenerate cell; don't
/// gate on its ratios.
const EVENTS_PER_S_MIN: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{EnvFingerprint, SCHEMA_VERSION};

    fn cell(id: &str) -> BenchCell {
        BenchCell {
            id: id.to_string(),
            dataset: "DBLP".into(),
            prob_model: "wc".into(),
            allocator: "TIRM".into(),
            threads: 1,
            kappa: 1,
            lambda: 0.0,
            seed: 1,
            nodes: 3200,
            edges: 10_000,
            ads: 5,
            theta: 50_000,
            total_seeds: 80,
            distinct_targeted: 80,
            total_regret: 12.0,
            relative_regret: 0.1,
            revenue: 110.0,
            memory_bytes: 8 << 20,
            bytes_per_posting: 5.2,
            legacy_bytes_per_posting: 7.8,
            wall_s: 2.0,
            eval_s: 0.5,
            dataset_cold_s: 1.0,
            dataset_warm_s: 0.0,
            rr_sets_per_s: 25_000.0,
            postings_scan_mentries_per_s: 350.0,
            latency_p50_us: 0.0,
            latency_p95_us: 0.0,
            latency_p99_us: 0.0,
            events_per_s: 0.0,
            read_p99_us: 0.0,
            reads_per_s: 0.0,
            shed_rate: 0.0,
            follower_reads_per_s: 0.0,
            follower_lag_p99: 0.0,
            peak_rss_bytes: 64 << 20,
        }
    }

    fn report(cells: Vec<BenchCell>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "test".into(),
            tier: "quick".into(),
            created_unix: 0,
            env: EnvFingerprint {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 1,
                debug_assertions: false,
                scale: 0.08,
                eval_runs: 200,
            },
            cells,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(vec![cell("a"), cell("b")]);
        let d = diff_reports(&a, &a.clone(), &DiffOptions::default());
        assert!(!d.has_regressions());
        assert!(d.findings.is_empty());
        assert_eq!(d.cells_joined, 2);
        assert!(d.markdown().contains("No changes"));
    }

    #[test]
    fn twenty_percent_slowdown_is_flagged() {
        let old = report(vec![cell("a")]);
        let mut slow = cell("a");
        slow.wall_s *= 1.2;
        let new = report(vec![slow]);
        let d = diff_reports(&old, &new, &DiffOptions::default());
        assert!(d.has_regressions());
        let f = &d.findings[0];
        assert_eq!(f.metric, "wall_s");
        assert_eq!(f.verdict, Verdict::Regression);
        assert!(d.markdown().contains("REGRESSION"));
    }

    #[test]
    fn small_jitter_is_not_flagged() {
        let old = report(vec![cell("a")]);
        let mut jitter = cell("a");
        jitter.wall_s *= 1.1; // below the 15% threshold
        let d = diff_reports(&old, &report(vec![jitter]), &DiffOptions::default());
        assert!(!d.has_regressions());
    }

    #[test]
    fn sub_noise_cells_are_time_gated() {
        let mut fast = cell("a");
        fast.wall_s = 0.01;
        let old = report(vec![fast.clone()]);
        fast.wall_s = 0.04; // 4× slower but under time_min_s
        let d = diff_reports(&old, &report(vec![fast]), &DiffOptions::default());
        assert!(!d.has_regressions(), "sub-noise cells must not gate");
    }

    #[test]
    fn missing_cell_fails_the_gate() {
        let old = report(vec![cell("a"), cell("b")]);
        let new = report(vec![cell("a")]);
        let d = diff_reports(&old, &new, &DiffOptions::default());
        assert!(d.has_regressions());
        assert!(d
            .findings
            .iter()
            .any(|f| f.verdict == Verdict::MissingCell && f.id == "b"));
    }

    #[test]
    fn new_cell_is_informational_and_rendered() {
        let old = report(vec![cell("a")]);
        let new = report(vec![cell("a"), cell("ONLINE/new")]);
        let d = diff_reports(&old, &new, &DiffOptions::default());
        assert!(!d.has_regressions());
        assert_eq!(d.new_cells(), 1);
        let f = d
            .findings
            .iter()
            .find(|f| f.verdict == Verdict::NewCell)
            .unwrap();
        assert_eq!(f.id, "ONLINE/new");
        assert_eq!(f.metric, "wall_s");
        assert_eq!(f.new, 2.0, "headline measurement surfaced");
        let md = d.markdown();
        assert!(md.contains("NEW CELL"), "{md}");
        assert!(md.contains("1 new cell(s)"), "{md}");
    }

    #[test]
    fn regret_increase_is_a_regression_decrease_an_improvement() {
        let old = report(vec![cell("a")]);
        let mut worse = cell("a");
        worse.total_regret *= 1.10;
        let d = diff_reports(&old, &report(vec![worse]), &DiffOptions::default());
        assert!(d.has_regressions());
        assert_eq!(d.findings[0].metric, "total_regret");

        let mut better = cell("a");
        better.total_regret *= 0.5;
        let d = diff_reports(&old, &report(vec![better]), &DiffOptions::default());
        assert!(!d.has_regressions());
        assert_eq!(d.findings[0].verdict, Verdict::Improvement);
    }

    #[test]
    fn deterministic_drift_is_reported_but_not_fatal() {
        let old = report(vec![cell("a")]);
        let mut drifted = cell("a");
        drifted.theta += 1;
        drifted.total_seeds += 2;
        let d = diff_reports(&old, &report(vec![drifted]), &DiffOptions::default());
        assert!(!d.has_regressions());
        assert_eq!(
            d.findings
                .iter()
                .filter(|f| f.verdict == Verdict::Drift)
                .count(),
            2
        );
    }

    #[test]
    fn memory_regression_flagged_above_floor() {
        let old = report(vec![cell("a")]);
        let mut fat = cell("a");
        fat.memory_bytes = (fat.memory_bytes as f64 * 1.5) as usize;
        let d = diff_reports(&old, &report(vec![fat]), &DiffOptions::default());
        assert!(d.has_regressions());

        // Below the floor: ignored.
        let mut tiny = cell("a");
        tiny.memory_bytes = 1000;
        let old = report(vec![tiny.clone()]);
        tiny.memory_bytes = 500_000;
        let d = diff_reports(&old, &report(vec![tiny]), &DiffOptions::default());
        assert!(!d.has_regressions());
    }

    #[test]
    fn bytes_per_posting_gates_like_memory_but_cross_machine() {
        // Layout bloat beyond the memory tolerance fails the gate even
        // though the ratio rides in the deterministic payload.
        let old = report(vec![cell("a")]);
        let mut fat = cell("a");
        fat.bytes_per_posting *= 1.5;
        let d = diff_reports(&old, &report(vec![fat]), &DiffOptions::default());
        assert!(d.has_regressions());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "bytes_per_posting" && f.verdict == Verdict::Regression));

        // A leaner layout is an improvement, not a failure.
        let mut lean = cell("a");
        lean.bytes_per_posting *= 0.6;
        let d = diff_reports(&old, &report(vec![lean]), &DiffOptions::default());
        assert!(!d.has_regressions());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "bytes_per_posting" && f.verdict == Verdict::Improvement));

        // Pre-v5 baselines decode the field as 0: its first appearance
        // is informational drift, never a regression.
        let mut prev5 = cell("a");
        prev5.bytes_per_posting = 0.0;
        prev5.legacy_bytes_per_posting = 0.0;
        let old = report(vec![prev5]);
        let d = diff_reports(&old, &report(vec![cell("a")]), &DiffOptions::default());
        assert!(!d.has_regressions(), "{:?}", d.findings);
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "bytes_per_posting" && f.verdict == Verdict::Drift));
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "legacy_bytes_per_posting" && f.verdict == Verdict::Drift));
    }

    #[test]
    fn peak_rss_gated_at_run_level_only() {
        // One early cell's high-water mark inflating later cells must not
        // produce per-cell findings; only the run maximum is compared.
        let old = report(vec![cell("a"), cell("b")]);
        let mut new = report(vec![cell("a"), cell("b")]);
        // Later cell inherits a big early HWM: identical run max ⇒ clean.
        new.cells[0].peak_rss_bytes = 64 << 20;
        new.cells[1].peak_rss_bytes = 64 << 20;
        let d = diff_reports(&old, &new, &DiffOptions::default());
        assert!(!d.has_regressions());

        // Run max actually growing 2× is a single run-level regression.
        new.cells[1].peak_rss_bytes = 128 << 20;
        let d = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(d.regressions(), 1);
        let f = d
            .findings
            .iter()
            .find(|f| f.metric == "peak_rss_bytes")
            .unwrap();
        assert_eq!(f.id, "(run)");
        assert_eq!(f.verdict, Verdict::Regression);

        // Partial joins (filtered run) skip the run-level check entirely.
        let filtered = report(vec![new.cells[1].clone()]);
        let d = diff_reports(&old, &filtered, &DiffOptions::default());
        assert!(!d.findings.iter().any(|f| f.metric == "peak_rss_bytes"));
    }

    #[test]
    fn serving_metrics_gate_online_cells() {
        let mut online = cell("ONLINE/a");
        online.latency_p50_us = 5_000.0;
        online.latency_p95_us = 12_000.0;
        online.latency_p99_us = 20_000.0;
        online.events_per_s = 150.0;
        let old = report(vec![online.clone()]);

        // Tail-latency blowup with wall_s unchanged must be flagged.
        let mut slow = online.clone();
        slow.latency_p99_us = 60_000.0;
        let d = diff_reports(&old, &report(vec![slow]), &DiffOptions::default());
        assert!(d.has_regressions());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "latency_p99_us" && f.verdict == Verdict::Regression));

        // Throughput gates in the opposite direction: a drop fails…
        let mut throttled = online.clone();
        throttled.events_per_s = 90.0;
        let d = diff_reports(&old, &report(vec![throttled]), &DiffOptions::default());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "events_per_s" && f.verdict == Verdict::Regression));
        // …a rise is an improvement.
        let mut faster = online.clone();
        faster.events_per_s = 300.0;
        let d = diff_reports(&old, &report(vec![faster]), &DiffOptions::default());
        assert!(!d.has_regressions());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "events_per_s" && f.verdict == Verdict::Improvement));

        // Sub-millisecond absolute movement is noise, not a finding.
        let mut jitter = online.clone();
        jitter.latency_p50_us = 5_800.0; // +16% but under the 1 ms slack
        let d = diff_reports(&old, &report(vec![jitter]), &DiffOptions::default());
        assert!(!d.has_regressions());

        // Batch cells (all-zero serving metrics) never produce findings.
        let batch_old = report(vec![cell("b")]);
        let d = diff_reports(
            &batch_old,
            &report(vec![cell("b")]),
            &DiffOptions::default(),
        );
        assert!(d.findings.is_empty());
    }

    #[test]
    fn read_path_metrics_gate_serving_cells() {
        let mut serving = cell("SERVING/a");
        serving.read_p99_us = 2_000.0;
        serving.reads_per_s = 8_000.0;
        serving.shed_rate = 0.2;
        let old = report(vec![serving.clone()]);

        // Read-path p99 blowup is a regression on its own.
        let mut slow = serving.clone();
        slow.read_p99_us = 9_000.0;
        let d = diff_reports(&old, &report(vec![slow]), &DiffOptions::default());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "read_p99_us" && f.verdict == Verdict::Regression));

        // Reader throughput gates inverted.
        let mut throttled = serving.clone();
        throttled.reads_per_s = 4_000.0;
        let d = diff_reports(&old, &report(vec![throttled]), &DiffOptions::default());
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "reads_per_s" && f.verdict == Verdict::Regression));

        // Shed rate is recorded, never gated.
        let mut sheddy = serving.clone();
        sheddy.shed_rate = 0.9;
        let d = diff_reports(&old, &report(vec![sheddy]), &DiffOptions::default());
        assert!(!d.has_regressions(), "{:?}", d.findings);
    }

    #[test]
    fn times_skipped_across_different_machines() {
        let old = report(vec![cell("a")]);
        let mut new = report(vec![{
            let mut c = cell("a");
            c.wall_s *= 10.0; // massive "slowdown"…
            c
        }]);
        new.env.cpus = 16; // …but measured on different hardware
        let d = diff_reports(&old, &new, &DiffOptions::default());
        assert!(!d.times_compared);
        assert!(!d.has_regressions(), "cross-machine times must not gate");
        assert!(d.markdown().contains("wall-clock skipped"));

        // force_time overrides the gate.
        let opts = DiffOptions {
            force_time: true,
            ..DiffOptions::default()
        };
        let d = diff_reports(&old, &new, &opts);
        assert!(d.has_regressions());
    }
}
