//! Baseline regression gate: compares two `BENCH_*.json` artifacts and
//! exits non-zero when the new one regresses, printing a markdown table.
//!
//! ```text
//! cargo run -p tirm_bench --bin bench_diff --release -- \
//!     baselines/BENCH_quick.json target/experiments/BENCH_<sha>.json
//! ```
//!
//! Exit codes: `0` no regressions, `1` regressions found, `2` usage or
//! decode error. Wall-clock metrics are only compared when both artifacts
//! were measured on the same machine class (identical env fingerprints) —
//! pass `--force-time` to compare anyway. Deterministic metrics (θ,
//! seeds, regret, memory accounting) are always compared.
//!
//! Flags: `--time-tol F` (default 0.15), `--min-time-s F` (default 0.05),
//! `--time-slack-s F` (default 0.1), `--mem-tol F` (default 0.25),
//! `--regret-tol F` (default 0.02), `--force-time`.

use std::path::Path;
use std::process::ExitCode;
use tirm_bench::diff::{diff_reports, DiffOptions};
use tirm_bench::schema::BenchReport;

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_diff OLD.json NEW.json [--time-tol F] [--min-time-s F] \
         [--time-slack-s F] [--mem-tol F] [--regret-tol F] [--force-time]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut opts = DiffOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let float_flag =
            |target: &mut f64, name: &str, raw: Option<String>| -> Result<(), String> {
                match raw.and_then(|s| s.parse::<f64>().ok()) {
                    Some(v) if v >= 0.0 => {
                        *target = v;
                        Ok(())
                    }
                    _ => Err(format!("{name} expects a non-negative float")),
                }
            };
        match arg.as_str() {
            "--time-tol" => {
                if let Err(e) = float_flag(&mut opts.time_rel_tol, "--time-tol", args.next()) {
                    return usage(&e);
                }
            }
            "--min-time-s" => {
                if let Err(e) = float_flag(&mut opts.time_min_s, "--min-time-s", args.next()) {
                    return usage(&e);
                }
            }
            "--time-slack-s" => {
                if let Err(e) =
                    float_flag(&mut opts.time_abs_slack_s, "--time-slack-s", args.next())
                {
                    return usage(&e);
                }
            }
            "--mem-tol" => {
                if let Err(e) = float_flag(&mut opts.mem_rel_tol, "--mem-tol", args.next()) {
                    return usage(&e);
                }
            }
            "--regret-tol" => {
                if let Err(e) = float_flag(&mut opts.regret_rel_tol, "--regret-tol", args.next()) {
                    return usage(&e);
                }
            }
            "--force-time" => opts.force_time = true,
            other if other.starts_with("--") => return usage(&format!("unknown flag {other:?}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return usage("expected exactly two artifact paths");
    }

    let load = |p: &str| -> Result<BenchReport, String> {
        BenchReport::load(Path::new(p)).map_err(|e| format!("{p}: {e}"))
    };
    let (old, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return usage(&e),
    };
    if old.schema_version != new.schema_version {
        // Loadable ⇒ comparable: newer schema versions only add fields,
        // which the decoder defaults when absent (e.g. a v1 baseline has
        // no ingestion timings — they read as 0 and are never gated on).
        eprintln!(
            "note: comparing across schema versions ({} vs {}); \
             fields absent from the older artifact default to 0",
            old.schema_version, new.schema_version
        );
    }

    println!(
        "### bench_diff: `{}` ({}) → `{}` ({})\n",
        old.git_sha, old.tier, new.git_sha, new.tier
    );
    let d = diff_reports(&old, &new, &opts);
    println!("{}", d.markdown());

    if d.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
