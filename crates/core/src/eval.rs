//! Ground-truth evaluation of allocations by Monte-Carlo simulation.
//!
//! §6 of the paper: "For all algorithms, we evaluate the final regret of
//! their output seed sets using Monte Carlo simulations (10K runs) for
//! neutral, fair, and accurate comparisons." Ads propagate independently,
//! so evaluation runs each ad's TIC-CTP cascade separately and in parallel.
//!
//! [`evaluate_rr`] offers a second estimator built on the RR-set sampling
//! engine: by Lemma 2 / Theorem 5, `σ_ctp(S) = n/θ · Σ_R (1 − Π_{v∈S∩R}
//! (1 − δ(v)))`, which is exactly [`WeightedRrCollection::deficit`] after
//! decaying every chosen seed by its CTP. It shares the
//! [`ParallelSampler`] hot path with TIM/TIRM, so evaluation scales with
//! cores too.

use crate::allocation::Allocation;
use crate::problem::ProblemInstance;
use crate::regret::RegretReport;
use serde::Serialize;
use tirm_diffusion::mc_spread_parallel;
use tirm_rrset::{ParallelSampler, RrSampler, SamplingConfig, WeightedRrCollection};

/// Result of evaluating an allocation.
#[derive(Clone, Debug, Serialize)]
pub struct Evaluation {
    /// MC-estimated expected clicks `σ_i(S_i)` per ad.
    pub spreads: Vec<f64>,
    /// MC-estimated expected revenue `Π_i(S_i) = cpe(i)·σ_i(S_i)`.
    pub revenues: Vec<f64>,
    /// Regret decomposition at the instance's λ and boosted budgets.
    pub regret: RegretReport,
}

/// Default number of evaluation cascades (the paper's 10K).
pub const DEFAULT_EVAL_RUNS: usize = 10_000;

/// Evaluates `alloc` with `runs` Monte-Carlo cascades per ad.
///
/// Deterministic for fixed inputs; cascades for ad `i` use stream
/// `seed + i`. Set `threads` to 1 for strictly sequential evaluation.
pub fn evaluate(
    problem: &ProblemInstance<'_>,
    alloc: &Allocation,
    runs: usize,
    seed: u64,
    threads: usize,
) -> Evaluation {
    assert_eq!(alloc.num_ads(), problem.num_ads());
    let h = problem.num_ads();
    let mut spreads = Vec::with_capacity(h);
    for i in 0..h {
        let seeds = alloc.seeds(i);
        let spread = if seeds.is_empty() {
            0.0
        } else {
            mc_spread_parallel(
                problem.graph,
                &problem.edge_probs[i],
                seeds,
                Some(problem.ctp.ad(i)),
                runs,
                seed.wrapping_add(i as u64),
                threads,
            )
        };
        spreads.push(spread);
    }
    assemble(problem, alloc, spreads)
}

/// Turns per-ad spread estimates into the full [`Evaluation`] (revenues,
/// regret decomposition) — shared by every spread estimator so the
/// accounting cannot drift between them.
fn assemble(problem: &ProblemInstance<'_>, alloc: &Allocation, spreads: Vec<f64>) -> Evaluation {
    let h = problem.num_ads();
    let revenues: Vec<f64> = spreads
        .iter()
        .enumerate()
        .map(|(i, s)| s * problem.ads[i].cpe)
        .collect();
    let regret = RegretReport::new(
        (0..h).map(|i| (problem.target_budget(i), revenues[i], alloc.seeds(i).len())),
        problem.lambda,
    );
    Evaluation {
        spreads,
        revenues,
        regret,
    }
}

/// Evaluates `alloc` through the RR-set sampling engine: `theta` RR sets
/// per non-empty ad, drawn by a [`ParallelSampler`] under `config`
/// (`config.seed + ad_index` per ad), with per-seed CTP decay providing
/// the unbiased `σ_ctp` estimate. Typically far cheaper than Monte-Carlo
/// forward simulation at equal accuracy on large graphs, and deterministic
/// for a fixed `(seed, threads)` configuration.
pub fn evaluate_rr(
    problem: &ProblemInstance<'_>,
    alloc: &Allocation,
    theta: usize,
    config: SamplingConfig,
) -> Evaluation {
    assert_eq!(alloc.num_ads(), problem.num_ads());
    assert!(theta > 0);
    let h = problem.num_ads();
    let n = problem.num_nodes();
    let mut spreads = Vec::with_capacity(h);
    for i in 0..h {
        let seeds = alloc.seeds(i);
        if seeds.is_empty() {
            spreads.push(0.0);
            continue;
        }
        let sampler = RrSampler::new(problem.graph, &problem.edge_probs[i]);
        // Domain-separate evaluation streams from TIRM's per-ad training
        // engines (which use seed + i): reusing the allocation run's seed
        // here must yield an *independent* estimate, not a replay of the
        // very RR sets the greedy optimized over.
        const EVAL_SEED_SALT: u64 = 0xE7A1_5EED;
        let mut engine = ParallelSampler::new(
            SamplingConfig {
                seed: (config.seed ^ EVAL_SEED_SALT).wrapping_add(i as u64),
                ..config
            },
            n,
        );
        let mut coll = WeightedRrCollection::new(n);
        let drawn = engine.sample_into(&sampler, theta, &mut coll);
        for &v in seeds {
            coll.decay_node(v, problem.ctp.get(v, i) as f64);
        }
        spreads.push(n as f64 * coll.deficit() / drawn.max(1) as f64);
    }
    assemble(problem, alloc, spreads)
}

/// Number of worker threads to use for evaluation: respects the
/// `TIRM_THREADS` environment variable, defaulting to the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TIRM_THREADS") {
        if let Ok(t) = v.parse::<usize>() {
            return t.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, Attention};
    use tirm_graph::generators;
    use tirm_topics::{CtpTable, TopicDist};

    #[test]
    fn evaluation_matches_closed_form_star() {
        // Star hub, p = 0.5, δ = 1, cpe = 2: Π({hub}) = 2·(1 + 10·0.5) = 12.
        let g = generators::star(11);
        let ads = vec![Advertiser::new(10.0, 2.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.5f32; g.num_edges()]];
        let ctp = CtpTable::constant(11, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut a = Allocation::empty(1, 11);
        a.assign(0, 0);
        let ev = evaluate(&p, &a, 40_000, 7, 2);
        assert!((ev.revenues[0] - 12.0).abs() < 0.2, "{}", ev.revenues[0]);
        assert!((ev.regret.total() - 2.0).abs() < 0.25);
    }

    #[test]
    fn empty_allocation_regret_is_total_budget() {
        let g = generators::path(5);
        let ads = vec![
            Advertiser::new(3.0, 1.0, TopicDist::single(1, 0)),
            Advertiser::new(4.0, 1.0, TopicDist::single(1, 0)),
        ];
        let probs = vec![vec![0.1f32; g.num_edges()]; 2];
        let ctp = CtpTable::constant(5, 2, 0.5);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let a = Allocation::empty(2, 5);
        let ev = evaluate(&p, &a, 100, 1, 1);
        assert_eq!(ev.regret.total(), 7.0);
        assert_eq!(ev.spreads, vec![0.0, 0.0]);
    }

    #[test]
    fn rr_evaluation_agrees_with_mc_and_closed_form() {
        // Same star as above: Π({hub}) = 2·(1 + 10·0.5) = 12, at every
        // thread count, deterministically per (seed, threads).
        let g = generators::star(11);
        let ads = vec![Advertiser::new(10.0, 2.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.5f32; g.num_edges()]];
        let ctp = CtpTable::constant(11, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut a = Allocation::empty(1, 11);
        a.assign(0, 0);
        for threads in [1usize, 4] {
            let cfg = SamplingConfig::new(threads, 7);
            let ev = evaluate_rr(&p, &a, 60_000, cfg);
            assert!(
                (ev.revenues[0] - 12.0).abs() < 0.3,
                "threads={threads}: {}",
                ev.revenues[0]
            );
            let again = evaluate_rr(&p, &a, 60_000, cfg);
            assert_eq!(ev.revenues[0], again.revenues[0], "deterministic");
        }
    }

    #[test]
    fn rr_evaluation_scales_by_seed_ctp() {
        // Hub CTP 0.5 halves the hub's click contribution (Lemma 2):
        // σ_ctp = 0.5·(1 + 20·0.3) = 3.5 on the 21-node star.
        let g = generators::star(21);
        let ads = vec![Advertiser::new(10.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.3f32; g.num_edges()]];
        let mut hub_ctp = vec![1.0f32; 21];
        hub_ctp[0] = 0.5;
        let ctp = CtpTable::direct(vec![hub_ctp]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut a = Allocation::empty(1, 21);
        a.assign(0, 0);
        let ev = evaluate_rr(&p, &a, 60_000, SamplingConfig::new(2, 3));
        assert!((ev.spreads[0] - 3.5).abs() < 0.15, "{}", ev.spreads[0]);
    }

    #[test]
    fn beta_moves_the_target() {
        let g = generators::path(3);
        let ads = vec![Advertiser::new(10.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.0f32; g.num_edges()]];
        let ctp = CtpTable::constant(3, 1, 1.0);
        let p =
            ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0).with_beta(0.5);
        let mut a = Allocation::empty(1, 3);
        a.assign(0, 0);
        let ev = evaluate(&p, &a, 100, 1, 1);
        // Revenue = 1 (seed always clicks), target = 15 → regret 14.
        assert!((ev.regret.total() - 14.0).abs() < 1e-9);
    }
}
