//! # tirm-topics
//!
//! The topic-model substrate of the paper (§3): ad topic distributions
//! `γ_i`, per-topic arc influence probabilities `p^z_{u,v}`, the TIC
//! projection `p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}` (Eq. 1), per-topic
//! seed click probabilities `p^z_{H,u}` with their projected
//! click-through probabilities `δ(u,i)`, and the probability generators
//! used by the evaluation (§6): Weighted-Cascade, exponential
//! inverse-transform, trivalency and topic-concentrated samplers.
//!
//! ```
//! use tirm_topics::{TopicDist, TopicEdgeProbs};
//!
//! // 3 arcs, 2 topics.
//! let mut tp = TopicEdgeProbs::new(3, 2);
//! tp.set(0, 0, 0.5);
//! tp.set(0, 1, 0.1);
//! let ad = TopicDist::new(vec![0.75, 0.25]).unwrap();
//! let projected = tp.project(&ad); // Eq. 1
//! assert!((projected[0] - 0.4).abs() < 1e-6);
//! ```

mod ctp;
mod dist;
mod edge_probs;
pub mod genprob;

pub use ctp::{CtpTable, NodeTopicProbs};
pub use dist::{TopicDist, TopicError};
pub use edge_probs::TopicEdgeProbs;
