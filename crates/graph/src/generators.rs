//! Deterministic random-graph generators.
//!
//! All generators take an explicit seed and produce the same graph for the
//! same `(parameters, seed)` pair on every platform. They are used by
//! `tirm-workloads` to synthesise networks with the degree structure of the
//! paper's four data sets (see DESIGN.md §3 for the substitution argument).

use crate::builder::{build_from_stream, GraphBuilder};
use crate::csr::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// G(n, m) Erdős–Rényi digraph: `m` distinct arcs drawn uniformly at random
/// (self-loops rejected). Panics if `m` exceeds `n·(n−1)`.
///
/// This is the one generator still routed through the buffering
/// [`GraphBuilder`]: its exact-`m` contract needs the deduplicated edge
/// count mid-generation to decide how much to oversample, which a
/// counting pass cannot provide. It is only used at test scales.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> DiGraph {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        (m as u128) <= (n as u128) * (n as u128 - 1),
        "more arcs requested than the simple digraph can hold"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m + m / 8);
    // Draw with rejection; duplicates are removed in build(), so oversample
    // slightly and retry until the final graph has m arcs (cheap for the
    // sparse regimes used here).
    let mut g;
    let mut extra = 0usize;
    loop {
        let mut bb = b.clone();
        for _ in 0..(m + extra) {
            let u = rng.gen_range(0..n) as NodeId;
            let mut v = rng.gen_range(0..n) as NodeId;
            while v == u {
                v = rng.gen_range(0..n) as NodeId;
            }
            bb.add_edge(u, v);
        }
        g = bb.build();
        if g.num_edges() >= m {
            break;
        }
        extra += (m - g.num_edges()) * 2 + 8;
    }
    if g.num_edges() > m {
        // Trim deterministically: keep the first m arcs in canonical order.
        let keep: Vec<(NodeId, NodeId)> = g.edges().take(m).map(|(_, u, v)| (u, v)).collect();
        b.ensure_nodes(n);
        for (u, v) in keep {
            b.add_edge(u, v);
        }
        g = b.build();
    }
    g
}

/// Directed preferential-attachment (Barabási–Albert flavoured) generator.
///
/// Nodes arrive one at a time; each new node picks `out_per_node` distinct
/// existing targets with probability proportional to `in_degree + 1`
/// (smoothing keeps early nodes reachable), producing a heavy-tailed
/// in-degree distribution like real follower graphs. A fraction
/// `reciprocity` of arcs are reciprocated, mimicking the mutual-follow edges
/// dominating FLIXSTER/EPINIONS.
pub fn preferential_attachment(
    n: usize,
    out_per_node: usize,
    reciprocity: f64,
    seed: u64,
) -> DiGraph {
    assert!(n >= 2);
    assert!(out_per_node >= 1);
    assert!((0.0..=1.0).contains(&reciprocity));
    // Streaming build: the seeded simulation replays identically on both
    // passes, so only the urn (4 bytes per emitted arc) is held — never an
    // edge list.
    build_from_stream(n, |sink| {
        preferential_attachment_arcs(n, out_per_node, reciprocity, seed, sink)
    })
}

/// One deterministic run of the preferential-attachment simulation,
/// emitting every arc into `sink` (both [`build_from_stream`] passes call
/// this with the same seed).
fn preferential_attachment_arcs(
    n: usize,
    out_per_node: usize,
    reciprocity: f64,
    seed: u64,
    sink: &mut dyn FnMut(NodeId, NodeId),
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Repeated-node list implements preferential attachment in O(1) per draw.
    let mut urn: Vec<NodeId> = Vec::with_capacity(n * (out_per_node + 1));
    let seed_core = out_per_node.min(n - 1).max(1);
    for u in 0..=seed_core as NodeId {
        urn.push(u);
    }
    // Small seed clique so the urn is non-trivial.
    for u in 0..=seed_core as NodeId {
        for v in 0..=seed_core as NodeId {
            if u != v {
                sink(u, v);
                urn.push(v);
            }
        }
    }
    for u in (seed_core + 1)..n {
        let u = u as NodeId;
        let mut picked: Vec<NodeId> = Vec::with_capacity(out_per_node);
        let mut guard = 0;
        while picked.len() < out_per_node && guard < 64 * out_per_node {
            guard += 1;
            let cand = urn[rng.gen_range(0..urn.len())];
            if cand != u && !picked.contains(&cand) {
                picked.push(cand);
            }
        }
        for v in picked {
            sink(u, v);
            urn.push(v);
            if rng.gen_bool(reciprocity) {
                sink(v, u);
                urn.push(u);
            }
        }
        urn.push(u);
    }
}

/// Watts–Strogatz small-world digraph: ring lattice with `k` forward
/// neighbours per node, each arc rewired to a random target with probability
/// `beta`. Gives the high clustering + short paths typical of co-authorship
/// graphs (used for the DBLP-like workload, direction doubled by the caller).
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> DiGraph {
    assert!(n > k + 1, "ring lattice needs n > k+1");
    assert!((0.0..=1.0).contains(&beta));
    build_from_stream(n, |sink| {
        let mut rng = SmallRng::seed_from_u64(seed);
        for u in 0..n {
            for j in 1..=k {
                let mut v = ((u + j) % n) as NodeId;
                if rng.gen_bool(beta) {
                    v = rng.gen_range(0..n) as NodeId;
                    let mut guard = 0;
                    while (v as usize == u) && guard < 16 {
                        v = rng.gen_range(0..n) as NodeId;
                        guard += 1;
                    }
                    if v as usize == u {
                        continue;
                    }
                }
                sink(u as NodeId, v);
            }
        }
    })
}

/// "Copying-model" power-law digraph (Kumar et al. flavour): each new node
/// copies the out-neighbourhood of a random prototype with probability
/// `1 - alpha` per slot, otherwise links uniformly. Produces power-law in-
/// and out-degrees simultaneously — a good stand-in for LIVEJOURNAL's shape.
pub fn copying_model(n: usize, out_per_node: usize, alpha: f64, seed: u64) -> DiGraph {
    assert!(n >= 4);
    assert!((0.0..=1.0).contains(&alpha));
    let mut rng = SmallRng::seed_from_u64(seed);
    // The model is self-referential — each node copies from an earlier
    // node's finished row — so the adjacency must be materialised during
    // generation. A flat slot array + row offsets costs 4 bytes per arc
    // (vs ~24 bytes of `Vec` header per node plus allocator slack for a
    // `Vec<Vec<_>>`), and is generated once then replayed into both
    // streaming-build passes.
    let mut row_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    row_offsets.push(0);
    let mut slots: Vec<NodeId> = Vec::with_capacity(n * out_per_node);
    let core = (out_per_node + 1).min(n);
    for u in 0..core {
        for v in 0..core {
            if v != u {
                slots.push(v as NodeId);
            }
        }
        row_offsets.push(slots.len() as u32);
    }
    for u in core..n {
        let proto = rng.gen_range(0..u);
        let proto_lo = row_offsets[proto] as usize;
        let proto_len = row_offsets[proto + 1] as usize - proto_lo;
        let row_lo = slots.len();
        for slot in 0..out_per_node {
            let v = if proto_len > 0 && rng.gen::<f64>() > alpha {
                slots[proto_lo + slot % proto_len]
            } else {
                rng.gen_range(0..u) as NodeId
            };
            if v as usize != u && !slots[row_lo..].contains(&v) {
                slots.push(v);
            }
        }
        row_offsets.push(slots.len() as u32);
    }
    build_from_stream(n, |sink| {
        for u in 0..n {
            let lo = row_offsets[u] as usize;
            let hi = row_offsets[u + 1] as usize;
            for &v in &slots[lo..hi] {
                sink(u as NodeId, v);
            }
        }
    })
}

/// Complete digraph on `n` nodes (used by the "practical considerations"
/// extreme-case tests in §4.1 of the paper).
pub fn clique(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1));
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Directed star: hub `0` points at `1..n`.
pub fn star(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n as NodeId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Directed path `0 → 1 → … → n−1`.
pub fn path(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 0..n.saturating_sub(1) {
        b.add_edge(u as NodeId, (u + 1) as NodeId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = erdos_renyi(100, 500, 7);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
        g.validate().unwrap();
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(50, 200, 42);
        let b = erdos_renyi(50, 200, 42);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        let c = erdos_renyi(50, 200, 43);
        let ec: Vec<_> = c.edges().collect();
        assert_ne!(ea, ec, "different seeds should differ");
    }

    #[test]
    fn preferential_attachment_heavy_tail() {
        let g = preferential_attachment(2000, 5, 0.3, 9);
        assert_eq!(g.num_nodes(), 2000);
        g.validate().unwrap();
        let max_in = (0..2000).map(|v| g.in_degree(v as NodeId)).max().unwrap();
        let mean_in = g.num_edges() as f64 / 2000.0;
        assert!(
            max_in as f64 > 8.0 * mean_in,
            "expected a hub: max {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn watts_strogatz_degree_regularity() {
        let g = watts_strogatz(200, 4, 0.1, 3);
        g.validate().unwrap();
        // Out-degree stays close to k (rewiring can only merge duplicates).
        let mean_out = g.num_edges() as f64 / 200.0;
        assert!(mean_out > 3.0 && mean_out <= 4.0, "mean out {mean_out}");
    }

    #[test]
    fn copying_model_builds_and_validates() {
        let g = copying_model(1000, 6, 0.4, 11);
        assert_eq!(g.num_nodes(), 1000);
        g.validate().unwrap();
        assert!(g.num_edges() > 3000);
    }

    #[test]
    fn clique_star_path_shapes() {
        let g = clique(5);
        assert_eq!(g.num_edges(), 20);
        let s = star(6);
        assert_eq!(s.out_degree(0), 5);
        assert_eq!(s.in_degree(0), 0);
        let p = path(4);
        assert_eq!(p.num_edges(), 3);
        assert!(p.has_edge(2, 3));
    }
}
