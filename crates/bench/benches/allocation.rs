//! Micro-benchmark: end-to-end allocation cost of each algorithm on a
//! small quality workload (the per-cell cost behind Figs. 3–4).

use criterion::{criterion_group, criterion_main, Criterion};
use tirm_bench::{tirm_options, AlgoKind, QualityWorkload};
use tirm_core::tirm_allocate;
use tirm_workloads::DatasetKind;

fn bench_allocation(c: &mut Criterion) {
    std::env::set_var("TIRM_SCALE", "0.15");
    let w = QualityWorkload::new(DatasetKind::Flixster, 0xbe9c);
    std::env::remove_var("TIRM_SCALE");

    let mut group = c.benchmark_group("allocation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("myopic", |b| {
        let p = w.problem(1, 0.0);
        b.iter(|| AlgoKind::Myopic.run(&p, true, 1).0.total_seeds())
    });
    group.bench_function("myopic_plus", |b| {
        let p = w.problem(1, 0.0);
        b.iter(|| AlgoKind::MyopicPlus.run(&p, true, 1).0.total_seeds())
    });
    group.bench_function("tirm", |b| {
        let p = w.problem(1, 0.0);
        b.iter(|| tirm_allocate(&p, tirm_options(true, 1)).0.total_seeds())
    });
    group.bench_function("greedy_irie", |b| {
        let p = w.problem(1, 0.0);
        b.iter(|| AlgoKind::GreedyIrie.run(&p, true, 1).0.total_seeds())
    });
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
