//! TIM sample-size machinery (Tang et al., SIGMOD 2014 — reviewed in §5.1
//! of the paper) reimplemented from its defining formulas:
//!
//! * **KPT estimation** — a lower bound on `OPT_s` obtained by sampling
//!   RR sets in geometrically growing batches and testing the statistic
//!   `κ(R) = 1 − (1 − w(R)/m)^s`, where `w(R)` is the number of arcs
//!   entering nodes of `R`.
//! * **`L(s, ε)` / θ** — the paper's Eq. 5: with
//!   `λ(s) = (8 + 2ε)·n·(ℓ·ln n + ln C(n,s) + ln 2)/ε²`, any
//!   `θ ≥ λ(s)/OPT_s` gives the spread-estimation guarantee of
//!   Proposition 2 (and Theorem 6 for TIRM's growing collections).
//! * **`tim_select`** — complete TIM: estimate KPT, sample θ sets, pick
//!   `s` seeds by greedy max-cover. Used to validate the machinery and as
//!   the influence-maximization substrate baseline.

use crate::collection::RrCollection;
use crate::fastpath::FastPath;
use crate::parallel::{ParallelSampler, SamplingConfig};
use crate::sampler::RrSampler;
use crate::special::ln_choose;
use tirm_graph::NodeId;

/// Computes `λ(s)` and `θ(s, opt_lb)` for a fixed graph-size/accuracy
/// configuration.
#[derive(Clone, Debug)]
pub struct SampleBound {
    n: usize,
    /// Accuracy parameter ε (the paper uses 0.1 for quality runs, 0.2 for
    /// scalability runs).
    pub eps: f64,
    /// Confidence parameter ℓ (failure probability `n^{-ℓ}`).
    pub ell: f64,
    /// Hard cap on θ so adversarial inputs cannot exhaust memory; `None`
    /// disables the cap. Capping is recorded by [`SampleBound::theta`]'s
    /// second return component.
    pub max_theta: Option<usize>,
}

impl SampleBound {
    /// Standard configuration (`ℓ = 1`).
    pub fn new(n: usize, eps: f64) -> Self {
        assert!(n > 1 && eps > 0.0 && eps < 1.0);
        SampleBound {
            n,
            eps,
            ell: 1.0,
            max_theta: Some(20_000_000),
        }
    }

    /// `λ(s) = (8 + 2ε) n (ℓ ln n + ln C(n,s) + ln 2) / ε²` (Eq. 5
    /// numerator).
    pub fn lambda(&self, s: usize) -> f64 {
        let n = self.n as f64;
        (8.0 + 2.0 * self.eps)
            * n
            * (self.ell * n.ln() + ln_choose(self.n as u64, s as u64) + 2f64.ln())
            / (self.eps * self.eps)
    }

    /// Required RR-set count `θ = ⌈λ(s)/opt_lb⌉`, clamped to at least 1 and
    /// to `max_theta` when configured. Returns `(θ, was_capped)`.
    pub fn theta(&self, s: usize, opt_lb: f64) -> (usize, bool) {
        assert!(opt_lb >= 1.0, "OPT lower bound below 1 is impossible");
        let raw = (self.lambda(s) / opt_lb).ceil();
        let raw = if raw.is_finite() {
            raw as usize
        } else {
            usize::MAX
        };
        match self.max_theta {
            Some(cap) if raw > cap => (cap, true),
            _ => (raw.max(1), false),
        }
    }
}

/// Iterative KPT estimation with cached sample widths, so that re-querying
/// with a larger seed count `s` (TIRM grows `s_i` over time) reuses all
/// previously sampled sets. Estimation batches are drawn through a
/// [`ParallelSampler`], so the geometric rounds scale with cores; with
/// `threads = 1` the width sequence is identical to the old serial draw.
///
/// Because the width cache is always a prefix of one fixed per-seed
/// stream, [`KptEstimator::estimate`] is a *pure function of `s`* for a
/// given `(sampler, ell, config)` — the result never depends on which
/// estimates were asked for earlier. The online serving layer leans on
/// this: it detaches the width cache ([`KptEstimator::into_state`]) when
/// an allocation run ends and re-attaches it
/// ([`KptEstimator::from_state`]) on the next run, so repeated
/// re-allocations of a long-lived ad never redraw estimation samples yet
/// return bit-identical estimates.
pub struct KptEstimator<'a> {
    sampler: RrSampler<'a>,
    m: usize,
    ell: f64,
    /// `w(R)` of every estimation sample drawn so far.
    widths: Vec<u64>,
    engine: ParallelSampler,
    /// Sum of in-degrees per node, precomputed once.
    indeg: Vec<u32>,
}

impl<'a> KptEstimator<'a> {
    /// Creates a serial estimator drawing its own RR samples via `sampler`.
    pub fn new(sampler: RrSampler<'a>, ell: f64, seed: u64) -> Self {
        Self::with_config(sampler, ell, SamplingConfig::serial(seed))
    }

    /// Creates an estimator drawing its samples through a parallel engine
    /// with the given configuration. Any `max_theta` cap is ignored: the
    /// estimator's geometric rounds assume every requested width arrives,
    /// and a short-fill would corrupt the KPT statistic (θ caps are for
    /// collection memory, which estimation samples never occupy).
    pub fn with_config(sampler: RrSampler<'a>, ell: f64, config: SamplingConfig) -> Self {
        let g = sampler.graph();
        let indeg = (0..g.num_nodes() as NodeId)
            .map(|v| g.in_degree(v) as u32)
            .collect();
        let config = SamplingConfig {
            max_theta: None,
            ..config
        };
        KptEstimator {
            sampler,
            m: g.num_edges(),
            ell,
            widths: Vec::new(),
            engine: ParallelSampler::new(config, g.num_nodes()),
            indeg,
        }
    }

    /// Tops the width cache up to `target` samples (one engine batch).
    fn fill_widths(&mut self, target: usize, fast: Option<&FastPath>) {
        if self.widths.len() >= target {
            return;
        }
        let need = target - self.widths.len();
        let indeg = &self.indeg;
        let batch = self
            .engine
            .sample_map_with(&self.sampler, fast, need, |set| {
                set.iter().map(|&v| indeg[v as usize] as u64).sum::<u64>()
            });
        self.widths.extend(batch);
    }

    /// KPT lower bound on `OPT_s` (Tang et al. Algorithm 2). Always ≥ 1.
    ///
    /// Samples in geometric rounds `i = 1, 2, …, log₂(n) − 1`; in round `i`
    /// it uses `c_i = (6ℓ ln n + 6 ln log₂ n) · 2^i` samples and accepts as
    /// soon as the mean of `κ(R) = 1 − (1 − w(R)/m)^s` exceeds `2^{-i}`.
    pub fn estimate(&mut self, s: usize) -> f64 {
        self.estimate_with(s, None)
    }

    /// [`Self::estimate`], optionally drawing its batches through a
    /// precomputed [`FastPath`]. Bit-identical result either way — the
    /// fast route preserves the width stream exactly, so mixing plain
    /// and fast calls against one estimator is sound.
    pub fn estimate_with(&mut self, s: usize, fast: Option<&FastPath>) -> f64 {
        let n = self.sampler.graph().num_nodes();
        if self.m == 0 {
            return 1.0;
        }
        let log2n = (n as f64).log2();
        let rounds = log2n.floor() as i32 - 1;
        let base = 6.0 * self.ell * (n as f64).ln() + 6.0 * log2n.max(1.0).ln();
        for i in 1..=rounds.max(1) {
            let ci = (base * 2f64.powi(i)).ceil() as usize;
            self.fill_widths(ci, fast);
            let mut sum = 0.0f64;
            for &w in &self.widths[..ci] {
                let frac = (w as f64 / self.m as f64).min(1.0);
                sum += 1.0 - (1.0 - frac).powi(s as i32);
            }
            if sum / ci as f64 > 1.0 / 2f64.powi(i) {
                return (n as f64 * sum / (2.0 * ci as f64)).max(1.0);
            }
        }
        1.0
    }

    /// Number of estimation samples drawn so far (diagnostics).
    pub fn samples_used(&self) -> usize {
        self.widths.len()
    }

    /// Detaches the estimator's persistent capital — the width cache and
    /// the sampling-engine stream position — for storage by a long-lived
    /// owner across borrow scopes.
    pub fn into_state(self) -> KptState {
        KptState {
            widths: self.widths,
            engine: self.engine,
        }
    }

    /// Rebuilds an estimator around previously detached state. The
    /// sampler must project the same graph/probabilities and the state
    /// must come from an estimator with the same configuration, or the
    /// width stream would be inconsistent.
    pub fn from_state(sampler: RrSampler<'a>, ell: f64, state: KptState) -> Self {
        let g = sampler.graph();
        let indeg = (0..g.num_nodes() as NodeId)
            .map(|v| g.in_degree(v) as u32)
            .collect();
        KptEstimator {
            sampler,
            m: g.num_edges(),
            ell,
            widths: state.widths,
            engine: state.engine,
            indeg,
        }
    }
}

/// Detached [`KptEstimator`] capital: the cached sample widths plus the
/// estimation engine's stream position. Owning this (instead of the
/// estimator itself) avoids tying a long-lived structure to the graph
/// borrow inside `RrSampler`.
pub struct KptState {
    widths: Vec<u64>,
    engine: ParallelSampler,
}

impl KptState {
    /// Bytes held: the width cache plus the estimation engine's O(n)
    /// per-shard workspaces.
    pub fn memory_bytes(&self) -> usize {
        self.widths.capacity() * 8 + self.engine.memory_bytes()
    }

    /// The serializable view for checkpointing: the cached widths and
    /// the estimation engine's stream position.
    pub fn export_parts(&self) -> (&[u64], crate::parallel::SamplerState) {
        (&self.widths, self.engine.export_state())
    }

    /// Rebuilds detached KPT capital from checkpointed parts, over a
    /// graph with `num_nodes` nodes.
    pub fn from_parts(
        widths: Vec<u64>,
        engine: &crate::parallel::SamplerState,
        num_nodes: usize,
    ) -> Result<KptState, String> {
        Ok(KptState {
            widths,
            engine: ParallelSampler::from_state(engine, num_nodes)?,
        })
    }
}

/// Result of a full TIM run.
#[derive(Clone, Debug)]
pub struct TimResult {
    /// Chosen seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Coverage-based spread estimate `n · F_R(S)`.
    pub spread_estimate: f64,
    /// RR sets sampled in phase 2.
    pub theta: usize,
    /// KPT lower bound used.
    pub kpt: f64,
}

/// Complete TIM influence maximization: pick `s` seeds maximizing expected
/// spread under IC with arc probabilities `probs` (serial sampling).
pub fn tim_select(sampler: &RrSampler<'_>, s: usize, eps: f64, seed: u64) -> TimResult {
    tim_select_with(sampler, s, eps, SamplingConfig::serial(seed))
}

/// [`tim_select`] with an explicit sampling configuration: both the KPT
/// estimation batches and the θ-sample phase run through a
/// [`ParallelSampler`]. `threads = 1` reproduces [`tim_select`] exactly.
pub fn tim_select_with(
    sampler: &RrSampler<'_>,
    s: usize,
    eps: f64,
    config: SamplingConfig,
) -> TimResult {
    let g = sampler.graph();
    let n = g.num_nodes();
    let kpt_config = SamplingConfig {
        seed: config.seed ^ 0x9e37_79b9,
        ..config
    };
    let mut kpt_est = KptEstimator::with_config(*sampler, 1.0, kpt_config);
    let kpt = kpt_est.estimate(s);
    let mut bound = SampleBound::new(n, eps);
    if config.max_theta.is_some() {
        bound.max_theta = config.max_theta;
    }
    let (theta, _capped) = bound.theta(s, kpt);

    let mut coll = RrCollection::new(n);
    let mut engine = ParallelSampler::new(config, n);
    engine.sample_into(sampler, theta, &mut coll);
    let mut seeds = Vec::with_capacity(s);
    let mut covered_total = 0u64;
    for _ in 0..s {
        match coll.argmax_cov(|v| !seeds.contains(&v)) {
            Some((v, c)) => {
                covered_total += c as u64;
                coll.cover_node(v);
                seeds.push(v);
            }
            None => break,
        }
    }
    TimResult {
        seeds,
        spread_estimate: n as f64 * covered_total as f64 / theta as f64,
        theta,
        kpt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_diffusion::mc_spread;
    use tirm_graph::generators;

    #[test]
    fn lambda_grows_with_s_and_shrinks_with_eps() {
        let b1 = SampleBound::new(1000, 0.1);
        assert!(b1.lambda(10) > b1.lambda(1));
        let b2 = SampleBound::new(1000, 0.2);
        assert!(b2.lambda(10) < b1.lambda(10));
    }

    #[test]
    fn theta_caps_and_floors() {
        let mut b = SampleBound::new(100, 0.2);
        b.max_theta = Some(500);
        let (t, capped) = b.theta(5, 1.0);
        assert_eq!(t, 500);
        assert!(capped);
        let (t2, capped2) = b.theta(1, 1e12);
        assert_eq!(t2, 1);
        assert!(!capped2);
    }

    #[test]
    fn kpt_never_exceeds_opt_on_star() {
        // Star hub with p = 0.5, n = 101: OPT_1 = 1 + 100·0.5 = 51. KPT is
        // driven by *random*-seed spread, so on a star it is very loose
        // (the TIM paper's fallback of 1 is expected) — but it must stay a
        // valid lower bound.
        let g = generators::star(101);
        let probs = vec![0.5f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let mut est = KptEstimator::new(sampler, 1.0, 3);
        let kpt = est.estimate(1);
        assert!((1.0..=51.0 * 1.3).contains(&kpt), "KPT {kpt} out of range");
    }

    #[test]
    fn kpt_reasonably_tight_on_er() {
        // On an ER graph random seeds are representative, so KPT should be
        // a non-trivial fraction of the spread TIM's own seed achieves.
        let g = generators::erdos_renyi(500, 4000, 2);
        let probs = vec![0.15f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let mut est = KptEstimator::new(sampler, 1.0, 4);
        let kpt = est.estimate(10);
        let r = tim_select(&sampler, 10, 0.2, 8);
        let opt_proxy = mc_spread(&g, &probs, &r.seeds, None, 5_000, 1);
        assert!(kpt >= 1.0);
        assert!(
            kpt <= opt_proxy * 1.2,
            "KPT {kpt} exceeds achievable spread {opt_proxy}"
        );
        assert!(
            kpt >= opt_proxy / 50.0,
            "KPT {kpt} uselessly loose vs {opt_proxy}"
        );
    }

    #[test]
    fn kpt_ignores_max_theta_cap() {
        // A θ cap on the estimator's config must not short-fill the width
        // cache (that would panic in `estimate`) — caps guard collection
        // memory, which estimation samples never occupy.
        let g = generators::erdos_renyi(300, 1200, 2);
        let probs = vec![0.1f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let mut capped = SamplingConfig::new(2, 9);
        capped.max_theta = Some(10);
        let mut est = KptEstimator::with_config(sampler, 1.0, capped);
        let with_cap = est.estimate(5);
        let mut uncapped = KptEstimator::with_config(sampler, 1.0, SamplingConfig::new(2, 9));
        assert_eq!(with_cap, uncapped.estimate(5));
    }

    #[test]
    fn estimate_is_pure_in_s_and_state_round_trips() {
        let g = generators::erdos_renyi(300, 1500, 5);
        let probs = vec![0.1f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        // Purity: asking for s=5 after s=1 gives the same value as asking
        // for s=5 first (the width cache is a prefix of one fixed stream).
        let mut warmed = KptEstimator::new(sampler, 1.0, 9);
        let _ = warmed.estimate(1);
        let via_history = warmed.estimate(5);
        let mut fresh = KptEstimator::new(sampler, 1.0, 9);
        assert_eq!(fresh.estimate(5), via_history);
        // State round trip: detach + re-attach preserves estimates and
        // never redraws cached widths.
        let used = warmed.samples_used();
        let state = warmed.into_state();
        assert!(state.memory_bytes() >= used * 8);
        let mut back = KptEstimator::from_state(sampler, 1.0, state);
        assert_eq!(back.samples_used(), used);
        assert_eq!(back.estimate(5), via_history);
        assert_eq!(back.samples_used(), used, "cache hit, no new draws");
    }

    #[test]
    fn kpt_monotone_in_s() {
        let g = generators::erdos_renyi(300, 1500, 5);
        let probs = vec![0.1f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let mut est = KptEstimator::new(sampler, 1.0, 9);
        let k1 = est.estimate(1);
        let k5 = est.estimate(5);
        let k20 = est.estimate(20);
        assert!(k5 >= k1 * 0.99, "{k5} vs {k1}");
        assert!(k20 >= k5 * 0.99, "{k20} vs {k5}");
    }

    #[test]
    fn tim_finds_the_hub() {
        let g = generators::star(60);
        let probs = vec![0.4f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let r = tim_select(&sampler, 1, 0.2, 7);
        assert_eq!(r.seeds, vec![0], "hub must be the best single seed");
        // σ({0}) = 1 + 59·0.4 = 24.6; the estimate must be within ε·OPT-ish.
        assert!(
            (r.spread_estimate - 24.6).abs() < 3.0,
            "estimate {}",
            r.spread_estimate
        );
    }

    #[test]
    fn tim_spread_estimate_matches_mc() {
        let g = generators::preferential_attachment(400, 3, 0.2, 1);
        let probs = vec![0.08f32; g.num_edges()];
        let sampler = RrSampler::new(&g, &probs);
        let r = tim_select(&sampler, 5, 0.2, 11);
        assert_eq!(r.seeds.len(), 5);
        let mc = mc_spread(&g, &probs, &r.seeds, None, 20_000, 5);
        let rel = (r.spread_estimate - mc).abs() / mc.max(1.0);
        assert!(
            rel < 0.15,
            "coverage estimate {} vs MC {} (rel {rel})",
            r.spread_estimate,
            mc
        );
    }
}
