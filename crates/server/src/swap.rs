//! The snapshot-swap cell: one writer publishes immutable
//! [`AllocationSnapshot`]s, any number of readers serve from the latest
//! one without ever blocking on the writer's allocator work.
//!
//! # Soundness / non-blocking argument
//!
//! The cell is an atomic **version counter** plus a slot holding the
//! current `Arc<AllocationSnapshot>`. The contract that keeps readers
//! off the writer's critical path:
//!
//! * All allocator work (sampling, greedy re-runs — the milliseconds)
//!   happens *before* [`SnapshotSwap::publish`]; the slot lock is held
//!   only for an `Arc` pointer store or clone — a few nanoseconds, with
//!   no allocation and no allocator state behind it.
//! * Each reader holds its own cached `Arc` ([`SnapshotReader`]) and
//!   serves every query from it lock-free; it touches the slot only
//!   when the version counter says a newer snapshot exists. The worst
//!   case a reader can ever wait is another thread's pointer-sized
//!   critical section — never an allocation, never an event
//!   application.
//! * Snapshots are immutable owned data, so a reader that grabbed an
//!   `Arc` keeps a consistent view for as long as it likes while the
//!   writer publishes past it; memory is reclaimed when the last reader
//!   of an old snapshot drops its `Arc`.
//!
//! (A fully wait-free `AtomicPtr` swap would need deferred reclamation
//! — hazard pointers or epochs — to make the load-then-clone race
//! sound; std-only, the version-gated slot gives the same observable
//! behaviour: queries never wait on the allocator.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tirm_online::AllocationSnapshot;

/// The writer-side publication point.
pub struct SnapshotSwap {
    /// Publications so far; readers poll this to detect staleness.
    version: AtomicU64,
    /// The latest snapshot. Locked only for pointer-sized operations.
    slot: Mutex<Arc<AllocationSnapshot>>,
}

impl SnapshotSwap {
    /// A cell holding `initial` at version 0.
    pub fn new(initial: Arc<AllocationSnapshot>) -> Arc<SnapshotSwap> {
        Arc::new(SnapshotSwap {
            version: AtomicU64::new(0),
            slot: Mutex::new(initial),
        })
    }

    /// Publishes a new snapshot. The slot lock is held for one pointer
    /// store; the version bump afterwards is what readers observe
    /// (`Release` pairs with the reader's `Acquire` — a reader that sees
    /// version `v` and then loads the slot gets a snapshot at least as
    /// new as `v`).
    pub fn publish(&self, snapshot: Arc<AllocationSnapshot>) {
        let start_ns = tirm_obs::flight::now_ns();
        *self.slot.lock().expect("snapshot slot poisoned") = snapshot;
        self.version.fetch_add(1, Ordering::Release);
        tirm_obs::registry::SNAPSHOT_PUBLISHES.inc();
        // Attribute the publication to whatever mutation the calling
        // writer is applying (0 outside an apply — recorded as no-op).
        let trace = tirm_obs::flight::current_trace();
        if trace != 0 {
            tirm_obs::flight::record_since(trace, tirm_obs::flight::Stage::Publish, start_ns);
        }
    }

    /// Publications so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clones the current snapshot out of the slot (pointer-sized
    /// critical section).
    pub fn load(&self) -> Arc<AllocationSnapshot> {
        self.slot.lock().expect("snapshot slot poisoned").clone()
    }
}

/// A reader's cached view of the cell. Queries are answered from the
/// cached `Arc` without any lock; [`SnapshotReader::latest`] refreshes
/// it only when the version counter moved.
pub struct SnapshotReader {
    swap: Arc<SnapshotSwap>,
    cached: Arc<AllocationSnapshot>,
    version: u64,
    /// Slot refreshes this reader performed (telemetry: proves the read
    /// path mostly runs lock-free).
    refreshes: u64,
}

impl SnapshotReader {
    /// A reader starting from the cell's current snapshot.
    pub fn new(swap: Arc<SnapshotSwap>) -> SnapshotReader {
        // Version first, then load: the cached snapshot is at least as
        // new as the recorded version, never older.
        let version = swap.version();
        let cached = swap.load();
        SnapshotReader {
            swap,
            cached,
            version,
            refreshes: 0,
        }
    }

    /// The latest published snapshot (refreshing the cache only if the
    /// writer published since the last call).
    pub fn latest(&mut self) -> &Arc<AllocationSnapshot> {
        let v = self.swap.version();
        if v != self.version {
            self.version = v;
            self.cached = self.swap.load();
            self.refreshes += 1;
        }
        &self.cached
    }

    /// Slot refreshes performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64) -> Arc<AllocationSnapshot> {
        let mut s = (*AllocationSnapshot::empty(1, 0.0)).clone();
        s.epoch = epoch;
        Arc::new(s)
    }

    #[test]
    fn publish_and_read() {
        let cell = SnapshotSwap::new(snap(0));
        let mut r = SnapshotReader::new(cell.clone());
        assert_eq!(r.latest().epoch, 0);
        assert_eq!(r.refreshes(), 0, "no publication, no slot touch");
        cell.publish(snap(1));
        assert_eq!(r.latest().epoch, 1);
        assert_eq!(r.latest().epoch, 1);
        assert_eq!(r.refreshes(), 1, "one publication, one refresh");
    }

    #[test]
    fn old_snapshots_stay_consistent_for_holders() {
        let cell = SnapshotSwap::new(snap(0));
        let mut r = SnapshotReader::new(cell.clone());
        let held = r.latest().clone();
        cell.publish(snap(7));
        assert_eq!(held.epoch, 0, "held view unaffected by publication");
        assert_eq!(r.latest().epoch, 7);
    }

    #[test]
    fn concurrent_readers_see_monotone_epochs() {
        let cell = SnapshotSwap::new(snap(0));
        const PUBLISHES: u64 = 2_000;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                s.spawn(move || {
                    let mut r = SnapshotReader::new(cell);
                    let mut last = 0u64;
                    loop {
                        let e = r.latest().epoch;
                        assert!(e >= last, "epoch went backwards: {last} -> {e}");
                        last = e;
                        if e == PUBLISHES {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            for e in 1..=PUBLISHES {
                cell.publish(snap(e));
            }
        });
    }
}
