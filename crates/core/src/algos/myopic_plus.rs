//! MYOPIC+ baseline (§6): budget-conscious but virality-blind. For each ad,
//! users are ranked by CTP; seeds are taken in that order until the ad's
//! budget is exhausted *by expected direct revenue*. Ads proceed
//! round-robin, skipping users whose attention bound is spent.

use crate::allocation::Allocation;
use crate::metrics::AlgoStats;
use crate::problem::ProblemInstance;
use std::time::Instant;
use tirm_graph::NodeId;

/// Runs MYOPIC+.
pub fn myopic_plus_allocate(problem: &ProblemInstance<'_>) -> (Allocation, AlgoStats) {
    let start = Instant::now();
    let h = problem.num_ads();
    let n = problem.num_nodes();
    let mut alloc = Allocation::empty(h, n);

    // Per-ad CTP-descending user order.
    let mut order: Vec<Vec<NodeId>> = Vec::with_capacity(h);
    for i in 0..h {
        let mut idx: Vec<NodeId> = (0..n as NodeId).collect();
        idx.sort_by(|&a, &b| {
            problem
                .ctp
                .get(b, i)
                .partial_cmp(&problem.ctp.get(a, i))
                .unwrap()
                .then(a.cmp(&b))
        });
        order.push(idx);
    }
    let mut cursor = vec![0usize; h];
    let mut direct_revenue = vec![0.0f64; h];
    let mut done = vec![false; h];
    let mut remaining = h;

    // Round-robin: each live ad takes its next affordable, attention-free
    // user; an ad finishes when its expected direct revenue reaches the
    // budget or it runs out of users.
    while remaining > 0 {
        for i in 0..h {
            if done[i] {
                continue;
            }
            let budget = problem.target_budget(i);
            if direct_revenue[i] >= budget {
                done[i] = true;
                remaining -= 1;
                continue;
            }
            // Advance to the next assignable user.
            let mut took = false;
            while cursor[i] < n {
                let u = order[i][cursor[i]];
                cursor[i] += 1;
                if alloc.can_assign(problem, u, i) {
                    alloc.assign(u, i);
                    direct_revenue[i] += problem.direct_revenue(u, i);
                    took = true;
                    break;
                }
            }
            if !took {
                done[i] = true;
                remaining -= 1;
            }
        }
    }

    let stats = AlgoStats {
        runtime: start.elapsed(),
        seeds_per_ad: (0..h).map(|i| alloc.seeds(i).len()).collect(),
        estimated_revenue: direct_revenue,
        memory_bytes: 0,
        rr_sets_per_ad: vec![],
        oracle_calls: 0,
        ..AlgoStats::default()
    };
    (alloc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, Attention};
    use tirm_graph::generators;
    use tirm_topics::{CtpTable, TopicDist};

    #[test]
    fn stops_at_budget() {
        // CTP 0.5, cpe 1 → each seed contributes 0.5 expected revenue.
        // Budget 1.0 ⇒ exactly 2 seeds.
        let g = generators::path(10);
        let ads = vec![Advertiser::new(1.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.0f32; g.num_edges()]];
        let ctp = CtpTable::constant(10, 1, 0.5);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, stats) = myopic_plus_allocate(&p);
        assert_eq!(alloc.seeds(0).len(), 2);
        assert!((stats.estimated_revenue[0] - 1.0).abs() < 1e-9);
        alloc.validate(&p).unwrap();
    }

    #[test]
    fn prefers_high_ctp_users() {
        let g = generators::path(4);
        let ads = vec![Advertiser::new(0.5, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.0f32; g.num_edges()]];
        let ctp = CtpTable::direct(vec![vec![0.1, 0.9, 0.2, 0.8]]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, _) = myopic_plus_allocate(&p);
        assert_eq!(alloc.seeds(0), &[1], "single best-CTP user suffices");
    }

    #[test]
    fn round_robin_respects_attention() {
        // Two identical ads, κ = 1, two users. Round-robin must split them.
        let g = generators::path(2);
        let ads = vec![
            Advertiser::new(10.0, 1.0, TopicDist::single(1, 0)),
            Advertiser::new(10.0, 1.0, TopicDist::single(1, 0)),
        ];
        let probs = vec![vec![0.0f32; g.num_edges()]; 2];
        let ctp = CtpTable::direct(vec![vec![0.9, 0.8], vec![0.9, 0.8]]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, _) = myopic_plus_allocate(&p);
        assert_eq!(alloc.seeds(0).len() + alloc.seeds(1).len(), 2);
        assert_eq!(alloc.seeds(0), &[0], "first ad takes the best user");
        assert_eq!(alloc.seeds(1), &[1], "second ad gets the runner-up");
        alloc.validate(&p).unwrap();
    }

    #[test]
    fn runs_out_of_users_gracefully() {
        let g = generators::path(3);
        let ads = vec![Advertiser::new(100.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.0f32; g.num_edges()]];
        let ctp = CtpTable::constant(3, 1, 0.01);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, _) = myopic_plus_allocate(&p);
        assert_eq!(alloc.seeds(0).len(), 3, "all users taken, budget unmet");
    }
}
