//! Environment-driven experiment scaling.
//!
//! The paper ran on a 65 GB Xeon server; this harness must also run on a
//! laptop-class container. Every dataset has a *default* scale chosen so
//! the full table/figure sweep completes in minutes; setting `TIRM_SCALE`
//! (a multiplier, e.g. `5.0` to approach paper-sized graphs) raises it.
//! The perf suite additionally defines named tiers (`quick` for CI,
//! `full` for real measurement) that pick their own defaults — see
//! [`crate::scenarios::Tier`] — which the environment variables still
//! override.

/// Scaling configuration resolved from the environment once per process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleConfig {
    /// Multiplier applied to each dataset's default node count.
    pub scale: f64,
    /// Monte-Carlo cascades per evaluation (paper: 10 000).
    pub eval_runs: usize,
    /// Worker threads for evaluation.
    pub threads: usize,
}

impl ScaleConfig {
    /// Reads `TIRM_SCALE`, `TIRM_EVAL_RUNS`, `TIRM_THREADS` with defaults
    /// `1.0`, `10_000`, available parallelism. Set-but-unparsable values
    /// are *warned about* on stderr (they used to be silently replaced by
    /// the default, which made typos like `TIRM_SCALE=0,5` invisible).
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// Applies any set `TIRM_SCALE` / `TIRM_EVAL_RUNS` / `TIRM_THREADS`
    /// on top of `self` (the defaults), warning on unparsable values.
    pub fn with_env_overrides(self) -> Self {
        let read = |key: &str| std::env::var(key).ok();
        let (scale, w1) = parse_scale(read("TIRM_SCALE").as_deref(), self.scale);
        let (eval_runs, w2) = parse_eval_runs(read("TIRM_EVAL_RUNS").as_deref(), self.eval_runs);
        let (threads, w3) = parse_threads(read("TIRM_THREADS").as_deref(), self.threads);
        for w in [w1, w2, w3].into_iter().flatten() {
            eprintln!("warn: {w}");
        }
        ScaleConfig {
            scale,
            eval_runs,
            threads,
        }
    }

    /// Applies the multiplier to a default node count, clamping to ≥ 64.
    pub fn nodes(&self, default_nodes: usize) -> usize {
        ((default_nodes as f64 * self.scale) as usize).max(64)
    }
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            scale: 1.0,
            eval_runs: 10_000,
            threads: default_threads(),
        }
    }
}

/// Available parallelism, with a single-thread fallback.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Parses `TIRM_SCALE`: positive float, clamped to ≥ 0.001. Returns the
/// resolved value plus a warning when the raw value is set but unusable.
pub fn parse_scale(raw: Option<&str>, default: f64) -> (f64, Option<String>) {
    parse_with(raw, default, "TIRM_SCALE", |v: f64| {
        if v.is_finite() && v > 0.0 {
            Some(v.max(0.001))
        } else {
            None
        }
    })
}

/// Parses `TIRM_EVAL_RUNS`: positive integer, clamped to ≥ 10.
pub fn parse_eval_runs(raw: Option<&str>, default: usize) -> (usize, Option<String>) {
    parse_with(raw, default, "TIRM_EVAL_RUNS", |v: usize| {
        if v > 0 {
            Some(v.max(10))
        } else {
            None
        }
    })
}

/// Parses `TIRM_THREADS`: positive integer.
pub fn parse_threads(raw: Option<&str>, default: usize) -> (usize, Option<String>) {
    parse_with(raw, default, "TIRM_THREADS", |v: usize| {
        if v > 0 {
            Some(v)
        } else {
            None
        }
    })
}

/// Shared parse-then-validate plumbing: unset ⇒ default silently; set but
/// unparsable or rejected by `check` ⇒ default plus a warning message.
fn parse_with<T>(
    raw: Option<&str>,
    default: T,
    key: &str,
    check: impl Fn(T) -> Option<T>,
) -> (T, Option<String>)
where
    T: std::str::FromStr + std::fmt::Display + Copy,
{
    match raw {
        None => (default, None),
        Some(text) => match text.trim().parse::<T>().ok().and_then(&check) {
            Some(v) => (v, None),
            None => (
                default,
                Some(format!(
                    "{key}={text:?} is not a valid value; using default {default}"
                )),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ScaleConfig::default();
        assert_eq!(c.eval_runs, 10_000);
        assert!(c.threads >= 1);
        assert_eq!(c.nodes(1000), 1000);
    }

    #[test]
    fn nodes_scaling_clamps() {
        let c = ScaleConfig {
            scale: 0.001,
            eval_runs: 100,
            threads: 1,
        };
        assert_eq!(c.nodes(10_000), 64);
        let big = ScaleConfig { scale: 2.0, ..c };
        assert_eq!(big.nodes(10_000), 20_000);
    }

    #[test]
    fn unset_vars_use_default_without_warning() {
        assert_eq!(parse_scale(None, 1.5), (1.5, None));
        assert_eq!(parse_eval_runs(None, 500), (500, None));
        assert_eq!(parse_threads(None, 4), (4, None));
    }

    #[test]
    fn valid_values_parse_without_warning() {
        assert_eq!(parse_scale(Some("2.5"), 1.0), (2.5, None));
        assert_eq!(parse_scale(Some(" 0.25 "), 1.0), (0.25, None));
        assert_eq!(parse_eval_runs(Some("200"), 10_000), (200, None));
        assert_eq!(parse_threads(Some("8"), 1), (8, None));
    }

    #[test]
    fn unparsable_values_warn_and_fall_back() {
        let (v, warn) = parse_scale(Some("0,5"), 1.0);
        assert_eq!(v, 1.0);
        assert!(warn.as_deref().unwrap().contains("TIRM_SCALE"));
        assert!(warn.as_deref().unwrap().contains("0,5"));

        let (v, warn) = parse_eval_runs(Some("lots"), 10_000);
        assert_eq!(v, 10_000);
        assert!(warn.is_some());

        let (v, warn) = parse_threads(Some("3.5"), 2);
        assert_eq!(v, 2);
        assert!(warn.is_some());
    }

    #[test]
    fn out_of_domain_values_warn() {
        // Zero / negative / non-finite are set-but-invalid, not defaults.
        assert!(parse_scale(Some("0"), 1.0).1.is_some());
        assert!(parse_scale(Some("-2"), 1.0).1.is_some());
        assert!(parse_scale(Some("NaN"), 1.0).1.is_some());
        assert!(parse_scale(Some("inf"), 1.0).1.is_some());
        assert!(parse_eval_runs(Some("0"), 100).1.is_some());
        assert!(parse_eval_runs(Some("-5"), 100).1.is_some());
        assert!(parse_threads(Some("0"), 1).1.is_some());
    }

    #[test]
    fn small_but_valid_values_clamp_silently() {
        // In-domain values below the floor clamp without a warning: the
        // user asked for "as small as possible", not a typo.
        assert_eq!(parse_scale(Some("0.0001"), 1.0), (0.001, None));
        assert_eq!(parse_eval_runs(Some("3"), 10_000), (10, None));
    }

    #[test]
    fn empty_string_warns() {
        assert!(parse_scale(Some(""), 1.0).1.is_some());
        assert!(parse_eval_runs(Some(""), 100).1.is_some());
    }
}
