//! Durable checkpoints of an [`OnlineAllocator`].
//!
//! A checkpoint is the allocator's **entire** state — the campaign model
//! (live ads, budgets, standing seed sets), every ad's RR-index shard,
//! the θ/KPT engine RNG positions, the retained pool, and the lifetime
//! counters — tagged with the WAL sequence number it covers and framed
//! through the checksummed word-stream container of
//! [`tirm_graph::snapshot`]. Because the sampling engines are restored to
//! their exact stream positions, a restored allocator **continues the
//! same RNG streams**: replaying the WAL tail after a crash produces
//! allocations and revenue estimates bit-identical to the uninterrupted
//! run, and pays no resampling for anything the checkpoint already held.
//!
//! The configuration the checkpoint was written under is echoed into the
//! payload and re-validated on restore — a checkpoint restored into an
//! allocator with a different seed, thread count, ε/ℓ schedule or
//! attention bound would silently diverge from the log it is supposed to
//! anchor, so it errors instead ([`SnapshotError::Malformed`]).
//!
//! This is a child module of [`allocator`](super) so it can serialize
//! private capital (live-ad shards, pool entries) without widening the
//! allocator's public mutation surface.

use super::{LiveAd, OnlineAllocator, OnlineConfig, OnlineStats};
use crate::events::AdId;
use std::io::{Read, Write};
use tirm_core::{AdSeeds, AdWarmParts, AdWarmState, Advertiser};
use tirm_graph::snapshot::{read_words_stream, write_words_stream, SnapshotError};
use tirm_graph::{DiGraph, NodeId};
use tirm_rrset::{SamplerState, SamplingConfig};
use tirm_topics::{TopicDist, TopicEdgeProbs};

/// Magic prefix of allocator checkpoint streams.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"TIRMCKPT";
/// Version of the checkpoint payload layout.
pub const CHECKPOINT_VERSION: u32 = 1;

impl<'g> OnlineAllocator<'g> {
    /// Serializes the allocator's complete state to `w`, tagged with the
    /// WAL sequence number `wal_seq` (the count of admitted mutations the
    /// checkpoint covers; restart replays the log from there). Takes
    /// `&mut self` because index shards are compacted in place first —
    /// a behavior-preserving reorganization the index performs on its
    /// own during normal growth.
    pub fn checkpoint<W: Write>(&mut self, wal_seq: u64, w: &mut W) -> std::io::Result<()> {
        let payload = encode(self, wal_seq);
        write_words_stream(w, CHECKPOINT_MAGIC, CHECKPOINT_VERSION, &payload)
    }

    /// Rebuilds an allocator from a checkpoint stream, returning it with
    /// the WAL sequence number the checkpoint covers. `cfg` must match
    /// the configuration the checkpoint was written under (validated
    /// against the payload's echo); `graph` and `topic_probs` must be the
    /// same host data, checked by shape.
    pub fn restore<R: Read>(
        graph: &'g DiGraph,
        topic_probs: &'g TopicEdgeProbs,
        cfg: OnlineConfig,
        r: &mut R,
    ) -> Result<(Self, u64), SnapshotError> {
        let words = read_words_stream(r, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
        decode(graph, topic_probs, cfg, &words)
    }
}

fn malformed(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(msg.into())
}

/// Little-endian word-granular encoder (the payload unit of
/// [`write_words_stream`]).
#[derive(Default)]
struct WordWriter {
    words: Vec<u32>,
}

impl WordWriter {
    fn u32(&mut self, v: u32) {
        self.words.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.u32(v as u32);
        self.u32((v >> 32) as u32);
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u32(v as u32);
    }
    fn opt_usize(&mut self, v: Option<usize>) {
        self.bool(v.is_some());
        self.usize(v.unwrap_or(0));
    }
    fn u32s(&mut self, v: &[u32]) {
        self.usize(v.len());
        self.words.extend_from_slice(v);
    }
    fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }
    fn f32s(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }
    fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
}

/// Cursor over a decoded word payload. Underflow (a field extending past
/// the payload) is a structural error — the checksum already passed, so
/// it means a logic-level layout mismatch, reported as such.
struct WordReader<'a> {
    words: &'a [u32],
    pos: usize,
}

impl<'a> WordReader<'a> {
    fn new(words: &'a [u32]) -> Self {
        WordReader { words, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let v = *self.words.get(self.pos).ok_or_else(|| {
            malformed(format!("checkpoint payload underflow at word {}", self.pos))
        })?;
        self.pos += 1;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let lo = self.u32()? as u64;
        let hi = self.u32()? as u64;
        Ok(lo | (hi << 32))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| malformed(format!("count {v} exceeds this host's usize")))
    }
    /// A length prefix about to gate an allocation: bounded by the words
    /// still unread (each element needs ≥ `elem_words` of them), so a
    /// corrupt length cannot commit absurd memory.
    fn len(&mut self, elem_words: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n.checked_mul(elem_words)
            .is_none_or(|w| w > self.remaining())
        {
            return Err(malformed(format!(
                "length {n} inconsistent with {} unread payload words",
                self.remaining()
            )));
        }
        Ok(n)
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(malformed(format!("boolean word holds {v}"))),
        }
    }
    fn opt_usize(&mut self) -> Result<Option<usize>, SnapshotError> {
        let some = self.bool()?;
        let v = self.usize()?;
        Ok(some.then_some(v))
    }
    fn u32s(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len(1)?;
        let out = self.words[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }
    fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len(2)?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn f32s(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.len(1)?;
        (0..n).map(|_| self.f32()).collect()
    }
    fn f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(2)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos != self.words.len() {
            return Err(malformed(format!(
                "{} trailing words after the checkpoint payload",
                self.words.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_sampler(w: &mut WordWriter, s: &SamplerState) {
    w.usize(s.config.threads);
    w.u64(s.config.seed);
    w.opt_usize(s.config.max_theta);
    w.usize(s.rng_states.len());
    for st in &s.rng_states {
        for &word in st {
            w.u64(word);
        }
    }
    w.usize(s.total_sampled);
}

fn get_sampler(r: &mut WordReader<'_>) -> Result<SamplerState, SnapshotError> {
    let threads = r.usize()?;
    let seed = r.u64()?;
    let max_theta = r.opt_usize()?;
    let shards = r.len(8)?;
    let mut rng_states = Vec::with_capacity(shards);
    for _ in 0..shards {
        let mut st = [0u64; 4];
        for word in &mut st {
            *word = r.u64()?;
        }
        rng_states.push(st);
    }
    let total_sampled = r.usize()?;
    Ok(SamplerState {
        config: SamplingConfig {
            threads,
            seed,
            max_theta,
        },
        rng_states,
        total_sampled,
    })
}

fn put_warm(w: &mut WordWriter, p: &AdWarmParts) {
    w.usize(p.num_nodes);
    w.u32s(&p.set_offsets);
    w.u32s(&p.set_nodes);
    w.u32s(&p.frozen_offsets);
    w.u32s(&p.frozen_data);
    put_sampler(w, &p.engine);
    w.u64s(&p.kpt_widths);
    put_sampler(w, &p.kpt_engine);
    match &p.base {
        Some((theta0, scores)) => {
            w.bool(true);
            w.usize(*theta0);
            w.f64s(scores);
        }
        None => w.bool(false),
    }
}

fn get_warm(r: &mut WordReader<'_>) -> Result<AdWarmParts, SnapshotError> {
    Ok(AdWarmParts {
        num_nodes: r.usize()?,
        set_offsets: r.u32s()?,
        set_nodes: r.u32s()?,
        frozen_offsets: r.u32s()?,
        frozen_data: r.u32s()?,
        engine: get_sampler(r)?,
        kpt_widths: r.u64s()?,
        kpt_engine: get_sampler(r)?,
        base: {
            if r.bool()? {
                Some((r.usize()?, r.f64s()?))
            } else {
                None
            }
        },
    })
}

fn encode(a: &mut OnlineAllocator<'_>, wal_seq: u64) -> Vec<u32> {
    let mut w = WordWriter::default();
    w.u64(wal_seq);
    // Configuration echo — everything the replayed results depend on.
    w.u32(a.cfg.kappa);
    w.f64(a.cfg.lambda);
    w.u64(a.cfg.tirm.seed);
    w.usize(a.cfg.tirm.threads);
    w.f64(a.cfg.tirm.eps);
    w.f64(a.cfg.tirm.ell);
    w.opt_usize(a.cfg.tirm.max_theta_per_ad);
    w.opt_usize(a.cfg.tirm.max_total_seeds);
    w.bool(a.cfg.tirm.exact_drop_selection);
    w.bool(a.cfg.tirm.hard_cover);
    // Host shape echo.
    w.usize(a.graph.num_nodes());
    w.usize(a.graph.num_edges());
    w.usize(a.topic_probs.k());
    // Dynamic state.
    w.u64(a.epoch);
    w.bool(a.stale);
    w.bool(a.contended);
    w.usize(a.stats.events);
    w.usize(a.stats.full_reallocations);
    w.usize(a.stats.delta_reallocations);
    w.usize(a.stats.fresh_rr_sets);
    w.usize(a.stats.shard_reclaims);
    w.u64s(&a.dirty);
    // Live campaigns, arrival order.
    w.usize(a.live.len());
    for ad in &mut a.live {
        w.u64(ad.id);
        w.f64(ad.adv.budget);
        w.f64(ad.adv.cpe);
        w.f32s(ad.adv.topics.weights());
        // The CTP column is uniform by construction (materialised as
        // `vec![ctp; n]` at arrival) — one scalar restores it.
        w.f32(ad.ctp_col.first().copied().unwrap_or(0.0));
        w.u32s(&ad.seeds);
        w.f64(ad.revenue_est);
        match &mut ad.warm {
            Some(warm) => {
                w.bool(true);
                put_warm(&mut w, &warm.export_parts());
            }
            None => w.bool(false),
        }
    }
    // Retained pool, release order.
    w.usize(a.pool.evictions());
    w.usize(a.pool.len());
    for entry in a.pool.entries_mut() {
        w.u64(entry.id);
        w.f32s(entry.topics.weights());
        put_warm(&mut w, &entry.state.export_parts());
    }
    w.words
}

/// Compares a restore-side configuration value against the checkpoint's
/// echo, bitwise for floats.
fn check<T: PartialEq + std::fmt::Debug>(
    field: &str,
    ours: T,
    theirs: T,
) -> Result<(), SnapshotError> {
    if ours != theirs {
        return Err(malformed(format!(
            "checkpoint written under a different configuration: {field} is {theirs:?}, this allocator runs {ours:?}"
        )));
    }
    Ok(())
}

fn decode<'g>(
    graph: &'g DiGraph,
    topic_probs: &'g TopicEdgeProbs,
    cfg: OnlineConfig,
    words: &[u32],
) -> Result<(OnlineAllocator<'g>, u64), SnapshotError> {
    let r = &mut WordReader::new(words);
    let wal_seq = r.u64()?;
    check("kappa", cfg.kappa, r.u32()?)?;
    check("lambda", cfg.lambda.to_bits(), r.f64()?.to_bits())?;
    check("tirm.seed", cfg.tirm.seed, r.u64()?)?;
    check("tirm.threads", cfg.tirm.threads, r.usize()?)?;
    check("tirm.eps", cfg.tirm.eps.to_bits(), r.f64()?.to_bits())?;
    check("tirm.ell", cfg.tirm.ell.to_bits(), r.f64()?.to_bits())?;
    check(
        "tirm.max_theta_per_ad",
        cfg.tirm.max_theta_per_ad,
        r.opt_usize()?,
    )?;
    check(
        "tirm.max_total_seeds",
        cfg.tirm.max_total_seeds,
        r.opt_usize()?,
    )?;
    check(
        "tirm.exact_drop_selection",
        cfg.tirm.exact_drop_selection,
        r.bool()?,
    )?;
    check("tirm.hard_cover", cfg.tirm.hard_cover, r.bool()?)?;
    check("graph nodes", graph.num_nodes(), r.usize()?)?;
    check("graph edges", graph.num_edges(), r.usize()?)?;
    check("topic count", topic_probs.k(), r.usize()?)?;

    let n = graph.num_nodes();
    let mut a = OnlineAllocator::new(graph, topic_probs, cfg);
    a.epoch = r.u64()?;
    a.stale = r.bool()?;
    a.contended = r.bool()?;
    a.stats = OnlineStats {
        events: r.usize()?,
        full_reallocations: r.usize()?,
        delta_reallocations: r.usize()?,
        fresh_rr_sets: r.usize()?,
        shard_reclaims: r.usize()?,
    };
    a.dirty = r.u64s()?;

    let num_live = r.len(8)?;
    for _ in 0..num_live {
        let id: AdId = r.u64()?;
        let budget = r.f64()?;
        let cpe = r.f64()?;
        let topics = TopicDist::new(r.f32s()?)
            .map_err(|e| malformed(format!("ad {id} topic distribution: {e}")))?;
        let ctp = r.f32()?;
        let seeds: Vec<NodeId> = r.u32s()?;
        let revenue_est = r.f64()?;
        let warm_parts = if r.bool()? { Some(get_warm(r)?) } else { None };

        if a.index_of(id).is_some() {
            return Err(malformed(format!("ad {id} appears twice among live ads")));
        }
        if !(0.0..=1.0).contains(&ctp) {
            return Err(malformed(format!("ad {id} ctp {ctp} outside [0, 1]")));
        }
        if let Some(&v) = seeds.iter().find(|&&v| v as usize >= n) {
            return Err(malformed(format!(
                "ad {id} seed node {v} outside the graph"
            )));
        }
        let plan = AdSeeds::for_ad_id(a.cfg.tirm.seed, id);
        let warm = warm_parts
            .map(|p| restore_warm(id, p, plan, a.cfg.tirm.threads, n))
            .transpose()?;
        a.live.push(LiveAd {
            id,
            adv: Advertiser::new(budget, cpe, topics.clone()),
            probs: topic_probs.project(&topics),
            ctp_col: vec![ctp; n],
            plan,
            warm,
            seeds,
            revenue_est,
        });
    }

    let evictions = r.usize()?;
    let num_pooled = r.len(8)?;
    for _ in 0..num_pooled {
        let id: AdId = r.u64()?;
        let topics = TopicDist::new(r.f32s()?)
            .map_err(|e| malformed(format!("pooled shard {id} topic distribution: {e}")))?;
        let parts = get_warm(r)?;
        let plan = AdSeeds::for_ad_id(a.cfg.tirm.seed, id);
        let state = restore_warm(id, parts, plan, a.cfg.tirm.threads, n)?;
        // Re-released through the normal path: byte accounting is
        // recomputed from the rebuilt shard, and a restore into a
        // tighter-budgeted pool trims like any release would.
        a.pool.release(id, topics, state);
    }
    a.pool.set_evictions(evictions);
    r.finish()?;
    Ok((a, wal_seq))
}

fn restore_warm(
    id: AdId,
    parts: AdWarmParts,
    plan: AdSeeds,
    threads: usize,
    num_nodes: usize,
) -> Result<AdWarmState, SnapshotError> {
    if parts.num_nodes != num_nodes {
        return Err(malformed(format!(
            "ad {id} shard sampled over {} nodes, graph has {num_nodes}",
            parts.num_nodes
        )));
    }
    AdWarmState::from_parts(parts, plan, threads).map_err(|e| malformed(format!("ad {id}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::OnlineEvent;
    use tirm_core::TirmOptions;
    use tirm_graph::generators;
    use tirm_topics::genprob;

    fn setup() -> (DiGraph, TopicEdgeProbs) {
        let g = generators::preferential_attachment(250, 4, 0.3, 13);
        let probs = genprob::replicate_across_topics(&vec![0.08f32; g.num_edges()], 2);
        (g, probs)
    }

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            tirm: TirmOptions {
                eps: 0.2,
                seed: 7,
                max_theta_per_ad: Some(20_000),
                ..TirmOptions::default()
            },
            kappa: 2,
            ..OnlineConfig::default()
        }
    }

    fn arrival(id: AdId, budget: f64, topic: usize) -> OnlineEvent {
        OnlineEvent::AdArrival {
            id,
            budget,
            cpe: 1.0,
            topics: TopicDist::single(2, topic),
            ctp: 0.5,
        }
    }

    /// Round-trips an allocator through a checkpoint and proves the
    /// restored copy (a) carries the identical allocation and (b) keeps
    /// producing **bit-identical** results on further events — the RNG
    /// streams resume exactly where the original's stand.
    #[test]
    fn checkpoint_restore_is_bit_identical_and_resumes_streams() {
        let (g, probs) = setup();
        let mut a = OnlineAllocator::new(&g, &probs, cfg());
        a.process(&arrival(1, 8.0, 0)).unwrap();
        a.process(&arrival(2, 6.0, 1)).unwrap();
        a.process(&OnlineEvent::AdDeparture { id: 1 }).unwrap();
        a.process(&arrival(3, 5.0, 0)).unwrap();

        let mut buf = Vec::new();
        a.checkpoint(42, &mut buf).unwrap();
        let (mut b, wal_seq) =
            OnlineAllocator::restore(&g, &probs, cfg(), &mut buf.as_slice()).unwrap();
        assert_eq!(wal_seq, 42);
        assert_eq!(b.epoch(), a.epoch());
        assert_eq!(b.stats(), a.stats());
        assert_eq!(b.pooled_shards(), a.pooled_shards());
        assert!(a.snapshot().same_allocation(&b.snapshot()));
        assert_eq!(b.total_rr_sets(), a.total_rr_sets());

        // Continue both on the same tail: fresh sampling must agree.
        for ev in [
            arrival(1, 9.0, 0), // reclaims ad 1's pooled shard in both
            OnlineEvent::BudgetTopUp { id: 2, amount: 5.0 },
            arrival(4, 7.0, 1),
        ] {
            let oa = a.process(&ev).unwrap();
            let ob = b.process(&ev).unwrap();
            assert_eq!(oa.fresh_rr_sets, ob.fresh_rr_sets);
        }
        assert!(a.snapshot().same_allocation(&b.snapshot()));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn empty_allocator_round_trips() {
        let (g, probs) = setup();
        let mut a = OnlineAllocator::new(&g, &probs, cfg());
        let mut buf = Vec::new();
        a.checkpoint(0, &mut buf).unwrap();
        let (b, wal_seq) =
            OnlineAllocator::restore(&g, &probs, cfg(), &mut buf.as_slice()).unwrap();
        assert_eq!(wal_seq, 0);
        assert_eq!(b.num_live(), 0);
        assert!(a.snapshot().same_allocation(&b.snapshot()));
    }

    #[test]
    fn config_and_host_mismatches_are_typed_errors() {
        let (g, probs) = setup();
        let mut a = OnlineAllocator::new(&g, &probs, cfg());
        a.process(&arrival(1, 8.0, 0)).unwrap();
        let mut buf = Vec::new();
        a.checkpoint(3, &mut buf).unwrap();

        let mut other = cfg();
        other.tirm.seed = 8;
        match OnlineAllocator::restore(&g, &probs, other, &mut buf.as_slice()) {
            Err(SnapshotError::Malformed(msg)) => assert!(msg.contains("tirm.seed"), "{msg}"),
            Err(e) => panic!("wrong error kind: {e}"),
            Ok(_) => panic!("seed mismatch must not restore"),
        }

        let mut other = cfg();
        other.kappa = 3;
        assert!(OnlineAllocator::restore(&g, &probs, other, &mut buf.as_slice()).is_err());

        let (g2, probs2) = {
            let g = generators::preferential_attachment(100, 4, 0.3, 13);
            let p = genprob::replicate_across_topics(&vec![0.08f32; g.num_edges()], 2);
            (g, p)
        };
        assert!(OnlineAllocator::restore(&g2, &probs2, cfg(), &mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_checkpoints_error_instead_of_panicking() {
        let (g, probs) = setup();
        let mut a = OnlineAllocator::new(&g, &probs, cfg());
        a.process(&arrival(1, 8.0, 0)).unwrap();
        let mut buf = Vec::new();
        a.checkpoint(1, &mut buf).unwrap();

        // Bit rot in the middle: checksum catches it.
        let mut rotten = buf.clone();
        let mid = rotten.len() / 2;
        rotten[mid] ^= 0x40;
        assert!(matches!(
            OnlineAllocator::restore(&g, &probs, cfg(), &mut rotten.as_slice()),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncation at every prefix length: typed error, no panic.
        for cut in [0, 5, buf.len() / 3, buf.len() - 1] {
            assert!(
                OnlineAllocator::restore(&g, &probs, cfg(), &mut buf[..cut].as_ref()).is_err(),
                "prefix of {cut} bytes must not restore"
            );
        }

        // Foreign magic.
        let mut foreign = buf.clone();
        foreign[0] ^= 0xff;
        assert!(matches!(
            OnlineAllocator::restore(&g, &probs, cfg(), &mut foreign.as_slice()),
            Err(SnapshotError::BadMagic)
        ));
    }
}
