//! The correctness anchor of the online subsystem: replaying any event
//! log produces allocations **bit-identical** to running batch TIRM on
//! the ad set live at that point (same id-derived seed plans). The online
//! path may only change *where* RR sets come from — cached postings vs
//! fresh graph walks — never the allocation itself.

use proptest::prelude::*;
use tirm_core::{
    tirm_allocate_seeded, AdSeeds, Advertiser, Attention, ProblemInstance, TirmOptions,
};
use tirm_graph::{generators, DiGraph};
use tirm_online::{AdId, OnlineAllocator, OnlineConfig, OnlineEvent};
use tirm_topics::{genprob, CtpTable, TopicDist, TopicEdgeProbs};

/// Abstract op; the replay harness maps it onto a *valid* event against
/// the live-ad model (`which` indexes the live set modulo its size).
#[derive(Clone, Debug)]
enum Op {
    Arrive { budget: u32, topic: u8, ctp: u8 },
    TopUp { which: usize, amount: u32 },
    Depart { which: usize },
    Query,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // (kind, magnitude, flavour, which) tuples mapped onto ops with
    // weights 4:2:2:1 for arrive:topup:depart:query.
    let op =
        (0u8..9, 2u32..24, 0u8..6, 0usize..6).prop_map(|(kind, mag, flavour, which)| match kind {
            0..=3 => Op::Arrive {
                budget: mag,
                topic: flavour % 2,
                ctp: flavour % 3,
            },
            4 | 5 => Op::TopUp {
                which,
                amount: mag / 2 + 1,
            },
            6 | 7 => Op::Depart { which },
            _ => Op::Query,
        });
    proptest::collection::vec(op, 1..10)
}

fn quick_opts(seed: u64) -> TirmOptions {
    TirmOptions {
        eps: 0.3,
        seed,
        max_theta_per_ad: Some(2_500),
        ..TirmOptions::default()
    }
}

fn ctp_of(code: u8) -> f32 {
    [1.0, 0.5, 0.05][code as usize % 3]
}

/// Model of the live ad population the batch side is built from.
#[derive(Clone)]
struct ModelAd {
    id: AdId,
    budget: f64,
    cpe: f64,
    topics: TopicDist,
    ctp: f32,
}

fn batch_allocation(
    graph: &DiGraph,
    topic_probs: &TopicEdgeProbs,
    ads: &[ModelAd],
    opts: TirmOptions,
    kappa: u32,
    lambda: f64,
) -> (Vec<Vec<u32>>, Vec<f64>) {
    if ads.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let n = graph.num_nodes();
    let advertisers: Vec<Advertiser> = ads
        .iter()
        .map(|a| Advertiser::new(a.budget, a.cpe, a.topics.clone()))
        .collect();
    let probs: Vec<Vec<f32>> = ads.iter().map(|a| topic_probs.project(&a.topics)).collect();
    let ctp = CtpTable::direct(ads.iter().map(|a| vec![a.ctp; n]).collect());
    let problem = ProblemInstance::new(
        graph,
        advertisers,
        probs,
        ctp,
        Attention::Uniform(kappa),
        lambda,
    );
    let plan: Vec<AdSeeds> = ads
        .iter()
        .map(|a| AdSeeds::for_ad_id(opts.seed, a.id))
        .collect();
    let (alloc, stats) = tirm_allocate_seeded(&problem, opts, &plan);
    let seeds = (0..ads.len()).map(|i| alloc.seeds(i).to_vec()).collect();
    (seeds, stats.estimated_revenue)
}

/// Replays `ops`, checking online ≡ batch after every mutating event
/// (`check_each`) or only at the end after a final `Reallocate`.
fn replay_and_check(ops: &[Op], seed: u64, kappa: u32, lambda: f64, check_each: bool) {
    let graph = generators::preferential_attachment(120, 3, 0.3, seed ^ 0x9a9a);
    let topic_probs = genprob::exponential_topic_probs(graph.num_edges(), 2, 8.0, seed ^ 0x77);
    let opts = quick_opts(seed);
    let mut online = OnlineAllocator::new(
        &graph,
        &topic_probs,
        OnlineConfig {
            tirm: opts,
            kappa,
            lambda,
            auto_reallocate: check_each,
            ..OnlineConfig::default()
        },
    );

    let mut model: Vec<ModelAd> = Vec::new();
    let mut next_id: AdId = 1;
    for op in ops {
        let event = match op {
            Op::Arrive { budget, topic, ctp } => {
                let id = next_id;
                next_id += 1;
                let topics = TopicDist::single(2, *topic as usize);
                let ad = ModelAd {
                    id,
                    budget: *budget as f64,
                    cpe: 1.5,
                    topics: topics.clone(),
                    ctp: ctp_of(*ctp),
                };
                model.push(ad.clone());
                OnlineEvent::AdArrival {
                    id,
                    budget: ad.budget,
                    cpe: ad.cpe,
                    topics,
                    ctp: ad.ctp,
                }
            }
            Op::TopUp { which, amount } => {
                if model.is_empty() {
                    continue;
                }
                let i = which % model.len();
                model[i].budget += *amount as f64;
                OnlineEvent::BudgetTopUp {
                    id: model[i].id,
                    amount: *amount as f64,
                }
            }
            Op::Depart { which } => {
                if model.is_empty() {
                    continue;
                }
                let i = which % model.len();
                let id = model.remove(i).id;
                OnlineEvent::AdDeparture { id }
            }
            Op::Query => OnlineEvent::RegretQuery,
        };
        online
            .process(&event)
            .expect("harness only emits valid events");

        if check_each {
            assert_allocations_match(&online, &graph, &topic_probs, &model, opts, kappa, lambda);
        }
    }
    if !check_each {
        online.process(&OnlineEvent::Reallocate).unwrap();
    }
    assert_allocations_match(&online, &graph, &topic_probs, &model, opts, kappa, lambda);
}

fn assert_allocations_match(
    online: &OnlineAllocator<'_>,
    graph: &DiGraph,
    topic_probs: &TopicEdgeProbs,
    model: &[ModelAd],
    opts: TirmOptions,
    kappa: u32,
    lambda: f64,
) {
    let (batch_seeds, batch_revenue) =
        batch_allocation(graph, topic_probs, model, opts, kappa, lambda);
    let online_alloc = online.allocation();
    assert_eq!(
        online.live_ids(),
        model.iter().map(|a| a.id).collect::<Vec<_>>(),
        "live set diverged from the model"
    );
    assert_eq!(online_alloc.num_ads(), batch_seeds.len());
    for (i, ad) in model.iter().enumerate() {
        assert_eq!(
            online_alloc.seeds(i),
            &batch_seeds[i][..],
            "ad {} (id {}) diverged from batch",
            i,
            ad.id
        );
        let online_rev = online.revenue_estimate(ad.id).unwrap();
        assert_eq!(
            online_rev.to_bits(),
            batch_revenue[i].to_bits(),
            "revenue estimate of ad {} drifted: {} vs {}",
            ad.id,
            online_rev,
            batch_revenue[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Auto-reallocating replay: online ≡ batch after *every* event.
    #[test]
    fn replay_equals_batch_after_every_event(
        ops in arb_ops(),
        seed in 0u64..200,
        kappa in 1u32..=2,
    ) {
        replay_and_check(&ops, seed, kappa, 0.0, true);
    }

    /// Deferred mode: events batch up, a final `Reallocate` reconciles —
    /// the end state must equal batch on the final ad set.
    #[test]
    fn deferred_replay_equals_batch_at_the_end(
        ops in arb_ops(),
        seed in 0u64..200,
    ) {
        replay_and_check(&ops, seed, 2, 0.05, false);
    }
}

/// Deterministic interleaving exercising every event type with κ = 1
/// (guaranteed attention contention: the full-path fallback) — a
/// debuggable anchor next to the property tests.
#[test]
fn fixed_contended_interleaving_matches_batch() {
    let ops = [
        Op::Arrive {
            budget: 10,
            topic: 0,
            ctp: 0,
        },
        Op::Arrive {
            budget: 8,
            topic: 1,
            ctp: 1,
        },
        Op::TopUp {
            which: 0,
            amount: 6,
        },
        Op::Arrive {
            budget: 12,
            topic: 0,
            ctp: 2,
        },
        Op::Query,
        Op::Depart { which: 1 },
        Op::TopUp {
            which: 1,
            amount: 3,
        },
        Op::Arrive {
            budget: 5,
            topic: 1,
            ctp: 0,
        },
        Op::Depart { which: 0 },
    ];
    replay_and_check(&ops, 42, 1, 0.0, true);
}

/// Same interleaving, uncontended κ and a seed-size penalty.
#[test]
fn fixed_clean_interleaving_matches_batch_with_lambda() {
    let ops = [
        Op::Arrive {
            budget: 9,
            topic: 0,
            ctp: 1,
        },
        Op::Arrive {
            budget: 7,
            topic: 1,
            ctp: 1,
        },
        Op::Depart { which: 0 },
        Op::Arrive {
            budget: 11,
            topic: 0,
            ctp: 0,
        },
        Op::TopUp {
            which: 0,
            amount: 5,
        },
    ];
    replay_and_check(&ops, 7, 3, 0.1, true);
}
