//! Offline, API-compatible subset of `serde_json`: a [`Value`] tree, the
//! [`json!`] macro for flat literals, and (pretty-)printing of anything
//! implementing the vendored `serde::Serialize`.

use serde::ser::{SerializeMap as _, SerializeSeq as _};
use serde::Serialize;
use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers round-trip below 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key/value pairs).
    Object(Vec<(String, Value)>),
}

/// Error type (the shim's serializers are infallible; this exists to keep
/// `Result`-shaped signatures compatible).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), None, 0);
    Ok(out)
}

/// Pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), Some(2), 0);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports `null`, arrays,
/// flat or nested objects with string-literal keys, and arbitrary
/// serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => s.serialize_unit(),
            Value::Bool(b) => s.serialize_bool(*b),
            Value::Number(n) => s.serialize_f64(*n),
            Value::String(v) => s.serialize_str(v),
            Value::Array(items) => {
                let mut seq = s.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(entries) => {
                let mut map = s.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}

/// Infallible serializer producing a [`Value`].
struct ValueSerializer;

/// Uninhabited error: the value serializer cannot fail.
enum Never {}

struct MapBuilder(Vec<(String, Value)>);
struct SeqBuilder(Vec<Value>);

impl serde::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Never;
    type SerializeMap = MapBuilder;
    type SerializeSeq = SeqBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Never> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Never> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Never> {
        Ok(Value::Number(v as f64))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Never> {
        Ok(Value::Number(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Never> {
        Ok(Value::String(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Value, Never> {
        Ok(Value::Null)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, Never> {
        Ok(MapBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Never> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
}

impl serde::ser::SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = Never;

    fn serialize_entry<V: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &V,
    ) -> Result<(), Never> {
        self.0.push((key.to_string(), to_value(value)));
        Ok(())
    }

    fn end(self) -> Result<Value, Never> {
        Ok(Value::Object(self.0))
    }
}

impl serde::ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Never;

    fn serialize_element<V: Serialize + ?Sized>(&mut self, value: &V) -> Result<(), Never> {
        self.0.push(to_value(value));
        Ok(())
    }

    fn end(self) -> Result<Value, Never> {
        Ok(Value::Array(self.0))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_block(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Object(entries) => {
            write_block(out, indent, level, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1.5, "b": "x", "c": vec![1u32, 2] });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1.5,"b":"x","c":[1,2]}"#);
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "k": 2u32 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 2\n}");
    }

    #[test]
    fn numbers_round_trip_integers() {
        let mut s = String::new();
        write_number(&mut s, 3.0);
        assert_eq!(s, "3");
        let mut s2 = String::new();
        write_number(&mut s2, 0.25);
        assert_eq!(s2, "0.25");
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, r#""a\"b\\c\n""#);
    }

    #[test]
    fn vec_of_values_serializes() {
        let rows = vec![json!({ "x": 1u32 }), json!({ "x": 2u32 })];
        let s = to_string(&rows).unwrap();
        assert_eq!(s, r#"[{"x":1},{"x":2}]"#);
    }
}
