//! Random reverse-reachable set generation.
//!
//! A random RR set is produced by choosing a root `w` uniformly from `V`
//! and walking arcs *backwards*, keeping each arc `(v, u)` live with
//! probability `p_{v,u}` (§5.1). The set contains every node that reaches
//! `w` through live arcs — intuitively, the users whose adoption would
//! have reached `w`.
//!
//! The CTP-aware **RRC** variant (§5.2) additionally flips one node-level
//! coin per discovered node with its click-through probability `δ(v)`:
//! nodes failing the coin cannot be *seeds* for this sample (they are not
//! added to the set) but still transmit (they stay on the BFS frontier).

use crate::fastpath::FastPath;
use rand::Rng;
use tirm_graph::{DiGraph, NodeId};

/// Scratch buffers shared by consecutive samples (epoch-stamped marks).
#[derive(Clone, Debug)]
pub struct SampleWorkspace {
    epoch: u32,
    mark: Vec<u32>,
    queue: Vec<NodeId>,
    out: Vec<NodeId>,
    last_root: Option<NodeId>,
}

impl SampleWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        SampleWorkspace {
            epoch: 0,
            mark: vec![0; n],
            queue: Vec::with_capacity(256),
            out: Vec::with_capacity(64),
            last_root: None,
        }
    }

    /// Root node of the most recent sample drawn through this workspace,
    /// or `None` before the first draw. This is the supported way to
    /// observe the sampled root — for RRC sets the root may be CTP-blocked
    /// and therefore absent from the returned set.
    #[inline]
    pub fn last_root(&self) -> Option<NodeId> {
        self.last_root
    }

    /// Bytes held by the workspace (the O(n) mark array dominates) —
    /// feeds the long-lived owners' memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.mark.capacity() * 4 + (self.queue.capacity() + self.out.capacity()) * 4
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        self.queue.clear();
        self.out.clear();
        self.last_root = None;
    }
}

/// Samples RR / RRC sets for one ad (one projected probability vector).
/// Holds only borrows, so it is `Copy` — pass it around freely.
#[derive(Clone, Copy)]
pub struct RrSampler<'a> {
    g: &'a DiGraph,
    probs: &'a [f32],
}

impl<'a> RrSampler<'a> {
    /// Creates a sampler over `g` with per-arc probabilities `probs`
    /// (indexed by canonical edge id).
    pub fn new(g: &'a DiGraph, probs: &'a [f32]) -> Self {
        assert_eq!(probs.len(), g.num_edges());
        RrSampler { g, probs }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        self.g
    }

    /// The per-arc probabilities (indexed by canonical edge id).
    pub fn probs(&self) -> &'a [f32] {
        self.probs
    }

    /// Samples one classic RR set and returns it as a slice. The root is
    /// always a member (it trivially reaches itself). For plain RR sets
    /// the BFS queue *is* the output — every discovered node is a member
    /// — so no separate output buffer is kept (RRC sets differ: their
    /// members are the CTP-coin survivors, a subset of the queue).
    pub fn sample<'w, R: Rng>(&self, ws: &'w mut SampleWorkspace, rng: &mut R) -> &'w [NodeId] {
        let n = self.g.num_nodes();
        ws.begin();
        let root = rng.gen_range(0..n) as NodeId;
        ws.last_root = Some(root);
        ws.mark[root as usize] = ws.epoch;
        ws.queue.push(root);
        let mut head = 0;
        while head < ws.queue.len() {
            let u = ws.queue[head];
            head += 1;
            for (e, v) in self.g.in_edges(u) {
                if ws.mark[v as usize] == ws.epoch {
                    continue;
                }
                let p = self.probs[e as usize];
                if p > 0.0 && rng.gen::<f32>() < p {
                    ws.mark[v as usize] = ws.epoch;
                    ws.queue.push(v);
                }
            }
        }
        &ws.queue
    }

    /// [`RrSampler::sample`] through the precomputed [`FastPath`]:
    /// position-ordered integer thresholds instead of the edge-id prob
    /// gather, raw word draws instead of float coins, and (optionally)
    /// degree-relabeled mark indexing. Bit-identical to [`Self::sample`]
    /// for the vendored generators, whose `next_u32`/floats derive from
    /// the high bits of `next_u64` — each coin consumes exactly one word
    /// in both paths, and `t == 0 ⇔ p ≤ 0` skips without drawing just
    /// like the slow path's `p > 0.0 &&` short-circuit.
    pub fn sample_with<'w, R: Rng>(
        &self,
        fp: &FastPath,
        ws: &'w mut SampleWorkspace,
        rng: &mut R,
    ) -> &'w [NodeId] {
        let n = self.g.num_nodes();
        debug_assert_eq!(fp.thresholds().len(), self.g.in_sources_raw().len());
        ws.begin();
        let root = rng.gen_range(0..n) as NodeId;
        ws.last_root = Some(root);
        ws.queue.push(root);
        let th = fp.thresholds();
        let sources = self.g.in_sources_raw();
        let mut head = 0;
        match fp.in_sources_new() {
            // The two arms differ only in which array indexes `mark`;
            // arcs are walked in identical (original CSR) order and the
            // draw predicate is identical, so the RNG stream and the
            // emitted (original-id) sets agree bit-for-bit. Each in-run
            // is sliced once and walked through zipped slice iterators —
            // per-arc indexing would re-pay a bounds check on every
            // array, which is measurable at this loop's temperature.
            None => {
                ws.mark[root as usize] = ws.epoch;
                while head < ws.queue.len() {
                    let u = ws.queue[head];
                    head += 1;
                    let r = self.g.in_range(u);
                    for (&t, &v) in th[r.clone()].iter().zip(&sources[r]) {
                        if t == 0 {
                            continue;
                        }
                        if ws.mark[v as usize] == ws.epoch {
                            continue;
                        }
                        if ((rng.next_u64() >> 40) as u32) < t {
                            ws.mark[v as usize] = ws.epoch;
                            ws.queue.push(v);
                        }
                    }
                }
            }
            Some(marks) => {
                ws.mark[fp.mark_of(root) as usize] = ws.epoch;
                while head < ws.queue.len() {
                    let u = ws.queue[head];
                    head += 1;
                    let r = self.g.in_range(u);
                    let zipped = th[r.clone()].iter().zip(&marks[r.clone()]).zip(&sources[r]);
                    for ((&t, &m), &v) in zipped {
                        if t == 0 {
                            continue;
                        }
                        if ws.mark[m as usize] == ws.epoch {
                            continue;
                        }
                        if ((rng.next_u64() >> 40) as u32) < t {
                            ws.mark[m as usize] = ws.epoch;
                            ws.queue.push(v);
                        }
                    }
                }
            }
        }
        &ws.queue
    }

    /// Samples one **RRC** set (§5.2): node-level CTP coins decide set
    /// membership; failed nodes still relay influence.
    pub fn sample_rrc<'w, R: Rng>(
        &self,
        ctp: &[f32],
        ws: &'w mut SampleWorkspace,
        rng: &mut R,
    ) -> &'w [NodeId] {
        let n = self.g.num_nodes();
        debug_assert_eq!(ctp.len(), n);
        ws.begin();
        let root = rng.gen_range(0..n) as NodeId;
        ws.last_root = Some(root);
        ws.mark[root as usize] = ws.epoch;
        ws.queue.push(root);
        if rng.gen::<f32>() < ctp[root as usize] {
            ws.out.push(root);
        }
        let mut head = 0;
        while head < ws.queue.len() {
            let u = ws.queue[head];
            head += 1;
            for (e, v) in self.g.in_edges(u) {
                if ws.mark[v as usize] == ws.epoch {
                    continue;
                }
                let p = self.probs[e as usize];
                if p > 0.0 && rng.gen::<f32>() < p {
                    ws.mark[v as usize] = ws.epoch;
                    ws.queue.push(v);
                    // The CTP coin is drawn even when δ(v) is exactly 0
                    // or 1 and the outcome is a foregone conclusion:
                    // shards reuse one RNG across samples, so eliding a
                    // "deterministic" draw would shift every subsequent
                    // word in the stream. Real workloads pin δ ≡ 1.0
                    // (the paper's scalability setup) and δ ≈ 0, so the
                    // elision would silently rewrite those baselines for
                    // a sub-one-word-per-node saving. Pinned by
                    // `rrc_draw_count_is_ctp_independent` below.
                    if rng.gen::<f32>() < ctp[v as usize] {
                        ws.out.push(v);
                    }
                }
            }
        }
        &ws.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tirm_graph::generators;

    #[test]
    fn rr_set_always_contains_root_and_respects_reachability() {
        // Path 0→1→2 with p=1: RR set of root r is {0..=r}.
        let g = generators::path(3);
        let probs = vec![1.0f32; 2];
        let s = RrSampler::new(&g, &probs);
        let mut ws = SampleWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            let set = s.sample(&mut ws, &mut rng).to_vec();
            let root = set[0];
            let mut want: Vec<NodeId> = (0..=root).collect();
            let mut got = set.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "root {root}");
        }
    }

    #[test]
    fn zero_probability_yields_singletons() {
        let g = generators::clique(10);
        let probs = vec![0.0f32; g.num_edges()];
        let s = RrSampler::new(&g, &probs);
        let mut ws = SampleWorkspace::new(10);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(s.sample(&mut ws, &mut rng).len(), 1);
        }
    }

    #[test]
    fn node_frequency_estimates_spread() {
        // Proposition 1: n·E[F_R({u})] = σ_ic({u}). For a star hub with
        // p = 0.3 and n = 21: σ({hub}) = 1 + 20·0.3 = 7.
        let n = 21usize;
        let g = generators::star(n);
        let probs = vec![0.3f32; g.num_edges()];
        let s = RrSampler::new(&g, &probs);
        let mut ws = SampleWorkspace::new(n);
        let mut rng = SmallRng::seed_from_u64(7);
        let samples = 60_000;
        let mut hub_hits = 0usize;
        for _ in 0..samples {
            if s.sample(&mut ws, &mut rng).contains(&0) {
                hub_hits += 1;
            }
        }
        let est = n as f64 * hub_hits as f64 / samples as f64;
        assert!((est - 7.0).abs() < 0.15, "estimated {est}, want 7");
    }

    #[test]
    fn rrc_membership_scaled_by_ctp() {
        // Same star; hub CTP 0.5 ⇒ σ_ctp({hub}) = 0.5·7 = 3.5 (Lemma 2).
        let n = 21usize;
        let g = generators::star(n);
        let probs = vec![0.3f32; g.num_edges()];
        let mut ctp = vec![1.0f32; n];
        ctp[0] = 0.5;
        let s = RrSampler::new(&g, &probs);
        let mut ws = SampleWorkspace::new(n);
        let mut rng = SmallRng::seed_from_u64(11);
        let samples = 60_000;
        let mut hub_hits = 0usize;
        for _ in 0..samples {
            if s.sample_rrc(&ctp, &mut ws, &mut rng).contains(&0) {
                hub_hits += 1;
            }
        }
        let est = n as f64 * hub_hits as f64 / samples as f64;
        assert!((est - 3.5).abs() < 0.12, "estimated {est}, want 3.5");
    }

    /// RNG wrapper counting consumed words — for pinning draw-count
    /// invariants.
    struct CountingRng {
        inner: SmallRng,
        draws: u64,
    }

    impl rand::RngCore for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    #[test]
    fn rrc_draw_count_is_ctp_independent() {
        // Every CTP coin must consume one RNG word even when δ(v) is 0 or
        // 1 — eliding foregone draws would desync the per-shard streams
        // that deterministic baselines (δ ≡ 1.0 scalability workloads)
        // are pinned to. On a p=1 path rooted at r the walk discovers
        // r+1 nodes over r arcs, so a sample costs exactly
        // 1 (root) + r (arc coins) + (r+1) (CTP coins) = 2r + 2 words,
        // independent of the δ values.
        let g = generators::path(6);
        let probs = vec![1.0f32; g.num_edges()];
        let s = RrSampler::new(&g, &probs);
        let mut ws = SampleWorkspace::new(6);
        for ctps in [vec![1.0f32; 6], vec![0.0f32; 6], vec![0.37f32; 6]] {
            let mut rng = CountingRng {
                inner: SmallRng::seed_from_u64(17),
                draws: 0,
            };
            for _ in 0..40 {
                let before = rng.draws;
                s.sample_rrc(&ctps, &mut ws, &mut rng);
                let root = ws.last_root().unwrap() as u64;
                assert_eq!(rng.draws - before, 2 * root + 2, "ctp={:?}", ctps[0]);
            }
        }
    }

    #[test]
    fn fast_path_matches_slow_path_bit_for_bit() {
        // sample_with must replay sample's RNG stream and output exactly,
        // under both the identity and the degree-relabeled layouts, for a
        // prob vector exercising the p = 0 skip and the p = 1 sure-coin.
        use crate::fastpath::{BlockRng, FastPath, SamplingLayout};
        use std::sync::Arc;

        let g = generators::preferential_attachment(400, 4, 0.3, 21);
        let mut probs: Vec<f32> = (0..g.num_edges())
            .map(|e| ((e * 2_654_435_761) % 1000) as f32 / 999.0)
            .collect();
        for (i, p) in probs.iter_mut().enumerate() {
            if i % 7 == 0 {
                *p = 0.0;
            } else if i % 11 == 0 {
                *p = 1.0;
            }
        }
        let s = RrSampler::new(&g, &probs);
        let layouts = [
            Arc::new(SamplingLayout::identity()),
            Arc::new(SamplingLayout::degree_ordered(&g)),
        ];
        for layout in layouts {
            let fp = FastPath::new(layout, &g, &probs);
            let mut ws_a = SampleWorkspace::new(400);
            let mut ws_b = SampleWorkspace::new(400);
            let mut rng_a = SmallRng::seed_from_u64(5);
            // The fast side also runs through BlockRng, proving the full
            // production stack (thresholds + blocks + relabel) at once.
            let mut rng_b = BlockRng::seed_from_u64(5);
            for i in 0..300 {
                let a = s.sample(&mut ws_a, &mut rng_a).to_vec();
                let b = s.sample_with(&fp, &mut ws_b, &mut rng_b).to_vec();
                assert_eq!(a, b, "sample {i}");
                assert_eq!(ws_a.last_root(), ws_b.last_root());
            }
        }
    }

    #[test]
    fn rrc_blocked_nodes_still_relay() {
        // Path 0→1→2, p=1, δ(1)=0, δ(0)=δ(2)=1. RR sets rooted at 2 must
        // still contain 0 (1 relays even though it can't seed).
        let g = generators::path(3);
        let probs = vec![1.0f32; 2];
        let ctp = vec![1.0f32, 0.0, 1.0];
        let s = RrSampler::new(&g, &probs);
        let mut ws = SampleWorkspace::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut saw_root2 = false;
        for _ in 0..200 {
            let set = s.sample_rrc(&ctp, &mut ws, &mut rng).to_vec();
            // Detect the root through the public API — the RRC root may be
            // CTP-blocked and absent from the set, so peeking at private
            // scratch state would be both fragile and wrong.
            if ws.last_root() == Some(2) {
                saw_root2 = true;
                assert!(set.contains(&0), "0 must relay through blocked 1");
                assert!(!set.contains(&1), "1 is CTP-blocked");
            }
        }
        assert!(saw_root2, "root 2 never sampled in 200 draws");
    }
}
