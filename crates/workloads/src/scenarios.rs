//! Declarative scenario matrix for the perf suite.
//!
//! The paper's evaluation (§6, Tables 2–4, Fig. 6) is a grid — data sets ×
//! probability models × allocators × parameters. [`ScenarioSpec`] names one
//! cell of that grid declaratively; [`Tier`] enumerates the grids we run:
//! `quick` is small enough for a CI regression gate (< 5 min on one CPU),
//! `full` approaches the paper's scales for real measurement. The runner
//! lives in `tirm_bench::suite`; this module owns only the *what*, so new
//! scenarios are added by editing a list, not a harness.

use crate::datasets::{DatasetKind, ProbModel};
use crate::scale::{default_threads, ScaleConfig};

/// Which allocation algorithm a scenario exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// TIRM (Algorithm 2) — the paper's scalable RR-set allocator.
    Tirm,
    /// Algorithm 1 with Monte-Carlo spread estimates ("Greedy"). Accurate
    /// but so slow the suite caps its total seeds (`ScenarioSpec::seed_cap`).
    Greedy,
    /// GREEDY-IRIE — Algorithm 1 with the IRIE heuristic oracle.
    GreedyIrie,
}

impl AllocatorKind {
    /// Name used in scenario ids and figure legends.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Tirm => "TIRM",
            AllocatorKind::Greedy => "GREEDY",
            AllocatorKind::GreedyIrie => "IRIE",
        }
    }
}

/// One cell of the scenario grid. Everything that affects the *problem* is
/// here; everything that affects fidelity (graph scale, MC evaluation
/// runs) comes from the tier's [`ScaleConfig`], so the same spec list
/// serves both tiers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Network shape.
    pub dataset: DatasetKind,
    /// Arc-probability model (canonical or crossed).
    pub model: ProbModel,
    /// Algorithm under test.
    pub allocator: AllocatorKind,
    /// Worker threads for the allocator and evaluation. Part of the cell
    /// identity: parallel MC evaluation partitions RNG streams by thread,
    /// so metric payloads are only comparable at equal thread counts.
    pub threads: usize,
    /// Attention bound κ.
    pub kappa: u32,
    /// Penalty λ.
    pub lambda: f64,
    /// Total-seed cap for the Greedy-MC allocator (`None` elsewhere): the
    /// paper calls Greedy "prohibitively slow"; the cap keeps its cells
    /// bounded while still measuring per-seed cost and early quality.
    pub seed_cap: Option<usize>,
    /// Online serving cell: instead of one batch allocation, the runner
    /// replays a generated event stream through the `tirm_online` engine
    /// and stamps latency percentiles + events/s. `allocator` is `Tirm`
    /// (the engine *is* TIRM under the hood) and the cell id lives in its
    /// own `ONLINE/...` namespace.
    pub online: bool,
    /// Network serving cell: the runner boots a real `tirm_server` on a
    /// loopback port, drives it with the load generator (mutation stream
    /// in deterministic-delivery mode + a concurrent reader pool), and
    /// stamps wire latencies, read-path percentiles and the shed rate.
    /// Ids live in the `SERVING/...` namespace.
    pub serving: bool,
    /// Replicated network-serving cell: like `serving`, but the runner
    /// boots a durable leader *plus* a WAL-shipping follower and routes
    /// part of the reader pool at the follower — stamping follower read
    /// throughput and replication lag alongside the serving metrics.
    /// Ids live in the `SERVING-REPL/...` namespace.
    pub serving_repl: bool,
}

impl ScenarioSpec {
    /// A canonical-model TIRM cell; the matrix builders tweak from here.
    fn base(dataset: DatasetKind) -> ScenarioSpec {
        ScenarioSpec {
            dataset,
            model: ProbModel::canonical(dataset),
            allocator: AllocatorKind::Tirm,
            threads: 1,
            kappa: 1,
            lambda: 0.0,
            seed_cap: None,
            online: false,
            serving: false,
            serving_repl: false,
        }
    }

    /// An online-serving cell over the dataset's canonical model.
    fn online(dataset: DatasetKind, kappa: u32) -> ScenarioSpec {
        ScenarioSpec {
            kappa,
            online: true,
            ..ScenarioSpec::base(dataset)
        }
    }

    /// A network-serving cell (real TCP server + load generator) over
    /// the dataset's canonical model.
    fn serving(dataset: DatasetKind, kappa: u32) -> ScenarioSpec {
        ScenarioSpec {
            kappa,
            serving: true,
            ..ScenarioSpec::base(dataset)
        }
    }

    /// A replicated network-serving cell (leader + WAL-shipping
    /// follower, reader pool split across both) over the dataset's
    /// canonical model.
    fn serving_repl(dataset: DatasetKind, kappa: u32) -> ScenarioSpec {
        ScenarioSpec {
            kappa,
            serving_repl: true,
            ..ScenarioSpec::base(dataset)
        }
    }

    /// Stable cell identity, the join key between two baseline files:
    /// `DATASET/model/ALLOCATOR/t<threads>/k<kappa>/l<lambda>`,
    /// `ONLINE/DATASET/model/t…/k…/l…` for in-process serving cells,
    /// `SERVING/DATASET/model/t…/k…/l…` for network serving cells, or
    /// `SERVING-REPL/DATASET/model/t…/k…/l…` for replicated ones.
    pub fn id(&self) -> String {
        if self.online || self.serving || self.serving_repl {
            return format!(
                "{}/{}/{}/t{}/k{}/l{}",
                if self.serving_repl {
                    "SERVING-REPL"
                } else if self.serving {
                    "SERVING"
                } else {
                    "ONLINE"
                },
                self.dataset.name(),
                self.model.name(),
                self.threads,
                self.kappa,
                self.lambda
            );
        }
        format!(
            "{}/{}/{}/t{}/k{}/l{}",
            self.dataset.name(),
            self.model.name(),
            self.allocator.name(),
            self.threads,
            self.kappa,
            self.lambda
        )
    }

    /// Deterministic per-cell RNG seed: a stable FNV-1a hash of the id
    /// mixed with the suite's base seed, so adding or reordering scenarios
    /// never changes any other cell's stream.
    pub fn seed(&self, base_seed: u64) -> u64 {
        fnv(&self.id()) ^ base_seed
    }

    /// Seed for *problem generation* (graph, probabilities, campaign,
    /// CTPs): hashes only the `(dataset, model)` pair, so every allocator
    /// and thread count in the matrix is measured on the identical
    /// instance and their quality metrics are directly comparable.
    pub fn problem_seed(&self, base_seed: u64) -> u64 {
        fnv(&format!("{}/{}", self.dataset.name(), self.model.name())) ^ base_seed
    }

    /// True for the §6.1-style quality setup (Table 2 campaigns, sampled
    /// CTPs); false for the §6.2 scalability setup (uniform competition,
    /// CPE = CTP = 1).
    pub fn is_quality(&self) -> bool {
        matches!(self.dataset, DatasetKind::Flixster | DatasetKind::Epinions)
    }
}

/// Stable FNV-1a hash (not `DefaultHasher`, whose output may change
/// across std releases — these seeds are baked into committed baselines).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Named scenario grids with fidelity presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized: every axis represented, minutes on one CPU.
    Quick,
    /// Default-scale grid (`TIRM_SCALE = 1`, 10 000 evaluation runs).
    Full,
    /// Table-1-scale scalability grid (§6.2): LIVEJOURNAL at the paper's
    /// 4.8M nodes / ~69M arcs via the streaming build, snapshot-cached.
    /// MC evaluation is skipped (`eval_runs = 0`) — these cells measure
    /// ingestion, allocation time and memory, like the paper's Fig. 6 /
    /// Table 4, not regret.
    Paper,
    /// The online serving grid: event-stream replay cells across
    /// datasets, attention bounds and thread counts, quick-tier fidelity
    /// (CI-runnable; raise `TIRM_SCALE` for real measurement). The quick
    /// and full tiers each embed a subset of these cells so the PR gate
    /// and the nightly watch the serving layer by default.
    Online,
    /// The network serving grid: each cell boots a real `tirm_server`
    /// on a loopback port and drives it with the load generator
    /// (deterministic-delivery mutations + a concurrent reader pool),
    /// stamping wire latency percentiles, read-path p99 and the shed
    /// rate. Quick-tier fidelity; the quick tier embeds one of these
    /// cells so the PR gate watches the network frontend.
    Serving,
}

impl Tier {
    /// Tier name as used on the `perf_suite --tier` flag and in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
            Tier::Paper => "paper",
            Tier::Online => "online",
            Tier::Serving => "serving",
        }
    }

    /// Parses a `--tier` argument.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "quick" => Some(Tier::Quick),
            "full" => Some(Tier::Full),
            "paper" => Some(Tier::Paper),
            "online" => Some(Tier::Online),
            "serving" => Some(Tier::Serving),
            _ => None,
        }
    }

    /// Fidelity defaults for the tier. Environment variables (`TIRM_SCALE`
    /// etc.) still override these — see [`ScaleConfig::with_env_overrides`].
    pub fn scale_defaults(self) -> ScaleConfig {
        match self {
            // Threads here is the *default* per-cell thread count; specs
            // with an explicit threads axis ignore it. 1 keeps quick-tier
            // metric payloads machine-independent.
            Tier::Quick => ScaleConfig {
                scale: 0.08,
                eval_runs: 200,
                threads: 1,
            },
            Tier::Full => ScaleConfig {
                scale: 1.0,
                eval_runs: 10_000,
                threads: default_threads(),
            },
            // ×40 lifts LIVEJOURNAL's 120k default to the paper's 4.8M
            // (DBLP lands at 1.6M, a superset of its 317k). eval_runs = 0
            // disables MC evaluation — only tier defaults can express 0;
            // the TIRM_EVAL_RUNS override floors at 10.
            Tier::Paper => ScaleConfig {
                scale: 40.0,
                eval_runs: 0,
                threads: default_threads(),
            },
            // Serving cells replay dozens of events, each a
            // re-allocation — quick-tier fidelity keeps the whole grid
            // CI-sized; TIRM_SCALE raises it for real measurement.
            Tier::Online | Tier::Serving => ScaleConfig {
                scale: 0.08,
                eval_runs: 200,
                threads: 1,
            },
        }
    }

    /// Seed cap for Greedy-MC cells at this tier (the paper grid has no
    /// Greedy-MC cells — the paper itself calls it prohibitively slow).
    fn greedy_cap(self) -> usize {
        match self {
            Tier::Quick | Tier::Online | Tier::Serving => 20,
            Tier::Full | Tier::Paper => 60,
        }
    }

    /// The dedicated online-serving grid: quality datasets at κ where the
    /// delta path gets room (κ ≥ 2, distinct topics) plus the §6.2
    /// full-competition setups at κ = 1 (every event a warm full re-run)
    /// and a threads axis.
    fn online_matrix() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::online(DatasetKind::Flixster, 2),
            ScenarioSpec::online(DatasetKind::Epinions, 2),
            ScenarioSpec::online(DatasetKind::Epinions, 1),
            ScenarioSpec {
                threads: 2,
                ..ScenarioSpec::online(DatasetKind::Epinions, 2)
            },
            ScenarioSpec::online(DatasetKind::Dblp, 1),
        ]
    }

    /// The dedicated network-serving grid: the quality serving pair
    /// (delta-path room at κ = 2) plus a fully-contended EPINIONS cell
    /// and the §6.2 full-competition DBLP setup — each cell a real
    /// server + load generator on loopback.
    fn serving_matrix() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::serving(DatasetKind::Epinions, 2),
            ScenarioSpec::serving(DatasetKind::Flixster, 2),
            ScenarioSpec::serving(DatasetKind::Epinions, 1),
            ScenarioSpec::serving(DatasetKind::Dblp, 1),
            ScenarioSpec::serving_repl(DatasetKind::Epinions, 2),
            ScenarioSpec::serving_repl(DatasetKind::Dblp, 1),
        ]
    }

    /// Enumerates the tier's scenario grid, in a stable order.
    pub fn matrix(self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::new();
        if self == Tier::Online {
            return Self::online_matrix();
        }
        if self == Tier::Serving {
            return Self::serving_matrix();
        }
        if self == Tier::Paper {
            // §6.2 scalability block at Table-1 scale, Weighted-Cascade,
            // full competition. GREEDY-IRIE only on the DBLP-like network
            // — the paper excludes it on LIVEJOURNAL for running time.
            specs.push(ScenarioSpec::base(DatasetKind::Dblp));
            specs.push(ScenarioSpec {
                allocator: AllocatorKind::GreedyIrie,
                ..ScenarioSpec::base(DatasetKind::Dblp)
            });
            specs.push(ScenarioSpec::base(DatasetKind::LiveJournal));
            specs.push(ScenarioSpec {
                threads: 2,
                ..ScenarioSpec::base(DatasetKind::LiveJournal)
            });
            return specs;
        }
        let quality = [DatasetKind::Flixster, DatasetKind::Epinions];
        let models = [
            ProbModel::TopicConcentrated,
            ProbModel::Exponential,
            ProbModel::WeightedCascade,
        ];

        // Quality block: both quality networks crossed with all three
        // probability models, TIRM vs GREEDY-IRIE.
        for dataset in quality {
            for model in models {
                for allocator in [AllocatorKind::Tirm, AllocatorKind::GreedyIrie] {
                    specs.push(ScenarioSpec {
                        model,
                        allocator,
                        ..ScenarioSpec::base(dataset)
                    });
                }
            }
        }

        // Greedy-MC reference cells. Only the §6.2 full-competition setup
        // (CPE = CTP = 1) is feasible for Algorithm 1 with MC estimates:
        // on the quality setups the 1–3% CTPs push per-seed marginals far
        // below what CI-sized MC run counts can resolve — which is also
        // why the paper's §6.1 figures exclude Greedy. κ is the second
        // axis so the attention bound is exercised beyond 1.
        for kappa in [1u32, 2] {
            specs.push(ScenarioSpec {
                allocator: AllocatorKind::Greedy,
                seed_cap: Some(self.greedy_cap()),
                kappa,
                ..ScenarioSpec::base(DatasetKind::Dblp)
            });
        }

        // Scalability block (§6.2): Weighted-Cascade, full competition.
        // GREEDY-IRIE is skipped on LIVEJOURNAL exactly as in the paper.
        let scal_threads: &[usize] = match self {
            Tier::Quick => &[1, 2],
            // Paper, Online and Serving early-returned above; the arm
            // only satisfies match exhaustiveness.
            Tier::Full | Tier::Paper | Tier::Online | Tier::Serving => &[1, 2, 4],
        };
        for dataset in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
            for &threads in scal_threads {
                specs.push(ScenarioSpec {
                    threads,
                    ..ScenarioSpec::base(dataset)
                });
            }
        }
        specs.push(ScenarioSpec {
            allocator: AllocatorKind::GreedyIrie,
            ..ScenarioSpec::base(DatasetKind::Dblp)
        });

        if self == Tier::Full {
            // Parameter sweep: attention bound and penalty on FLIXSTER
            // (Fig. 3/4 territory), TIRM only.
            for kappa in [2u32, 4] {
                specs.push(ScenarioSpec {
                    kappa,
                    ..ScenarioSpec::base(DatasetKind::Flixster)
                });
            }
            for lambda in [0.5, 1.0] {
                specs.push(ScenarioSpec {
                    lambda,
                    ..ScenarioSpec::base(DatasetKind::Flixster)
                });
            }
            // Thread scaling on the quality side too.
            for dataset in quality {
                specs.push(ScenarioSpec {
                    threads: 2,
                    ..ScenarioSpec::base(dataset)
                });
            }
        }

        // Serving cells ride along in the gated tiers so the PR gate
        // (quick) and the nightly (full) watch both serving layers by
        // default; the dedicated `online` / `serving` tiers hold the
        // full grids. The network cell shares (dataset, model) with
        // batch cells, so the suite reuses the materialised instance.
        match self {
            Tier::Quick => {
                specs.push(ScenarioSpec::online(DatasetKind::Epinions, 2));
                specs.push(ScenarioSpec::serving(DatasetKind::Epinions, 2));
                specs.push(ScenarioSpec::serving_repl(DatasetKind::Epinions, 2));
            }
            Tier::Full => {
                specs.push(ScenarioSpec::online(DatasetKind::Epinions, 2));
                specs.push(ScenarioSpec::online(DatasetKind::Dblp, 1));
                specs.push(ScenarioSpec::serving(DatasetKind::Epinions, 2));
                specs.push(ScenarioSpec::serving_repl(DatasetKind::Epinions, 2));
            }
            Tier::Paper | Tier::Online | Tier::Serving => {}
        }

        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn quick_matrix_covers_every_axis() {
        let specs = Tier::Quick.matrix();
        assert!(specs.len() >= 18, "quick grid too small: {}", specs.len());
        let datasets: HashSet<_> = specs.iter().map(|s| s.dataset).collect();
        assert_eq!(datasets.len(), 4, "all four networks present");
        let models: HashSet<_> = specs.iter().map(|s| s.model).collect();
        assert_eq!(models.len(), 3, "all three probability models present");
        let allocators: HashSet<_> = specs.iter().map(|s| s.allocator).collect();
        assert_eq!(allocators.len(), 3, "all three allocators present");
        assert!(specs.iter().any(|s| s.threads > 1), "a threads>1 cell");
    }

    #[test]
    fn paper_tier_is_a_scalability_grid() {
        let specs = Tier::Paper.matrix();
        assert!(!specs.is_empty());
        for s in &specs {
            assert_eq!(s.model, ProbModel::WeightedCascade, "§6.2 is WC-only");
            assert!(!s.is_quality());
            assert_ne!(s.allocator, AllocatorKind::Greedy);
        }
        assert!(
            specs.iter().any(
                |s| s.dataset == DatasetKind::LiveJournal && s.allocator == AllocatorKind::Tirm
            ),
            "the tier exists to exercise LIVEJOURNAL at paper scale"
        );
        assert!(
            !specs.iter().any(|s| s.dataset == DatasetKind::LiveJournal
                && s.allocator == AllocatorKind::GreedyIrie),
            "paper excludes IRIE on LIVEJOURNAL"
        );
        let cfg = Tier::Paper.scale_defaults();
        assert!(
            cfg.nodes(DatasetKind::LiveJournal.default_nodes()) >= 4_000_000,
            "paper tier must reach Table-1 LIVEJOURNAL size"
        );
        assert_eq!(cfg.eval_runs, 0, "scalability cells skip MC evaluation");
    }

    #[test]
    fn online_grid_shape() {
        let specs = Tier::Online.matrix();
        assert!(specs.len() >= 4);
        assert!(specs.iter().all(|s| s.online), "a pure serving grid");
        assert!(
            specs.iter().all(|s| s.id().starts_with("ONLINE/")),
            "serving cells live in their own id namespace"
        );
        assert!(
            specs.iter().any(|s| s.kappa >= 2),
            "a cell where the delta path has room"
        );
        assert!(
            specs.iter().any(|s| s.kappa == 1),
            "a fully-contended cell (warm full re-runs)"
        );
        assert!(specs.iter().any(|s| s.threads > 1), "a threads axis");
        let cfg = Tier::Online.scale_defaults();
        assert!(cfg.scale <= 0.2 && cfg.eval_runs <= 1000, "CI-sized");
    }

    #[test]
    fn gated_tiers_embed_online_and_serving_cells() {
        for tier in [Tier::Quick, Tier::Full] {
            let specs = tier.matrix();
            assert!(
                specs.iter().any(|s| s.online),
                "{tier:?} must watch the serving layer"
            );
            assert!(
                specs.iter().any(|s| s.serving),
                "{tier:?} must watch the network frontend"
            );
            // Serving cells share (dataset, model) with batch cells, so
            // the suite reuses the materialised dataset.
            for s in specs.iter().filter(|s| s.online || s.serving) {
                assert!(specs.iter().any(|b| !b.online
                    && !b.serving
                    && b.dataset == s.dataset
                    && b.model == s.model));
            }
        }
        assert!(!Tier::Paper.matrix().iter().any(|s| s.online || s.serving));
    }

    #[test]
    fn serving_grid_shape() {
        let specs = Tier::Serving.matrix();
        assert!(specs.len() >= 4);
        assert!(specs
            .iter()
            .all(|s| (s.serving ^ s.serving_repl) && !s.online));
        assert!(specs
            .iter()
            .all(|s| s.id().starts_with("SERVING/") || s.id().starts_with("SERVING-REPL/")));
        assert!(
            specs.iter().any(|s| s.serving_repl),
            "the serving tier must watch replication"
        );
        assert!(
            specs.iter().any(|s| s.kappa >= 2) && specs.iter().any(|s| s.kappa == 1),
            "both delta-path room and full contention"
        );
        let cfg = Tier::Serving.scale_defaults();
        assert!(cfg.scale <= 0.2 && cfg.eval_runs <= 1000, "CI-sized");
        // The namespaces never collide even at equal parameters.
        let online = ScenarioSpec::online(DatasetKind::Epinions, 2);
        let serving = ScenarioSpec::serving(DatasetKind::Epinions, 2);
        assert_ne!(online.id(), serving.id());
        assert_ne!(online.seed(7), serving.seed(7));
    }

    #[test]
    fn ids_are_unique_join_keys() {
        for tier in [
            Tier::Quick,
            Tier::Full,
            Tier::Paper,
            Tier::Online,
            Tier::Serving,
        ] {
            let specs = tier.matrix();
            let ids: HashSet<_> = specs.iter().map(|s| s.id()).collect();
            assert_eq!(ids.len(), specs.len(), "duplicate id in {tier:?}");
        }
    }

    #[test]
    fn id_shape_and_seed_stability() {
        let spec = ScenarioSpec::base(DatasetKind::Epinions);
        assert_eq!(spec.id(), "EPINIONS/exp/TIRM/t1/k1/l0");
        assert_eq!(spec.seed(7), spec.seed(7));
        assert_ne!(spec.seed(7), spec.seed(8));
        let other = ScenarioSpec { threads: 2, ..spec };
        assert_ne!(spec.seed(7), other.seed(7), "id feeds the seed");
    }

    #[test]
    fn problem_seed_shared_across_allocators() {
        let tirm = ScenarioSpec::base(DatasetKind::Flixster);
        let irie = ScenarioSpec {
            allocator: AllocatorKind::GreedyIrie,
            threads: 2,
            ..tirm
        };
        assert_eq!(
            tirm.problem_seed(7),
            irie.problem_seed(7),
            "same (dataset, model) ⇒ same instance"
        );
        let exp = ScenarioSpec {
            model: ProbModel::Exponential,
            ..tirm
        };
        assert_ne!(tirm.problem_seed(7), exp.problem_seed(7));
    }

    #[test]
    fn greedy_cells_are_capped() {
        for tier in [
            Tier::Quick,
            Tier::Full,
            Tier::Paper,
            Tier::Online,
            Tier::Serving,
        ] {
            for s in tier.matrix() {
                if s.allocator == AllocatorKind::Greedy {
                    assert!(s.seed_cap.is_some(), "uncapped Greedy-MC cell");
                } else {
                    assert!(s.seed_cap.is_none());
                }
            }
        }
    }

    #[test]
    fn tier_parse_round_trips() {
        for tier in [
            Tier::Quick,
            Tier::Full,
            Tier::Paper,
            Tier::Online,
            Tier::Serving,
        ] {
            assert_eq!(Tier::parse(tier.name()), Some(tier));
        }
        assert_eq!(Tier::parse("nightly"), None);
    }

    #[test]
    fn quick_defaults_are_ci_sized() {
        let cfg = Tier::Quick.scale_defaults();
        assert!(cfg.scale < 0.2);
        assert!(cfg.eval_runs <= 1000);
        assert_eq!(cfg.threads, 1);
    }
}
