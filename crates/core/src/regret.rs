//! Regret arithmetic (Eq. 3–4) and per-ad regret reports.

use serde::Serialize;

/// Budget-regret: `|B − Π|` (the first term of Eq. 3).
#[inline]
pub fn budget_regret(target_budget: f64, revenue: f64) -> f64 {
    (target_budget - revenue).abs()
}

/// Overall regret for one ad: `|B − Π| + λ·|S|` (Eq. 3).
#[inline]
pub fn ad_regret(target_budget: f64, revenue: f64, lambda: f64, num_seeds: usize) -> f64 {
    budget_regret(target_budget, revenue) + lambda * num_seeds as f64
}

/// Regret decomposition for one advertiser.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct AdRegret {
    /// The (boosted) target budget `B'_i`.
    pub budget: f64,
    /// Expected revenue `Π_i(S_i)`.
    pub revenue: f64,
    /// Number of seeds `|S_i|`.
    pub seeds: usize,
    /// `|B'_i − Π_i|`.
    pub budget_regret: f64,
    /// `λ·|S_i|`.
    pub seed_regret: f64,
}

impl AdRegret {
    /// Builds the decomposition.
    pub fn new(budget: f64, revenue: f64, lambda: f64, seeds: usize) -> Self {
        AdRegret {
            budget,
            revenue,
            seeds,
            budget_regret: budget_regret(budget, revenue),
            seed_regret: lambda * seeds as f64,
        }
    }

    /// `R_i(S_i)` (Eq. 3).
    #[inline]
    pub fn total(&self) -> f64 {
        self.budget_regret + self.seed_regret
    }

    /// Signed slack `Π − B'`: positive = overshoot (free service),
    /// negative = undershoot (lost opportunity). The Fig. 5 metric.
    #[inline]
    pub fn signed_slack(&self) -> f64 {
        self.revenue - self.budget
    }
}

/// Regret report for a whole allocation (Eq. 4 plus diagnostics).
#[derive(Clone, Debug, Serialize)]
pub struct RegretReport {
    /// Per-advertiser decomposition.
    pub per_ad: Vec<AdRegret>,
}

impl RegretReport {
    /// Builds the report from per-ad `(B'_i, Π_i, |S_i|)` tuples.
    pub fn new(rows: impl IntoIterator<Item = (f64, f64, usize)>, lambda: f64) -> Self {
        RegretReport {
            per_ad: rows
                .into_iter()
                .map(|(b, r, s)| AdRegret::new(b, r, lambda, s))
                .collect(),
        }
    }

    /// Overall regret `R(S) = Σ_i R_i(S_i)` (Eq. 4).
    pub fn total(&self) -> f64 {
        self.per_ad.iter().map(|a| a.total()).sum()
    }

    /// Total budget `B = Σ_i B'_i` — the yardstick of Theorems 2–4.
    pub fn total_budget(&self) -> f64 {
        self.per_ad.iter().map(|a| a.budget).sum()
    }

    /// Total expected revenue.
    pub fn total_revenue(&self) -> f64 {
        self.per_ad.iter().map(|a| a.revenue).sum()
    }

    /// Regret as a fraction of total budget (the §6.1 headline metric:
    /// "2.5%, 26.1%, 122%, 141% … relative to the total budget").
    pub fn relative_regret(&self) -> f64 {
        let b = self.total_budget();
        if b == 0.0 {
            0.0
        } else {
            self.total() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_allocation_a() {
        // Fig. 1 / Example 1, λ = 0: budgets (4,2,2,1); revenues (5.6,0,0,0)
        // (rounded to the first decimal as in the paper) → regret 6.6.
        let report = RegretReport::new(
            vec![(4.0, 5.6, 6), (2.0, 0.0, 0), (2.0, 0.0, 0), (1.0, 0.0, 0)],
            0.0,
        );
        assert!((report.total() - 6.6).abs() < 1e-9);
    }

    #[test]
    fn example_1_allocation_b() {
        // Allocation B: revenues (2.5, 1.7, 1.5, 0.6) → regret 2.7.
        let report = RegretReport::new(
            vec![(4.0, 2.5, 2), (2.0, 1.7, 1), (2.0, 1.5, 2), (1.0, 0.6, 1)],
            0.0,
        );
        assert!((report.total() - 2.7).abs() < 1e-9);
    }

    #[test]
    fn example_2_lambda_penalty() {
        // Example 2: with λ = 0.1 and 6 seeds, regrets become 7.2 and 3.3.
        let a = RegretReport::new(
            vec![(4.0, 5.6, 6), (2.0, 0.0, 0), (2.0, 0.0, 0), (1.0, 0.0, 0)],
            0.1,
        );
        assert!((a.total() - 7.2).abs() < 1e-9);
        let b = RegretReport::new(
            vec![(4.0, 2.5, 2), (2.0, 1.7, 1), (2.0, 1.5, 2), (1.0, 0.6, 1)],
            0.1,
        );
        assert!((b.total() - 3.3).abs() < 1e-9);
    }

    #[test]
    fn slack_sign_convention() {
        let r = AdRegret::new(10.0, 12.0, 0.0, 3);
        assert!(r.signed_slack() > 0.0, "overshoot positive");
        let r2 = AdRegret::new(10.0, 7.0, 0.5, 4);
        assert!(r2.signed_slack() < 0.0);
        assert!((r2.total() - (3.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn relative_regret() {
        let r = RegretReport::new(vec![(100.0, 95.0, 0), (100.0, 105.0, 0)], 0.0);
        assert!((r.relative_regret() - 0.05).abs() < 1e-12);
        assert!((r.total_revenue() - 200.0).abs() < 1e-12);
    }
}
