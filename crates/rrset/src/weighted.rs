//! CTP-weighted RR-set coverage.
//!
//! Algorithm 2 (line 12) of the paper removes every RR set covered by a
//! freshly chosen seed. That is exact when seeds click with probability 1
//! (the scalability setup, §6.2): a covering seed then activates the
//! set's root for sure. With click-through probabilities `δ ≪ 1`,
//! however, a chosen seed only "covers" a set with probability `δ` — the
//! exact possible-world bookkeeping multiplies the set's weight by
//! `(1 − δ)` instead of dropping it:
//!
//! * set weight `w_R = Π_{s ∈ S ∩ R} (1 − δ(s))` — probability that no
//!   already-chosen seed in `R` clicks;
//! * node score `score(v) = Σ_{R ∋ v} w_R` — so the exact marginal revenue
//!   of candidate `v` is `cpe · n · δ(v) · score(v) / θ`;
//! * `deficit = Σ_R (1 − w_R)` — so `n · deficit / θ` estimates
//!   `σ_ctp(S)` without bias (each root clicks iff some seed in its RR
//!   set clicks: probability `1 − w_R`).
//!
//! At `δ = 1` weights drop to 0 and this degenerates to the paper's
//! hard removal, so the weighted collection strictly generalises
//! [`crate::RrCollection`]. The difference at small CTPs is measured by
//! the `ablation` harness binary.
//!
//! # Warm reuse: the active window
//!
//! Storage and postings live in a shared [`RrIndex`], and the overlay only
//! *activates* a prefix of the stored sets: `num_sets()` counts active
//! sets (θ as the algorithms see it), while the index may cache more. The
//! online serving layer exploits this: a persistent per-ad `RrIndex`
//! survives across re-allocations, each re-allocation wraps it in a fresh
//! overlay ([`WeightedRrCollection::from_index`]), re-activates the prefix
//! it needs ([`WeightedRrCollection::activate_next`] — bit-identical to
//! having sampled those sets, set by set), and only samples fresh sets
//! past the cached tail. [`WeightedRrCollection::take_index`] hands the
//! (possibly grown) index back at the end of the run.

use crate::index::RrIndex;
use tirm_graph::NodeId;

/// RR-set collection with per-set survival weights over a prefix of an
/// [`RrIndex`].
#[derive(Clone, Debug)]
pub struct WeightedRrCollection {
    index: RrIndex,
    /// Survival weight `w_R` per *active* set (1 until a seed in it is
    /// chosen). `weights.len()` is the active-window size.
    weights: Vec<f64>,
    /// `score[v] = Σ_{active R ∋ v} w_R`.
    score: Vec<f64>,
    /// `Σ_{active R} (1 − w_R)`.
    deficit: f64,
    /// Number of active sets containing at least one chosen seed
    /// (weight < 1) — `n·touched/θ` estimates the CTP-free spread
    /// `σ_ic(S)`, used as an `OPT_s` lower-bound proxy for the θ formula.
    touched: usize,
}

impl WeightedRrCollection {
    /// Empty collection over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self::from_index(RrIndex::new(n))
    }

    /// Overlay over an existing index with *zero* active sets: cached sets
    /// stay dormant until [`Self::activate_next`] re-admits them.
    pub fn from_index(index: RrIndex) -> Self {
        let n = index.num_nodes();
        WeightedRrCollection {
            index,
            weights: Vec::new(),
            score: vec![0.0; n],
            deficit: 0.0,
            touched: 0,
        }
    }

    /// Consumes the overlay, returning the (possibly grown) index for
    /// reuse by a later overlay.
    pub fn take_index(self) -> RrIndex {
        self.index
    }

    /// Number of nodes the collection is defined over.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.index.num_nodes()
    }

    /// Number of *active* sets (θ as the algorithms see it).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.weights.len()
    }

    /// Number of sets stored in the underlying index (≥ [`Self::num_sets`];
    /// the difference is the dormant cached tail).
    #[inline]
    pub fn num_cached(&self) -> usize {
        self.index.num_sets()
    }

    /// Adds one *fresh* RR set with weight 1; returns its id. Only legal
    /// once the cached tail is exhausted (fresh samples append past it) —
    /// activate cached sets first.
    pub fn add_set(&mut self, members: &[NodeId]) -> u32 {
        debug_assert_eq!(
            self.weights.len(),
            self.index.num_sets(),
            "activate cached sets before sampling fresh ones"
        );
        let sid = self.index.push_set(members);
        self.weights.push(1.0);
        for &v in members {
            self.score[v as usize] += 1.0;
        }
        sid
    }

    /// Activates up to `count` dormant sets from the cached tail, in id
    /// order, each with weight 1 — arithmetically identical to having
    /// just sampled them. Returns how many were activated (less than
    /// `count` when the cache runs out).
    pub fn activate_next(&mut self, count: usize) -> usize {
        let avail = self.index.num_sets() - self.weights.len();
        let take = count.min(avail);
        for _ in 0..take {
            let sid = self.weights.len() as u32;
            self.weights.push(1.0);
            for &v in self.index.set(sid) {
                self.score[v as usize] += 1.0;
            }
        }
        take
    }

    /// Restores the overlay to a pristine `active`-set prefix using a
    /// previously captured score vector (see [`Self::scores`]): weights
    /// all 1, no deficit, no touched sets. Because pristine scores are
    /// exact integer counts, restoring is bit-identical to re-activating
    /// the prefix set by set — this is the online layer's O(n) warm-init
    /// shortcut past the O(entries) activation walk.
    pub fn restore_prefix(&mut self, active: usize, scores: &[f64]) {
        assert!(active <= self.index.num_sets(), "prefix exceeds cache");
        assert_eq!(scores.len(), self.num_nodes());
        self.weights.clear();
        self.weights.resize(active, 1.0);
        self.score.copy_from_slice(scores);
        self.deficit = 0.0;
        self.touched = 0;
    }

    /// Current scores (weighted marginal coverage per node) — capture
    /// right after activation to feed [`Self::restore_prefix`] later.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.score
    }

    /// Current score of `v` (weighted marginal coverage).
    #[inline]
    pub fn score(&self, v: NodeId) -> f64 {
        self.score[v as usize]
    }

    /// `Σ_R (1 − w_R)`; `n·deficit/θ` estimates `σ_ctp(S)` unbiasedly.
    #[inline]
    pub fn deficit(&self) -> f64 {
        self.deficit
    }

    /// Number of sets touched by at least one seed; `n·touched/θ`
    /// estimates the CTP-free spread `σ_ic(S)` of the chosen seed set.
    #[inline]
    pub fn union_coverage(&self) -> usize {
        self.touched
    }

    /// Commits seed `v` with click probability `delta`: every active set
    /// containing `v` keeps only a `(1 − δ)` share of its weight
    /// (`δ = 1` reproduces the paper's hard removal). Returns `v`'s score
    /// before the decay (its weighted coverage at selection time).
    pub fn decay_node(&mut self, v: NodeId, delta: f64) -> f64 {
        self.decay_node_from(v, delta, 0)
    }

    /// Like [`Self::decay_node`] but only touches sets with id ≥
    /// `from_sid` — TIRM's `UpdateEstimates` (Algorithm 4) uses this to
    /// apply existing seeds to freshly sampled sets only. Returns `v`'s
    /// weighted score restricted to the touched id range, *before* decay.
    /// Dormant cached sets (id ≥ active window) are never touched.
    pub fn decay_node_from(&mut self, v: NodeId, delta: f64, from_sid: u32) -> f64 {
        debug_assert!((0.0..=1.0).contains(&delta));
        let keep = 1.0 - delta;
        let active = self.weights.len() as u32;
        let mut before = 0.0f64;
        for sid in self.index.postings(v) {
            if sid < from_sid {
                continue;
            }
            if sid >= active {
                break; // postings are ascending; the rest are dormant
            }
            let w = self.weights[sid as usize];
            if w <= 0.0 {
                continue;
            }
            before += w;
            let dw = w * delta;
            if dw > 0.0 {
                if w >= 1.0 {
                    self.touched += 1;
                }
                self.weights[sid as usize] = w * keep;
                self.deficit += dw;
                for &u in self.index.set(sid) {
                    self.score[u as usize] -= dw;
                }
            }
        }
        before
    }

    /// Node with maximum score among eligible ones (linear scan; TIRM uses
    /// the lazy heap instead).
    pub fn argmax_score(&self, mut eligible: impl FnMut(NodeId) -> bool) -> Option<(NodeId, f64)> {
        let mut best: Option<(NodeId, f64)> = None;
        for v in 0..self.num_nodes() as NodeId {
            let s = self.score[v as usize];
            if s <= 1e-12 || !eligible(v) {
                continue;
            }
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((v, s));
            }
        }
        best
    }

    /// Exact bytes held (Table 4 metric): index storage plus the overlay.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.weights.capacity() * 8 + self.score.capacity() * 8
    }

    /// Sum of stored set sizes.
    pub fn total_entries(&self) -> usize {
        self.index.total_entries()
    }

    /// Merges the index's hot postings arena into the frozen exact-fit
    /// tier (contents and order unchanged) — run owners call this before
    /// reporting memory so artifact numbers measure the settled layout.
    pub fn compact_postings(&mut self) {
        self.index.compact();
    }

    /// Bytes held by the index's inverted postings structures.
    pub fn postings_bytes(&self) -> usize {
        self.index.postings_bytes()
    }

    /// Bytes the legacy `Vec<Vec<u32>>` postings layout would need.
    pub fn legacy_postings_bytes(&self) -> usize {
        self.index.legacy_postings_bytes()
    }
}

/// Encodes a non-negative score as a heap key preserving order
/// (IEEE-754 doubles of equal sign compare like their bit patterns).
#[inline]
pub fn score_key(score: f64) -> u64 {
    debug_assert!(score >= 0.0);
    score.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedRrCollection {
        let mut c = WeightedRrCollection::new(4);
        c.add_set(&[0, 1]);
        c.add_set(&[1, 2]);
        c.add_set(&[1]);
        c
    }

    #[test]
    fn scores_count_sets() {
        let c = sample();
        assert_eq!(c.score(1), 3.0);
        assert_eq!(c.score(0), 1.0);
        assert_eq!(c.score(3), 0.0);
        assert_eq!(c.deficit(), 0.0);
    }

    #[test]
    fn full_delta_equals_hard_removal() {
        let mut c = sample();
        let before = c.decay_node(1, 1.0);
        assert_eq!(before, 3.0);
        assert_eq!(c.score(1), 0.0);
        assert_eq!(c.score(0), 0.0);
        assert_eq!(c.score(2), 0.0);
        assert_eq!(c.deficit(), 3.0);
    }

    #[test]
    fn partial_delta_decays() {
        let mut c = sample();
        c.decay_node(1, 0.5);
        // Every set containing 1 halves; scores follow.
        assert!((c.score(1) - 1.5).abs() < 1e-12);
        assert!((c.score(0) - 0.5).abs() < 1e-12);
        assert!((c.deficit() - 1.5).abs() < 1e-12);
        // Second decay by 0.5 halves the survivors again.
        c.decay_node(1, 0.5);
        assert!((c.score(1) - 0.75).abs() < 1e-12);
        assert!((c.deficit() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn deficit_matches_inclusion_exclusion() {
        // Set {0,1} with δ(0)=0.3 then δ(1)=0.2:
        // 1 − (1−0.3)(1−0.2) = 0.44.
        let mut c = WeightedRrCollection::new(2);
        c.add_set(&[0, 1]);
        c.decay_node(0, 0.3);
        c.decay_node(1, 0.2);
        assert!((c.deficit() - 0.44).abs() < 1e-12);
    }

    #[test]
    fn decay_from_only_touches_new_sets() {
        let mut c = sample(); // sets 0..3 contain node 1
        let first_new = c.num_sets() as u32;
        c.add_set(&[1, 3]);
        c.decay_node_from(1, 0.5, first_new);
        // Old sets untouched, new set halved.
        assert!((c.deficit() - 0.5).abs() < 1e-12);
        assert!((c.score(3) - 0.5).abs() < 1e-12);
        assert!((c.score(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_and_memory() {
        let c = sample();
        assert_eq!(c.argmax_score(|_| true).map(|(v, _)| v), Some(1));
        assert_eq!(c.argmax_score(|v| v != 1).map(|(v, _)| v), Some(0));
        assert!(c.memory_bytes() > 0);
        assert_eq!(c.total_entries(), 5);
    }

    #[test]
    fn score_key_orders() {
        assert!(score_key(2.0) > score_key(1.5));
        assert!(score_key(0.1) > score_key(0.0));
    }

    #[test]
    fn reactivation_is_bit_identical_to_fresh_adds() {
        // Build, decay, then rebuild an overlay over the recycled index:
        // the reactivated collection must behave exactly like the original
        // freshly-added one.
        let mut c = sample();
        c.decay_node(1, 0.7);
        let index = c.take_index();
        let mut warm = WeightedRrCollection::from_index(index);
        assert_eq!(warm.num_sets(), 0);
        assert_eq!(warm.num_cached(), 3);
        assert_eq!(warm.activate_next(2), 2);
        assert_eq!(warm.num_sets(), 2);
        assert_eq!(warm.score(1), 2.0, "third set still dormant");
        // Dormant sets are invisible to decays.
        let before = warm.decay_node(1, 0.5);
        assert_eq!(before, 2.0);
        assert_eq!(warm.activate_next(10), 1, "only one dormant set left");
        assert_eq!(warm.num_sets(), 3);
        // The batch analogue of the same operation sequence: two adds, a
        // decay, then a third (fresh) add — late activation must be
        // bit-identical to it.
        let fresh = {
            let mut f = WeightedRrCollection::new(4);
            f.add_set(&[0, 1]);
            f.add_set(&[1, 2]);
            f.decay_node(1, 0.5);
            f.add_set(&[1]);
            f
        };
        for v in 0..4 {
            assert_eq!(warm.score(v), fresh.score(v), "node {v}");
        }
        assert_eq!(warm.deficit(), fresh.deficit());
        assert_eq!(warm.union_coverage(), fresh.union_coverage());
    }

    #[test]
    fn restore_prefix_matches_activation() {
        let mut c = sample();
        let snapshot: Vec<f64> = c.scores().to_vec();
        c.decay_node(1, 0.9);
        let index = c.take_index();
        let mut warm = WeightedRrCollection::from_index(index);
        warm.restore_prefix(3, &snapshot);
        assert_eq!(warm.num_sets(), 3);
        assert_eq!(warm.score(1), 3.0);
        assert_eq!(warm.deficit(), 0.0);
        assert_eq!(warm.union_coverage(), 0);
        // Behaves exactly like the pristine original.
        assert_eq!(warm.decay_node(1, 1.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "prefix exceeds cache")]
    fn restore_prefix_rejects_overrun() {
        let mut c = sample();
        let scores = c.scores().to_vec();
        c.restore_prefix(4, &scores);
    }
}
