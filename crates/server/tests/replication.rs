//! Replication correctness anchors: kill any replica at any event
//! index, promote, finish the stream — every surviving replica's final
//! snapshot is bit-identical to an uninterrupted in-process replay.
//!
//! The hand-off sweep runs real TCP leaders and followers in-process
//! (cheap enough to stop at every index); the process-level SIGKILL
//! variant lives in the nightly `replica_soak` driver. On top of the
//! sweep: the typed `NotLeader` redirect, checkpoint bootstrap over a
//! pruned anchor, and fencing rejection of a deposed leader's frames.

use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use tirm_core::TirmOptions;
use tirm_graph::{generators, DiGraph};
use tirm_online::{OnlineAllocator, OnlineConfig, OnlineEvent};
use tirm_server::wal::{bump_fencing_epoch, read_fencing_epoch};
use tirm_server::{serve, serve_follower, Client, FollowerConfig, Response, ServerConfig};
use tirm_topics::{genprob, TopicDist, TopicEdgeProbs};

fn setup(nodes: usize, seed: u64) -> (DiGraph, TopicEdgeProbs) {
    let graph = generators::preferential_attachment(nodes, 3, 0.3, seed);
    let probs = genprob::exponential_topic_probs(graph.num_edges(), 2, 8.0, seed ^ 0x77);
    (graph, probs)
}

fn config(seed: u64) -> OnlineConfig {
    OnlineConfig {
        tirm: TirmOptions {
            eps: 0.45,
            seed,
            max_theta_per_ad: Some(500),
            ..TirmOptions::default()
        },
        kappa: 2,
        ..OnlineConfig::default()
    }
}

fn arrival(id: u64, budget: f64, topic: usize) -> OnlineEvent {
    OnlineEvent::AdArrival {
        id,
        budget,
        cpe: 1.0,
        topics: TopicDist::single(2, topic),
        ctp: 0.5,
    }
}

/// Every event kind, including a deterministic rejection (duplicate
/// arrival) that must ship to followers and re-reject there.
fn mutations() -> Vec<OnlineEvent> {
    vec![
        arrival(1, 5.0, 0),
        arrival(2, 4.0, 1),
        OnlineEvent::BudgetTopUp { id: 1, amount: 2.0 },
        arrival(3, 6.0, 0),
        arrival(3, 9.0, 1), // duplicate ⇒ rejected, still WAL-logged
        OnlineEvent::AdDeparture { id: 2 },
        arrival(4, 3.5, 1),
        OnlineEvent::BudgetTopUp { id: 4, amount: 1.5 },
        arrival(5, 2.5, 0),
        OnlineEvent::AdDeparture { id: 3 },
    ]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tirm_repl_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Tight durability cadence so a ten-event stream spans several
/// segments and at least one checkpoint+prune.
fn leader_cfg(cfg: &OnlineConfig, dir: &Path, bind: Option<String>) -> ServerConfig {
    let mut b = ServerConfig::builder()
        .online(cfg.clone())
        .queue_depth(16)
        .checkpoint_interval(3)
        .segment_events(4)
        .state_dir(dir);
    if let Some(bind) = bind {
        b = b.bind(bind);
    }
    b.build().unwrap()
}

fn follower_cfg(cfg: &OnlineConfig, leader: String, dir: &Path) -> FollowerConfig {
    FollowerConfig {
        online: cfg.clone(),
        checkpoint_interval: 3,
        segment_events: 4,
        poll_interval: Duration::from_millis(1),
        ..FollowerConfig::new(leader, dir)
    }
}

/// Polls a replica's stats until both frontiers arrive: the durable
/// `wal_seq` (counts every logged frame, rejected ones included) and
/// the *published* epoch (the applied, snapshot-visible frontier —
/// rejected frames never bump it, and it trails `wal_seq` by up to one
/// fsync page even on accepted ones).
fn wait_applied(addr: std::net::SocketAddr, wal_target: u64, epoch_target: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(stats) = Client::connect(addr).and_then(|mut c| c.stats()) {
            if stats.wal_seq >= wal_target && stats.epoch >= epoch_target && stats.queue_depth == 0
            {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "replica at {addr} never reached wal_seq {wal_target} / epoch {epoch_target}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// `epochs[i]` = the published epoch after applying `events[..i]` —
/// the oracle replayed prefix by prefix, so waits can target the
/// applied frontier without assuming every event is accepted.
fn epoch_per_prefix(
    graph: &DiGraph,
    probs: &TopicEdgeProbs,
    cfg: &OnlineConfig,
    events: &[OnlineEvent],
) -> Vec<u64> {
    let mut oracle = OnlineAllocator::new(graph, probs, cfg.clone());
    let mut epochs = vec![0u64];
    for ev in events {
        let _ = oracle.process(ev);
        epochs.push(oracle.snapshot().epoch);
    }
    epochs
}

/// Binds a new leader over a just-promoted follower's state dir on the
/// address the follower's read listener used to own — surviving
/// followers and clients keep their endpoint. The old listener closes
/// a moment before the hand-off, so retry `AddrInUse` briefly, exactly
/// like the production binary does.
fn serve_on_vacated_addr<R>(
    graph: &DiGraph,
    probs: &TopicEdgeProbs,
    cfg: ServerConfig,
    f: impl Fn(&tirm_server::ServerHandle) -> R,
) -> std::io::Result<(R, tirm_server::ServeReport)> {
    let mut attempts = 0u32;
    loop {
        match serve(graph, probs, cfg.clone(), &f) {
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && attempts < 100 => {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => return other,
        }
    }
}

/// Kill the **leader** after `kill_at` events with `n_followers`
/// replicas tailing it, promote follower 0 onto the leader's duties
/// (fencing epoch bumped, new leader re-binds the promoted follower's
/// address), let any remaining follower re-home via its peer list,
/// finish the stream, and demand every replica lands bit-identical to
/// the uninterrupted oracle.
fn leader_handoff_case(kill_at: usize, n_followers: usize) {
    let (graph, probs) = setup(250, 13);
    let cfg = config(7);
    let events = mutations();

    let mut oracle = OnlineAllocator::new(&graph, &probs, cfg.clone());
    for ev in &events {
        let _ = oracle.process(ev);
    }
    let want = oracle.snapshot();
    let epochs = epoch_per_prefix(&graph, &probs, &cfg, &events);

    let tag = format!("handoff_{kill_at}_{n_followers}");
    let ldir = fresh_dir(&format!("{tag}_l"));
    let fdirs: Vec<PathBuf> = (0..n_followers)
        .map(|i| fresh_dir(&format!("{tag}_f{i}")))
        .collect();

    std::thread::scope(|s| {
        // Leader, life 1.
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let l1 = {
            let (graph, probs, cfg, ldir) = (&graph, &probs, &cfg, &ldir);
            s.spawn(move || {
                serve(graph, probs, leader_cfg(cfg, ldir, None), move |h| {
                    addr_tx.send(h.addr()).unwrap();
                    stop_rx.recv().ok();
                })
            })
        };
        let laddr = addr_rx.recv().unwrap();

        // Followers tail it live. Every follower lists follower 0's
        // read address as a peer: after the hand-off the new leader
        // re-binds exactly that address, so survivors find it by
        // rotating to their peer list — no reconfiguration.
        let mut fjoins = Vec::new();
        let mut faddrs: Vec<std::net::SocketAddr> = Vec::new();
        for (i, fdir) in fdirs.iter().enumerate().take(n_followers) {
            let (tx, rx) = mpsc::channel();
            let mut fcfg = follower_cfg(&cfg, laddr.to_string(), fdir);
            if i > 0 {
                fcfg.peer_addrs = vec![faddrs[0].to_string()];
            }
            let (graph, probs) = (&graph, &probs);
            fjoins.push(s.spawn(move || {
                serve_follower(graph, probs, fcfg, move |fh| {
                    tx.send(fh.addr()).unwrap();
                    fh.wait_shutdown();
                })
            }));
            faddrs.push(rx.recv().unwrap());
        }

        // Head of the log, then wait until the whole fleet applied it.
        let mut client = Client::connect(laddr).unwrap();
        for ev in &events[..kill_at] {
            client
                .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(30))
                .unwrap();
        }
        wait_applied(laddr, kill_at as u64, epochs[kill_at]);
        for &fa in &faddrs {
            wait_applied(fa, kill_at as u64, epochs[kill_at]);
        }
        drop(client);

        // Kill the leader, promote follower 0.
        stop_tx.send(()).unwrap();
        let ((), lreport) = l1.join().unwrap().unwrap();
        assert_eq!(lreport.wal_seq, kill_at as u64, "leader died at the split");

        let promoted_epoch = Client::connect(faddrs[0]).unwrap().promote().unwrap();
        let ((), frep0) = fjoins.remove(0).join().unwrap().unwrap();
        assert!(frep0.promoted, "promote must wind the follower down");
        assert_eq!(
            frep0.frontier.durable_seq, kill_at as u64,
            "promotee had replicated the full head"
        );
        let epoch = bump_fencing_epoch(&fdirs[0]).unwrap();
        assert_eq!(epoch, promoted_epoch, "wire promise matches the bump");

        // Leader, life 2 — over the promotee's dir, on its address.
        let (addr_tx2, addr_rx2) = mpsc::channel();
        let (stop_tx2, stop_rx2) = mpsc::channel::<()>();
        let l2 = {
            let (graph, probs, cfg) = (&graph, &probs, &cfg);
            let dir = &fdirs[0];
            let bind = faddrs[0].to_string();
            let addr_tx2 = std::sync::Mutex::new(Some(addr_tx2));
            let stop_rx2 = std::sync::Mutex::new(Some(stop_rx2));
            let notify = move |h: &tirm_server::ServerHandle| {
                if let Some(tx) = addr_tx2.lock().unwrap().take() {
                    tx.send(h.addr()).unwrap();
                }
                if let Some(rx) = stop_rx2.lock().unwrap().take() {
                    rx.recv().ok();
                }
            };
            s.spawn(move || {
                serve_on_vacated_addr(graph, probs, leader_cfg(cfg, dir, Some(bind)), notify)
            })
        };
        let laddr2 = addr_rx2.recv().unwrap();
        assert_eq!(laddr2, faddrs[0], "hand-off keeps the endpoint");
        assert_eq!(read_fencing_epoch(&fdirs[0]).unwrap(), epoch);

        // Tail of the log onto the new leader; fleet converges.
        let mut client = Client::connect(laddr2).unwrap();
        for ev in &events[kill_at..] {
            client
                .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(30))
                .unwrap();
        }
        wait_applied(laddr2, events.len() as u64, epochs[events.len()]);
        for &fa in &faddrs[1..] {
            wait_applied(fa, events.len() as u64, epochs[events.len()]);
        }
        drop(client);

        // Wind the survivors down and compare every replica to the
        // oracle, bit for bit.
        for &fa in &faddrs[1..] {
            Client::connect(fa)
                .and_then(|mut c| c.shutdown_server())
                .unwrap();
        }
        for j in fjoins {
            let ((), frep) = j.join().unwrap().unwrap();
            assert!(
                frep.final_snapshot.same_allocation(&want),
                "kill_at={kill_at} followers={n_followers}: surviving follower diverged \
                 (epoch {} vs {})",
                frep.final_snapshot.epoch,
                want.epoch
            );
        }
        stop_tx2.send(()).unwrap();
        let ((), lreport2) = l2.join().unwrap().unwrap();
        assert!(
            lreport2.final_snapshot.same_allocation(&want),
            "kill_at={kill_at} followers={n_followers}: promoted leader diverged \
             (epoch {} vs {})",
            lreport2.final_snapshot.epoch,
            want.epoch
        );
    });

    std::fs::remove_dir_all(&ldir).ok();
    for d in &fdirs {
        std::fs::remove_dir_all(d).ok();
    }
}

/// Kill a **follower** after `kill_at` events, keep the leader
/// streaming, restart the follower over its own state dir, and demand
/// it converges bit-identically (resuming from its local frontier —
/// or bootstrapping, if the leader pruned past it meanwhile).
fn follower_restart_case(kill_at: usize, n_followers: usize) {
    let (graph, probs) = setup(250, 13);
    let cfg = config(7);
    let events = mutations();

    let mut oracle = OnlineAllocator::new(&graph, &probs, cfg.clone());
    for ev in &events {
        let _ = oracle.process(ev);
    }
    let want = oracle.snapshot();
    let epochs = epoch_per_prefix(&graph, &probs, &cfg, &events);

    let tag = format!("frestart_{kill_at}_{n_followers}");
    let ldir = fresh_dir(&format!("{tag}_l"));
    let fdirs: Vec<PathBuf> = (0..n_followers)
        .map(|i| fresh_dir(&format!("{tag}_f{i}")))
        .collect();

    std::thread::scope(|s| {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let leader = {
            let (graph, probs, cfg, ldir) = (&graph, &probs, &cfg, &ldir);
            s.spawn(move || {
                serve(graph, probs, leader_cfg(cfg, ldir, None), move |h| {
                    addr_tx.send(h.addr()).unwrap();
                    stop_rx.recv().ok();
                })
            })
        };
        let laddr = addr_rx.recv().unwrap();

        let spawn_follower = |i: usize| {
            let (tx, rx) = mpsc::channel();
            let fcfg = follower_cfg(&cfg, laddr.to_string(), &fdirs[i]);
            let (graph, probs) = (&graph, &probs);
            let join = s.spawn(move || {
                serve_follower(graph, probs, fcfg, move |fh| {
                    tx.send(fh.addr()).unwrap();
                    fh.wait_shutdown();
                })
            });
            (join, rx.recv().unwrap())
        };
        let mut followers: Vec<_> = (0..n_followers).map(spawn_follower).collect();

        let mut client = Client::connect(laddr).unwrap();
        for ev in &events[..kill_at] {
            client
                .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(30))
                .unwrap();
        }
        wait_applied(laddr, kill_at as u64, epochs[kill_at]);
        for (_, fa) in &followers {
            wait_applied(*fa, kill_at as u64, epochs[kill_at]);
        }

        // Take follower 0 down, finish the stream without it.
        let (join0, faddr0) = followers.remove(0);
        Client::connect(faddr0)
            .and_then(|mut c| c.shutdown_server())
            .unwrap();
        let ((), downed) = join0.join().unwrap().unwrap();
        assert_eq!(downed.frontier.durable_seq, kill_at as u64);

        for ev in &events[kill_at..] {
            client
                .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(30))
                .unwrap();
        }
        wait_applied(laddr, events.len() as u64, epochs[events.len()]);
        drop(client);

        // Rejoin over the same dir; it must catch up to the frontier.
        let (join0, faddr0) = spawn_follower(0);
        followers.push((join0, faddr0));
        for (_, fa) in &followers {
            wait_applied(*fa, events.len() as u64, epochs[events.len()]);
        }

        for (join, fa) in followers {
            Client::connect(fa)
                .and_then(|mut c| c.shutdown_server())
                .unwrap();
            let ((), frep) = join.join().unwrap().unwrap();
            assert!(
                frep.final_snapshot.same_allocation(&want),
                "kill_at={kill_at} followers={n_followers}: follower diverged \
                 (epoch {} vs {})",
                frep.final_snapshot.epoch,
                want.epoch
            );
        }
        stop_tx.send(()).unwrap();
        let ((), lreport) = leader.join().unwrap().unwrap();
        assert!(lreport.final_snapshot.same_allocation(&want));
    });

    std::fs::remove_dir_all(&ldir).ok();
    for d in &fdirs {
        std::fs::remove_dir_all(d).ok();
    }
}

/// The acceptance sweep: kill index × {leader, follower} × follower
/// counts {1, 2}. Leader kills promote-and-finish; follower kills
/// restart-and-rejoin. Every index is a distinct WAL/checkpoint shape
/// (checkpoints every 3, segments of 4).
#[test]
fn kill_any_replica_at_any_index_promote_and_finish_is_bit_identical() {
    let n = mutations().len();
    for n_followers in [1usize, 2] {
        for kill_at in 0..=n {
            leader_handoff_case(kill_at, n_followers);
        }
    }
    // The follower sweep needs no promotion; a sparser grid of split
    // points (start, mid-segment, checkpoint boundary, end) covers the
    // distinct rejoin shapes without doubling the suite's wall time.
    for n_followers in [1usize, 2] {
        for kill_at in [0, 2, 3, 6, n] {
            follower_restart_case(kill_at, n_followers);
        }
    }
}

/// Mutations sent to a follower are answered with a typed `NotLeader`
/// naming the leader — the loadgen's redirect contract.
#[test]
fn follower_redirects_mutations_to_the_leader() {
    let (graph, probs) = setup(250, 13);
    let cfg = config(7);
    let ldir = fresh_dir("redirect_l");
    let fdir = fresh_dir("redirect_f");

    std::thread::scope(|s| {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let leader = {
            let (graph, probs, cfg, ldir) = (&graph, &probs, &cfg, &ldir);
            s.spawn(move || {
                serve(graph, probs, leader_cfg(cfg, ldir, None), move |h| {
                    addr_tx.send(h.addr()).unwrap();
                    stop_rx.recv().ok();
                })
            })
        };
        let laddr = addr_rx.recv().unwrap();

        let (tx, rx) = mpsc::channel();
        let fcfg = follower_cfg(&cfg, laddr.to_string(), &fdir);
        let fjoin = {
            let (graph, probs) = (&graph, &probs);
            s.spawn(move || {
                serve_follower(graph, probs, fcfg, move |fh| {
                    tx.send(fh.addr()).unwrap();
                    fh.wait_shutdown();
                })
            })
        };
        let faddr = rx.recv().unwrap();

        let mut fclient = Client::connect(faddr).unwrap();
        match fclient.send_event(&arrival(9, 1.0, 0)).unwrap() {
            Response::NotLeader { leader } => {
                assert_eq!(leader, laddr.to_string(), "redirect names the leader")
            }
            other => panic!("expected a NotLeader redirect, got {other:?}"),
        }
        // Reads, by contrast, are served locally.
        let stats = fclient.stats().unwrap();
        assert_eq!(stats.epoch, 0);
        drop(fclient);

        Client::connect(faddr)
            .and_then(|mut c| c.shutdown_server())
            .unwrap();
        fjoin.join().unwrap().unwrap();
        stop_tx.send(()).unwrap();
        leader.join().unwrap().unwrap();
    });

    std::fs::remove_dir_all(&ldir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

/// A follower joining after the leader pruned its early segments must
/// come up through the checkpoint-download path — and still land
/// bit-identical.
#[test]
fn late_follower_bootstraps_from_a_pruned_anchor() {
    let (graph, probs) = setup(250, 13);
    let cfg = config(7);
    let events = mutations();
    let ldir = fresh_dir("pruned_l");
    let fdir = fresh_dir("pruned_f");

    let mut oracle = OnlineAllocator::new(&graph, &probs, cfg.clone());
    for ev in &events {
        let _ = oracle.process(ev);
    }
    let want = oracle.snapshot();
    let epochs = epoch_per_prefix(&graph, &probs, &cfg, &events);

    std::thread::scope(|s| {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let leader = {
            let (graph, probs, cfg, ldir) = (&graph, &probs, &cfg, &ldir);
            s.spawn(move || {
                serve(graph, probs, leader_cfg(cfg, ldir, None), move |h| {
                    addr_tx.send(h.addr()).unwrap();
                    stop_rx.recv().ok();
                })
            })
        };
        let laddr = addr_rx.recv().unwrap();

        // Apply the whole log first: checkpoints every 3 events prune
        // the early segments, so seq 0 is gone from the leader's WAL.
        let mut client = Client::connect(laddr).unwrap();
        for ev in &events {
            client
                .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(30))
                .unwrap();
        }
        wait_applied(laddr, events.len() as u64, epochs[events.len()]);
        drop(client);

        let (tx, rx) = mpsc::channel();
        let fcfg = follower_cfg(&cfg, laddr.to_string(), &fdir);
        let fjoin = {
            let (graph, probs) = (&graph, &probs);
            s.spawn(move || {
                serve_follower(graph, probs, fcfg, move |fh| {
                    tx.send(fh.addr()).unwrap();
                    fh.wait_shutdown();
                })
            })
        };
        let faddr = rx.recv().unwrap();
        wait_applied(faddr, events.len() as u64, epochs[events.len()]);

        Client::connect(faddr)
            .and_then(|mut c| c.shutdown_server())
            .unwrap();
        let ((), frep) = fjoin.join().unwrap().unwrap();
        assert!(
            frep.bootstraps >= 1,
            "a pruned anchor must force the checkpoint-download path"
        );
        assert!(
            frep.final_snapshot.same_allocation(&want),
            "bootstrapped follower diverged (epoch {} vs {})",
            frep.final_snapshot.epoch,
            want.epoch
        );
        stop_tx.send(()).unwrap();
        leader.join().unwrap().unwrap();
    });

    std::fs::remove_dir_all(&ldir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}

/// A follower whose persisted fencing epoch is *newer* than a leader's
/// refuses that leader's stream entirely — the deposed leader's frames
/// are counted as fenced rejects, none are applied.
#[test]
fn deposed_leaders_frames_are_fenced_off() {
    let (graph, probs) = setup(250, 13);
    let cfg = config(7);
    let events = mutations();
    let epochs = epoch_per_prefix(&graph, &probs, &cfg, &events);
    let ldir = fresh_dir("fenced_l");
    let fdir = fresh_dir("fenced_f");

    // The follower has lived through a promotion cycle this stale
    // leader missed: its persisted epoch is ahead.
    std::fs::create_dir_all(&fdir).unwrap();
    bump_fencing_epoch(&fdir).unwrap();
    assert_eq!(read_fencing_epoch(&fdir).unwrap(), 1);

    std::thread::scope(|s| {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let leader = {
            let (graph, probs, cfg, ldir) = (&graph, &probs, &cfg, &ldir);
            s.spawn(move || {
                serve(graph, probs, leader_cfg(cfg, ldir, None), move |h| {
                    addr_tx.send(h.addr()).unwrap();
                    stop_rx.recv().ok();
                })
            })
        };
        let laddr = addr_rx.recv().unwrap();

        let mut client = Client::connect(laddr).unwrap();
        for ev in &events[..4] {
            client
                .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(30))
                .unwrap();
        }
        wait_applied(laddr, 4, epochs[4]);
        drop(client);

        let (tx, rx) = mpsc::channel();
        let fcfg = follower_cfg(&cfg, laddr.to_string(), &fdir);
        let fjoin = {
            let (graph, probs) = (&graph, &probs);
            s.spawn(move || {
                serve_follower(graph, probs, fcfg, move |fh| {
                    tx.send(fh.addr()).unwrap();
                    fh.wait_shutdown();
                })
            })
        };
        let faddr = rx.recv().unwrap();

        // Give the apply loop a generous window of poll cycles (1 ms
        // cadence) to (not) ingest the stale stream, then wind it down.
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            if let Ok(mut c) = Client::connect(faddr) {
                if let Ok(stats) = c.stats() {
                    assert_eq!(
                        stats.epoch, 0,
                        "no frame from the stale-epoch leader may apply"
                    );
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        Client::connect(faddr)
            .and_then(|mut c| c.shutdown_server())
            .unwrap();
        let ((), frep) = fjoin.join().unwrap().unwrap();
        assert_eq!(frep.applied, 0, "stale stream fully rejected");
        assert!(
            frep.fenced_rejects >= 1,
            "rejections must be visible in the report"
        );
        stop_tx.send(()).unwrap();
        leader.join().unwrap().unwrap();
    });

    std::fs::remove_dir_all(&ldir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}
