//! Exact-sample latency store, used by drivers (replay, loadgen) whose
//! sample populations are small enough to keep verbatim.
//!
//! This is deliberately distinct from the registry's bucketed
//! [`Histogram`](crate::Histogram): bench gates compare exact
//! nearest-rank percentiles across runs, and log2 buckets are far too
//! coarse for that. The registry histogram is for always-on, in-process
//! exposition; this one is for offline reports.

/// Latency sample store for one event kind. Samples are exact (an event
/// stream that fits in memory is tiny next to its RR capital); the
/// percentile views are what reports surface.
#[derive(Clone, Debug, Default)]
pub struct SampleHistogram {
    /// Nanosecond samples in arrival order.
    samples: Vec<u64>,
}

impl SampleHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The raw nanosecond samples, arrival order (merging histograms
    /// across worker threads is the caller's `for`-loop).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Nearest-rank percentile in microseconds (`p` in `[0, 100]`); 0.0
    /// when empty.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, sorted.len()) - 1;
        sorted[idx] as f64 / 1_000.0
    }

    /// Mean latency in microseconds; 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64 / 1_000.0
    }

    /// Maximum latency in microseconds; 0.0 when empty.
    pub fn max_us(&self) -> f64 {
        self.samples.iter().max().copied().unwrap_or(0) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned behavior carried over from the pre-extraction
    /// `tirm_workloads::LatencyHistogram`: report fields derived from
    /// these views must not move.
    #[test]
    fn percentiles_are_nearest_rank() {
        let mut h = SampleHistogram::default();
        assert_eq!(h.percentile_us(50.0), 0.0);
        for ns in [1_000u64, 2_000, 3_000, 4_000, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile_us(50.0), 3.0);
        assert_eq!(h.percentile_us(99.0), 100.0);
        assert_eq!(h.percentile_us(0.0), 1.0);
        assert_eq!(h.max_us(), 100.0);
        assert!((h.mean_us() - 22.0).abs() < 1e-9);
    }
}
