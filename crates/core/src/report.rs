//! Minimal aligned-column text tables for the experiment harness output,
//! renderable as plain text (stdout) or GitHub-flavoured markdown (the
//! `bench_diff` regression gate posts the latter into CI logs/PRs).

/// A simple text table with left-aligned first column and right-aligned
/// numeric columns, rendered with aligned widths.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table: first column
    /// left-aligned, the rest right-aligned, `|` in cells escaped.
    pub fn render_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        for (i, _) in self.headers.iter().enumerate() {
            out.push_str(if i == 0 { ":---|" } else { "---:|" });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Formats a float compactly: integers without decimals, else 2–3
/// significant decimals.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["algo", "regret"]);
        t.row(vec!["TIRM".into(), fnum(12.5)]);
        t.row(vec!["Myopic".into(), fnum(10000.0)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[2].starts_with("TIRM"));
        assert!(lines[3].contains("10000"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["cell", "old", "new"]);
        t.row(vec!["a|b".into(), "1".into(), "2".into()]);
        let md = t.render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| cell | old | new |");
        assert_eq!(lines[1], "|:---|---:|---:|");
        assert_eq!(lines[2], "| a\\|b | 1 | 2 |");
    }

    #[test]
    fn fnum_shapes() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(3.25), "3.250");
        assert_eq!(fnum(12345.678), "12345.7");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
