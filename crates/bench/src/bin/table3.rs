//! Table 3: number of *distinct* nodes targeted at least once vs attention
//! bound κ, at λ = 0, for all four algorithms on both quality data sets.
//!
//! Expected shape (paper §6.1): MYOPIC targets every node regardless of κ;
//! MYOPIC+ and the virality-aware algorithms need fewer distinct nodes as
//! κ grows (each node becomes "more available"); TIRM/IRIE use orders of
//! magnitude fewer nodes than the myopic baselines.

use tirm_bench::{banner, run_quality_cell, write_json, AlgoKind, QualityWorkload};
use tirm_core::report::Table;
use tirm_workloads::DatasetKind;

fn main() {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Flixster, DatasetKind::Epinions] {
        let w = QualityWorkload::new(kind, 0x7ab3 + kind as u64);
        banner(&format!("table3: {}", kind.name()), &w.cfg);
        let mut t = Table::new(&["algorithm", "k=1", "k=2", "k=3", "k=4", "k=5"]);
        // Row-major: one line per algorithm like the paper's Table 3.
        for algo in [
            AlgoKind::Tirm,
            AlgoKind::GreedyIrie,
            AlgoKind::Myopic,
            AlgoKind::MyopicPlus,
        ] {
            let mut cells = vec![algo.name().to_string()];
            for kappa in 1..=5u32 {
                let row = run_quality_cell(&w, algo, kappa, 0.0, 0x5eed);
                eprintln!(
                    "  {} {} κ={kappa}: {} distinct nodes ({} seeds)",
                    kind.name(),
                    algo.name(),
                    row.distinct_targeted,
                    row.total_seeds
                );
                cells.push(row.distinct_targeted.to_string());
                rows.push(row);
            }
            t.row(cells);
        }
        println!(
            "\nTable 3 — {} (lambda = 0): distinct nodes targeted vs kappa",
            kind.name()
        );
        println!("{}", t.render());
    }
    write_json("table3", &rows);
}
