//! End-to-end reproduction of the paper's Fig. 1 / Examples 1–2, checking
//! the exact possible-world engine, the Monte-Carlo engine, and the regret
//! arithmetic against the paper's published numbers.

use tirm::RegretReport;
use tirm_diffusion::{exact_activation_probs, mc_activation_probs};
use tirm_workloads::toy::Fig1;

fn clicks(fig: &Fig1, alloc: &tirm::Allocation) -> Vec<f64> {
    let p = fig.problem(0.0);
    (0..4)
        .map(|i| {
            let seeds = alloc.seeds(i);
            if seeds.is_empty() {
                0.0
            } else {
                exact_activation_probs(&fig.graph, &fig.probs, seeds, Some(p.ctp.ad(i)))
                    .iter()
                    .sum()
            }
        })
        .collect()
}

#[test]
fn allocation_a_per_node_probabilities() {
    // Paper (Fig. 1): Pr[click(v1,a)] = Pr[click(v2,a)] = 0.9,
    // v3 = 0.93, v4 = v5 = 0.95, v6 = 0.92 (independence approximation).
    let fig = Fig1::new();
    let p = fig.problem(0.0);
    let a = fig.allocation_a();
    let probs = exact_activation_probs(&fig.graph, &fig.probs, a.seeds(0), Some(p.ctp.ad(0)));
    assert!((probs[0] - 0.9).abs() < 1e-6);
    assert!((probs[1] - 0.9).abs() < 1e-6);
    assert!((probs[2] - 0.9328).abs() < 1e-3, "v3: {}", probs[2]);
    assert!((probs[3] - 0.9466).abs() < 2e-3, "v4: {}", probs[3]);
    // v6: paper says 0.92 under independence; exact is within 0.01.
    assert!((probs[5] - 0.92).abs() < 0.01, "v6: {}", probs[5]);
}

#[test]
fn allocation_b_per_node_probabilities() {
    // Paper: v3 clicks a w.p. 0.33 (social influence only), v4/v5 0.16.
    let fig = Fig1::new();
    let p = fig.problem(0.0);
    let b = fig.allocation_b();
    let probs_a = exact_activation_probs(&fig.graph, &fig.probs, b.seeds(0), Some(p.ctp.ad(0)));
    assert!(
        (probs_a[2] - 0.3276).abs() < 1e-3,
        "v3 via a: {}",
        probs_a[2]
    );
    assert!(
        (probs_a[3] - 0.1638).abs() < 1e-3,
        "v4 via a: {}",
        probs_a[3]
    );
    // Ad b seeded at v3: direct 0.8, v4/v5 get 0.4.
    let probs_b = exact_activation_probs(&fig.graph, &fig.probs, b.seeds(1), Some(p.ctp.ad(1)));
    assert!((probs_b[2] - 0.8).abs() < 1e-6);
    assert!((probs_b[3] - 0.4).abs() < 1e-6);
}

#[test]
fn totals_and_regrets_match_paper() {
    let fig = Fig1::new();
    let a_clicks = clicks(&fig, &fig.allocation_a());
    let b_clicks = clicks(&fig, &fig.allocation_b());
    let total_a: f64 = a_clicks.iter().sum();
    let total_b: f64 = b_clicks.iter().sum();
    assert!((total_a - 5.55).abs() < 0.02, "A total {total_a}");
    assert!((total_b - 6.30).abs() < 0.05, "B total {total_b}");

    let budgets = [4.0, 2.0, 2.0, 1.0];
    let seeds_a = [6usize, 0, 0, 0];
    let seeds_b = [2usize, 1, 2, 1];
    for (lambda, want_a, want_b) in [(0.0, 6.6, 2.7), (0.1, 7.2, 3.3)] {
        let ra = RegretReport::new(
            (0..4).map(|i| (budgets[i], a_clicks[i], seeds_a[i])),
            lambda,
        );
        let rb = RegretReport::new(
            (0..4).map(|i| (budgets[i], b_clicks[i], seeds_b[i])),
            lambda,
        );
        // The paper rounds click totals to one decimal before computing
        // regret, so allow ~0.1 slack.
        assert!(
            (ra.total() - want_a).abs() < 0.12,
            "λ={lambda} A: {}",
            ra.total()
        );
        assert!(
            (rb.total() - want_b).abs() < 0.12,
            "λ={lambda} B: {}",
            rb.total()
        );
        assert!(rb.total() < ra.total());
    }
}

#[test]
fn monte_carlo_agrees_with_exact() {
    let fig = Fig1::new();
    let p = fig.problem(0.0);
    let b = fig.allocation_b();
    let exact = exact_activation_probs(&fig.graph, &fig.probs, b.seeds(0), Some(p.ctp.ad(0)));
    let mc = mc_activation_probs(
        &fig.graph,
        &fig.probs,
        b.seeds(0),
        Some(p.ctp.ad(0)),
        200_000,
        13,
    );
    for v in 0..6 {
        assert!(
            (exact[v] - mc[v]).abs() < 0.01,
            "node {v}: exact {} mc {}",
            exact[v],
            mc[v]
        );
    }
}
