//! # tirm-core
//!
//! The paper's primary contribution: the REGRET-MINIMIZATION problem
//! (Problem 1) and its allocation algorithms.
//!
//! * [`problem`] — advertisers (budget `B_i`, `cpe(i)`, topic distribution
//!   `γ_i`), attention bounds `κ_u`, penalty `λ`, budget boost `β`.
//! * [`allocation`] — valid seed-set allocations `S = (S_1,…,S_h)`.
//! * [`regret`] — Eq. 3–4 arithmetic and per-ad regret reports.
//! * [`algos`] — MYOPIC, MYOPIC+, GREEDY (Algorithm 1, oracle-generic),
//!   GREEDY-IRIE, and **TIRM** (Algorithms 2–4).
//! * [`eval`] — Monte-Carlo ground-truth evaluation (the paper's 10K-run
//!   protocol).
//! * [`metrics`] / [`report`] — runtime & memory accounting, text tables.

pub mod algos;
pub mod allocation;
pub mod eval;
pub mod metrics;
pub mod problem;
pub mod regret;
pub mod report;

pub use algos::{
    greedy_allocate, greedy_irie_allocate, myopic_allocate, myopic_plus_allocate, tirm_allocate,
    tirm_allocate_seeded, tirm_allocate_warm, AdSeeds, AdWarmParts, AdWarmState, GreedyIrieOptions,
    GreedyOptions, RelabelMode, TirmOptions,
};
pub use allocation::Allocation;
pub use eval::{default_threads, evaluate, evaluate_rr, Evaluation, DEFAULT_EVAL_RUNS};
pub use metrics::AlgoStats;
pub use problem::{Advertiser, Attention, ProblemInstance};
pub use regret::{ad_regret, budget_regret, AdRegret, RegretReport};
pub use tirm_rrset::SamplingConfig;

/// Glob-import convenience: `use tirm_core::prelude::*;`.
pub mod prelude {
    pub use crate::algos::{
        greedy_allocate, greedy_irie_allocate, myopic_allocate, myopic_plus_allocate,
        tirm_allocate, GreedyIrieOptions, GreedyOptions, TirmOptions,
    };
    pub use crate::allocation::Allocation;
    pub use crate::eval::{evaluate, Evaluation};
    pub use crate::metrics::AlgoStats;
    pub use crate::problem::{Advertiser, Attention, ProblemInstance};
    pub use crate::regret::{AdRegret, RegretReport};
}
