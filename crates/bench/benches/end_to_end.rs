//! Macro-benchmark: one full quality cell — workload generation,
//! allocation and MC evaluation (what one Fig. 3 data point costs).

use criterion::{criterion_group, criterion_main, Criterion};
use tirm_bench::{run_quality_cell, AlgoKind, QualityWorkload};
use tirm_workloads::DatasetKind;

fn bench_end_to_end(c: &mut Criterion) {
    std::env::set_var("TIRM_SCALE", "0.1");
    std::env::set_var("TIRM_EVAL_RUNS", "1000");
    let w = QualityWorkload::new(DatasetKind::Epinions, 0xe2e);
    std::env::remove_var("TIRM_SCALE");
    std::env::remove_var("TIRM_EVAL_RUNS");

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("quality_cell_tirm", |b| {
        b.iter(|| run_quality_cell(&w, AlgoKind::Tirm, 1, 0.0, 7).total_regret)
    });
    group.bench_function("quality_cell_myopic_plus", |b| {
        b.iter(|| run_quality_cell(&w, AlgoKind::MyopicPlus, 1, 0.0, 7).total_regret)
    });
    group.finish();

    // Allocation-only (no MC evaluation): TIRM with serial vs parallel
    // RR-set sampling, isolating the sampling engine's contribution.
    let mut group = c.benchmark_group("tirm_allocation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for threads in [1usize, 4] {
        group.bench_function(format!("epinions_q_{threads}t").as_str(), |b| {
            let problem = w.problem(1, 0.0);
            let mut opts = tirm_bench::tirm_options(true, 7);
            opts.threads = threads;
            b.iter(|| tirm_core::tirm_allocate(&problem, opts).1.total_seeds())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
