//! # tirm-server
//!
//! The **network serving frontend** over the online allocation engine:
//! the paper frames TIRM as the allocation core of a social-ad serving
//! platform, and this crate is the request/response boundary that makes
//! the reproduction one — a std-only multithreaded TCP server fronting
//! [`tirm_online::OnlineAllocator`] with a length-prefixed JSON wire
//! protocol.
//!
//! * [`protocol`] — the wire vocabulary: mutation requests *are* event
//!   log lines (shared codec with `tirm_workloads::events`), reads are
//!   `allocation` / `ad` / `regret_query` / `stats`, responses are
//!   typed (`accepted` / `overloaded` / `shutting_down` / payloads).
//! * [`swap`] — the snapshot-swap cell: the writer publishes an
//!   immutable [`tirm_online::AllocationSnapshot`] after every applied
//!   event; readers serve queries from a cached `Arc` without ever
//!   blocking on allocator work.
//! * [`server`] — [`serve`]: one writer thread owns the allocator and
//!   drains a **bounded** MPSC queue; admission control sheds mutations
//!   with a typed `Overloaded` response when the queue is full (the
//!   accept path never blocks on the writer), and the drain-then-close
//!   shutdown applies every admitted mutation before exit.
//! * [`client`] — a blocking client ([`Client`]) for load generators
//!   and harnesses, including the retry-on-overload deterministic
//!   delivery mode.
//!
//! **Correctness anchor:** replaying an event log through the server
//! (mutations over the wire, in order) lands on a final
//! `AllocationSnapshot` bit-identical — allocations *and* revenue
//! estimates — to `tirm_online` replaying the same log in-process.
//! Property-tested in `tests/wire_equivalence.rs`.

pub mod client;
pub mod protocol;
pub mod server;
pub mod swap;

pub use client::Client;
pub use protocol::{Request, Response, StatsView, MAX_FRAME_BYTES};
pub use server::{serve, ServeReport, ServerConfig, ServerHandle};
pub use swap::{SnapshotReader, SnapshotSwap};
