//! The serving loop: one writer thread owning the allocator, N
//! connection handler threads serving reads lock-free from the latest
//! snapshot, and explicit admission control on the write path.
//!
//! # Topology
//!
//! ```text
//!              TcpListener (acceptor thread)
//!                   │ one handler thread per connection
//!        ┌──────────┼──────────┐
//!   handler     handler     handler          reads: answered from the
//!        │          │          │              handler's cached snapshot
//!        └── try_send ─┬───────┘              (SnapshotReader, lock-free)
//!                      ▼
//!         bounded sync_channel (queue_depth)   ← admission control:
//!                      │                          full ⇒ typed Overloaded,
//!                      ▼                          never a blocked accept
//!             writer thread (owns OnlineAllocator)
//!                      │ after each applied event
//!                      ▼
//!             SnapshotSwap::publish(Arc<AllocationSnapshot>)
//! ```
//!
//! # Shutdown (drain-then-close)
//!
//! [`serve`] stops in a fixed order that makes the drain guarantee
//! structural: (1) the stop flag flips and the acceptor is woken — no
//! new connections; (2) handler threads finish their in-flight request
//! and exit, dropping their queue senders; (3) with all senders gone
//! the writer drains every admitted mutation from the channel,
//! processes it, publishes, and only then returns the final snapshot.
//! An admitted (`Accepted`) mutation is therefore *always* processed
//! before exit — applied if valid, counted into `rejected` if the
//! allocator refuses it (exactly as an in-process replay would); a
//! shed (`Overloaded`) one never was admitted in the first place.

use crate::protocol::{read_frame_polling, write_frame, Request, Response, StatsView};
use crate::swap::{SnapshotReader, SnapshotSwap};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tirm_graph::DiGraph;
use tirm_online::{AllocationSnapshot, OnlineAllocator, OnlineConfig, OnlineEvent, OnlineStats};
use tirm_topics::TopicEdgeProbs;

/// Configuration of a [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Allocator configuration (TIRM options, κ, λ, pool budget).
    pub online: OnlineConfig,
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// Write-queue bound: mutations beyond this many queued + in-flight
    /// are shed with [`Response::Overloaded`]. Must be ≥ 1.
    pub queue_depth: usize,
    /// Connection admission bound: connections beyond this many open at
    /// once are answered with one `Overloaded` frame and closed.
    pub max_connections: usize,
    /// Handler read-poll interval — the granularity at which idle
    /// connections notice shutdown. Also bounds how long an exiting
    /// handler can block on an idle socket.
    pub read_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            online: OnlineConfig::default(),
            bind: "127.0.0.1:0".to_string(),
            queue_depth: 64,
            max_connections: 64,
            read_poll: Duration::from_millis(25),
        }
    }
}

/// Counters and flags shared by every thread of a server.
struct Shared {
    stop: AtomicBool,
    /// Mutations queued or in flight at the writer.
    queue_len: AtomicUsize,
    max_queue_len: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    bad_requests: AtomicU64,
    connections_open: AtomicUsize,
    connections_total: AtomicU64,
    connections_refused: AtomicU64,
    /// Set by a wire `shutdown` request (or [`ServerHandle::request_shutdown`]);
    /// [`ServerHandle::wait_shutdown`] blocks on it.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Shared {
    fn new() -> Arc<Shared> {
        Arc::new(Shared {
            stop: AtomicBool::new(false),
            queue_len: AtomicUsize::new(0),
            max_queue_len: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            connections_open: AtomicUsize::new(0),
            connections_total: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        })
    }

    fn request_shutdown(&self) {
        let mut requested = self
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        *requested = true;
        self.shutdown_cv.notify_all();
    }
}

/// The caller's view of a running server (passed to [`serve`]'s
/// closure).
pub struct ServerHandle {
    addr: SocketAddr,
    swap: Arc<SnapshotSwap>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on (the ephemeral port when
    /// the config bound port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// An in-process reader over the same snapshot cell the connection
    /// handlers use.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(self.swap.clone())
    }

    /// Mutations currently queued or in flight at the writer.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_len.load(Ordering::Relaxed)
    }

    /// High-water mark of the write queue.
    pub fn max_queue_depth(&self) -> usize {
        self.shared.max_queue_len.load(Ordering::Relaxed)
    }

    /// Mutations shed with `Overloaded` so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Flags the server for shutdown (same as a wire `shutdown`
    /// request): [`wait_shutdown`](Self::wait_shutdown) unblocks, and
    /// [`serve`] begins the drain-then-close sequence when its closure
    /// returns.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until some client sends a `shutdown` request (or
    /// [`request_shutdown`](Self::request_shutdown) is called) — how the
    /// `tirm_server` binary's main thread parks itself.
    pub fn wait_shutdown(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag poisoned");
        }
    }
}

/// What a completed [`serve`] run did.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The snapshot after the last drained mutation — bit-identical to
    /// an in-process replay of the admitted events.
    pub final_snapshot: Arc<AllocationSnapshot>,
    /// Allocator lifetime counters.
    pub stats: OnlineStats,
    /// Mutations admitted to the write queue (all of them were applied).
    pub accepted: u64,
    /// Mutations shed with `Overloaded`.
    pub shed: u64,
    /// Admitted mutations the allocator rejected (unknown ids etc.).
    pub rejected: u64,
    /// Frames that failed to decode.
    pub bad_requests: u64,
    /// Write-queue high-water mark.
    pub max_queue_depth: usize,
    /// Connections handled over the run.
    pub connections: u64,
    /// Connections refused by the admission bound.
    pub connections_refused: u64,
}

impl ServeReport {
    /// Offered mutation load (admitted + shed).
    pub fn offered(&self) -> u64 {
        self.accepted + self.shed
    }

    /// Fraction of offered mutations shed (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered() as f64
        }
    }
}

/// Runs a server over `graph`/`topic_probs`, calls `f` with its
/// [`ServerHandle`] once the listener is live, and performs the
/// drain-then-close shutdown when `f` returns. Returns `f`'s result and
/// the [`ServeReport`] with the final (fully drained) snapshot.
///
/// The allocator borrows the graph, so the whole server runs inside a
/// `std::thread::scope` — no `'static` bounds, no graph cloning; the
/// caller keeps ownership of the multi-GB dataset.
pub fn serve<R>(
    graph: &DiGraph,
    topic_probs: &TopicEdgeProbs,
    cfg: ServerConfig,
    f: impl FnOnce(&ServerHandle) -> R,
) -> std::io::Result<(R, ServeReport)> {
    assert!(cfg.queue_depth >= 1, "queue_depth must admit something");
    assert!(cfg.max_connections >= 1, "need at least one connection");
    let listener = TcpListener::bind(&cfg.bind)?;
    let addr = listener.local_addr()?;

    let mut allocator = OnlineAllocator::new(graph, topic_probs, cfg.online.clone());
    let swap = SnapshotSwap::new(allocator.snapshot());
    let shared = Shared::new();
    let (tx, rx) = std::sync::mpsc::sync_channel::<OnlineEvent>(cfg.queue_depth);
    let handle = ServerHandle {
        addr,
        swap: swap.clone(),
        shared: shared.clone(),
    };

    let (result, final_snapshot, stats) = std::thread::scope(|s| {
        // Writer: the only thread that ever touches the allocator.
        let writer = {
            let swap = swap.clone();
            let shared = shared.clone();
            s.spawn(move || {
                while let Ok(ev) = rx.recv() {
                    // A rejected event changed nothing (and didn't bump
                    // the epoch): skip the O(ads + seeds) snapshot copy
                    // and the reader-side refresh it would force.
                    match allocator.process(&ev) {
                        Ok(_) => swap.publish(allocator.snapshot()),
                        Err(_) => {
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                }
                // All senders dropped ⇒ every admitted mutation above
                // was applied: the drain guarantee.
                (allocator.snapshot(), allocator.stats())
            })
        };

        // Acceptor: spawns one handler per admitted connection.
        let acceptor = {
            let shared = shared.clone();
            let swap = swap.clone();
            let tx = tx.clone();
            let read_poll = cfg.read_poll;
            let max_connections = cfg.max_connections;
            s.spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if shared.connections_open.load(Ordering::Relaxed) >= max_connections {
                        shared.connections_refused.fetch_add(1, Ordering::Relaxed);
                        refuse_connection(stream);
                        continue;
                    }
                    shared.connections_open.fetch_add(1, Ordering::Relaxed);
                    shared.connections_total.fetch_add(1, Ordering::Relaxed);
                    let shared = shared.clone();
                    let swap = swap.clone();
                    let tx = tx.clone();
                    s.spawn(move || {
                        handle_connection(stream, tx, swap, &shared, read_poll);
                        shared.connections_open.fetch_sub(1, Ordering::Relaxed);
                    });
                }
            })
        };

        // The stop guard runs on BOTH exits from `f`: a clean return and
        // an unwind. A panicking closure (a failed harness expectation)
        // would otherwise leave the acceptor parked in `accept()`
        // forever — the scope joins all threads before re-raising, so
        // the panic would hang instead of propagating.
        struct StopGuard<'a> {
            shared: &'a Shared,
            addr: SocketAddr,
        }
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                self.shared.stop.store(true, Ordering::Release);
                self.shared.request_shutdown();
                // Wake the blocked accept with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
            }
        }
        let result = {
            let _stop = StopGuard {
                shared: &shared,
                addr,
            };
            f(&handle)
        };

        // Drain-then-close (the guard above already flipped stop and
        // woke the acceptor). Handlers exit via their read-poll stop
        // checks, dropping their queue senders; once ours goes too the
        // writer drains whatever was admitted and returns the final
        // snapshot. The explicit join order just makes the sequence
        // readable — the scope would join everything anyway.
        acceptor.join().expect("acceptor panicked");
        drop(tx);
        let (final_snapshot, stats) = writer.join().expect("writer panicked");
        (result, final_snapshot, stats)
    });

    let report = ServeReport {
        final_snapshot,
        stats,
        accepted: shared.accepted.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        bad_requests: shared.bad_requests.load(Ordering::Relaxed),
        max_queue_depth: shared.max_queue_len.load(Ordering::Relaxed),
        connections: shared.connections_total.load(Ordering::Relaxed),
        connections_refused: shared.connections_refused.load(Ordering::Relaxed),
    };
    Ok((result, report))
}

/// How long a response write may block on a peer that isn't reading
/// before the connection is dropped (handlers must stay joinable for
/// the drain-then-close shutdown).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Answers one over-admission connection with `Overloaded` and closes
/// it.
fn refuse_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let resp = Response::Overloaded { queue_depth: 0 }.encode();
    let _ = write_frame(&mut stream, resp.as_bytes());
    let _ = stream.flush();
}

/// One connection's request loop. Reads answer from the handler's
/// cached snapshot (no lock unless the writer published); mutations are
/// `try_send` admission — full queue ⇒ `Overloaded`, never a block.
fn handle_connection(
    mut stream: TcpStream,
    tx: SyncSender<OnlineEvent>,
    swap: Arc<SnapshotSwap>,
    shared: &Shared,
    read_poll: Duration,
) {
    // The write timeout bounds a peer that stops *reading*: without it,
    // a full kernel send buffer would block the handler in `write_all`
    // forever — unjoinable at shutdown. A timed-out write corrupts that
    // connection's framing, so the handler drops the connection.
    if stream.set_read_timeout(Some(read_poll)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut reader = SnapshotReader::new(swap);
    loop {
        let frame = match read_frame_polling(&mut stream, || shared.stop.load(Ordering::Acquire)) {
            Ok(Some(frame)) => frame,
            // Clean EOF, stop while idle, or a broken peer: close.
            Ok(None) | Err(_) => return,
        };
        let response = match Request::decode(&frame) {
            Err(why) => {
                shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                Response::Rejected { why }
            }
            Ok(Request::Mutate(ev)) => admit(&ev, &tx, &mut reader, shared),
            Ok(Request::RegretQuery) => {
                let snap = reader.latest();
                Response::Regret {
                    epoch: snap.epoch,
                    live_ads: snap.num_ads(),
                    regret_estimate: snap.regret_estimate,
                }
            }
            Ok(Request::AllocationQuery) => Response::Allocation((**reader.latest()).clone()),
            Ok(Request::AdQuery { id }) => {
                let snap = reader.latest();
                Response::Ad {
                    epoch: snap.epoch,
                    ad: snap.ad(id).cloned(),
                }
            }
            Ok(Request::Stats) => {
                let snap = reader.latest();
                Response::Stats(StatsView {
                    epoch: snap.epoch,
                    live_ads: snap.num_ads(),
                    total_seeds: snap.total_seeds(),
                    total_rr_sets: snap.total_rr_sets,
                    engine_memory_bytes: snap.engine_memory_bytes,
                    queue_depth: shared.queue_len.load(Ordering::Relaxed),
                    max_queue_depth: shared.max_queue_len.load(Ordering::Relaxed),
                    accepted: shared.accepted.load(Ordering::Relaxed),
                    shed: shared.shed.load(Ordering::Relaxed),
                    rejected: shared.rejected.load(Ordering::Relaxed),
                    bad_requests: shared.bad_requests.load(Ordering::Relaxed),
                    connections: shared.connections_open.load(Ordering::Relaxed),
                })
            }
            Ok(Request::Shutdown) => {
                shared.request_shutdown();
                Response::ShuttingDown
            }
        };
        if write_frame(&mut stream, response.encode().as_bytes()).is_err() {
            return;
        }
    }
}

/// Admission control for one mutation: count it into the queue depth
/// first (so the writer's decrement can never race below zero), then
/// try to enqueue; a full queue rolls the count back and sheds.
fn admit(
    ev: &OnlineEvent,
    tx: &SyncSender<OnlineEvent>,
    reader: &mut SnapshotReader,
    shared: &Shared,
) -> Response {
    let depth = shared.queue_len.fetch_add(1, Ordering::Relaxed) + 1;
    match tx.try_send(ev.clone()) {
        Ok(()) => {
            shared.max_queue_len.fetch_max(depth, Ordering::Relaxed);
            shared.accepted.fetch_add(1, Ordering::Relaxed);
            Response::Accepted {
                epoch: reader.latest().epoch,
                queue_depth: depth,
            }
        }
        Err(TrySendError::Full(_)) => {
            shared.queue_len.fetch_sub(1, Ordering::Relaxed);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            Response::Overloaded {
                queue_depth: depth - 1,
            }
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.queue_len.fetch_sub(1, Ordering::Relaxed);
            Response::ShuttingDown
        }
    }
}
