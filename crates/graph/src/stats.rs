//! Summary statistics used to print the paper's Table 1 analogue and to
//! sanity-check generated workloads.

use crate::csr::{DiGraph, NodeId};

/// Degree and size summary of a digraph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of arcs.
    pub edges: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean degree (arcs per node).
    pub mean_degree: f64,
    /// Fraction of arcs that are reciprocated (both `(u,v)` and `(v,u)`).
    pub reciprocity: f64,
    /// Number of nodes with no arcs at all.
    pub isolated_nodes: usize,
    /// Gini coefficient of the in-degree distribution — a scale-free
    /// follower graph scores high (≳0.5), a lattice low.
    pub in_degree_gini: f64,
}

impl GraphStats {
    /// Computes statistics in `O(n log n + m log(deg))`.
    pub fn compute(g: &DiGraph) -> GraphStats {
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut isolated = 0usize;
        let mut reciprocal = 0usize;
        let mut in_degs: Vec<usize> = Vec::with_capacity(n);
        for u in 0..n as NodeId {
            let od = g.out_degree(u);
            let id = g.in_degree(u);
            max_out = max_out.max(od);
            max_in = max_in.max(id);
            if od + id == 0 {
                isolated += 1;
            }
            in_degs.push(id);
            for (_, v) in g.out_edges(u) {
                if g.has_edge(v, u) {
                    reciprocal += 1;
                }
            }
        }
        in_degs.sort_unstable();
        let gini = gini(&in_degs);
        GraphStats {
            nodes: n,
            edges: m,
            max_out_degree: max_out,
            max_in_degree: max_in,
            mean_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            reciprocity: if m == 0 {
                0.0
            } else {
                reciprocal as f64 / m as f64
            },
            isolated_nodes: isolated,
            in_degree_gini: gini,
        }
    }
}

/// Gini coefficient of a sorted non-negative sample; 0 = uniform,
/// → 1 = all mass on one element.
fn gini(sorted: &[usize]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = sorted.iter().map(|&x| x as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        weighted += (i as f64 + 1.0) * x as f64;
    }
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} edges={} mean_deg={:.2} max_out={} max_in={} recip={:.3} gini_in={:.3}",
            self.nodes,
            self.edges,
            self.mean_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.reciprocity,
            self.in_degree_gini
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn star_stats() {
        let s = generators::star(11);
        let st = GraphStats::compute(&s);
        assert_eq!(st.nodes, 11);
        assert_eq!(st.edges, 10);
        assert_eq!(st.max_out_degree, 10);
        assert_eq!(st.max_in_degree, 1);
        assert_eq!(st.reciprocity, 0.0);
        assert_eq!(st.isolated_nodes, 0);
    }

    #[test]
    fn clique_is_fully_reciprocal() {
        let g = generators::clique(6);
        let st = GraphStats::compute(&g);
        assert!((st.reciprocity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!((gini(&[5, 5, 5, 5])).abs() < 1e-12);
        // All mass on one node out of many → close to 1.
        let mut v = vec![0usize; 99];
        v.push(1000);
        v.sort_unstable();
        assert!(gini(&v) > 0.95);
    }

    #[test]
    fn power_law_graph_scores_high_gini() {
        let g = generators::preferential_attachment(3000, 4, 0.2, 1);
        let st = GraphStats::compute(&g);
        let ws = generators::watts_strogatz(3000, 4, 0.05, 1);
        let st2 = GraphStats::compute(&ws);
        assert!(
            st.in_degree_gini > st2.in_degree_gini + 0.2,
            "PA gini {} should dominate WS gini {}",
            st.in_degree_gini,
            st2.in_degree_gini
        );
    }
}
