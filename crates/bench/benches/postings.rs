//! Micro-benchmarks for the RR hot path's two storage/compute layers:
//!
//! * **Postings scan** — traversing every node's posting list through
//!   the two-tier arena [`RrIndex`] vs the legacy one-`Vec`-per-node
//!   layout it replaced. The coverage overlays spend their time exactly
//!   here, so this is the locality story in isolation.
//! * **Sampler inner loop** — the threshold-batched BFS
//!   ([`RrSampler::sample_with`] + [`BlockRng`]) vs the float-coin path
//!   ([`RrSampler::sample`] + `SmallRng`), with and without the
//!   degree-ordered mark relabeling. All three variants draw the exact
//!   same RR sets (pinned by the rrset tests); the delta is pure
//!   per-arc cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tirm_rrset::{BlockRng, FastPath, RrIndex, RrSampler, SampleWorkspace, SamplingLayout};
use tirm_workloads::{Dataset, DatasetKind, ScaleConfig};

const NODES: usize = 4096;
const SETS: usize = 8192;
const SET_SIZE: usize = 16;

/// The same synthetic membership stream materialised both ways: the
/// arena index (compacted, as the allocator reports it) and the legacy
/// per-node `Vec` layout.
fn build_layouts() -> (RrIndex, Vec<Vec<u32>>) {
    let mut idx = RrIndex::new(NODES);
    let mut legacy: Vec<Vec<u32>> = vec![Vec::new(); NODES];
    let mut members = [0u32; SET_SIZE];
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for sid in 0..SETS as u32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let base = (x >> 33) as usize;
        let stride = ((x >> 7) as usize & 0x1ff) | 1;
        for (j, m) in members.iter_mut().enumerate() {
            *m = ((base + j * stride) % NODES) as u32;
        }
        idx.push_set(&members);
        for &m in &members {
            legacy[m as usize].push(sid);
        }
    }
    idx.compact();
    (idx, legacy)
}

fn bench_postings_scan(c: &mut Criterion) {
    let (idx, legacy) = build_layouts();
    let entries = idx.total_entries() as u64;

    let mut g = c.benchmark_group("postings_scan");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.throughput(criterion::Throughput::Elements(entries));
    g.bench_function("arena_two_tier", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..NODES as u32 {
                let (frozen, hot) = idx.postings(v).as_slices();
                for &s in frozen {
                    acc = acc.wrapping_add(s as u64);
                }
                for &s in hot {
                    acc = acc.wrapping_add(s as u64);
                }
            }
            acc
        })
    });
    g.bench_function("legacy_vec_per_node", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for list in &legacy {
                for &s in list {
                    acc = acc.wrapping_add(s as u64);
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_sampler_inner_loop(c: &mut Criterion) {
    let cfg = ScaleConfig {
        scale: 0.25,
        eval_runs: 100,
        threads: 1,
    };
    let d = Dataset::generate(DatasetKind::Epinions, &cfg, 1);
    let ad = tirm_topics::TopicDist::concentrated(10, 0, 0.91);
    let probs = d.topic_probs.project(&ad);
    let sampler = RrSampler::new(&d.graph, &probs);
    let n = d.graph.num_nodes();

    let mut g = c.benchmark_group("sampler_inner_loop");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.throughput(criterion::Throughput::Elements(1000));
    g.bench_function("float_coins", |b| {
        b.iter_batched(
            || (SampleWorkspace::new(n), SmallRng::seed_from_u64(7)),
            |(mut ws, mut rng)| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    total += sampler.sample(&mut ws, &mut rng).len();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    let identity = FastPath::new(Arc::new(SamplingLayout::identity()), &d.graph, &probs);
    // Same threshold route, driven by the bare generator instead of the
    // 64-word block buffer — isolates the buffering cost from the
    // threshold comparison (the word stream is identical either way).
    g.bench_function("thresholds_bare_rng", |b| {
        b.iter_batched(
            || (SampleWorkspace::new(n), SmallRng::seed_from_u64(7)),
            |(mut ws, mut rng)| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    total += sampler.sample_with(&identity, &mut ws, &mut rng).len();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("thresholds_identity_layout", |b| {
        b.iter_batched(
            || (SampleWorkspace::new(n), BlockRng::seed_from_u64(7)),
            |(mut ws, mut rng)| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    total += sampler.sample_with(&identity, &mut ws, &mut rng).len();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    let relabeled = FastPath::new(
        Arc::new(SamplingLayout::degree_ordered(&d.graph)),
        &d.graph,
        &probs,
    );
    g.bench_function("thresholds_degree_layout", |b| {
        b.iter_batched(
            || (SampleWorkspace::new(n), BlockRng::seed_from_u64(7)),
            |(mut ws, mut rng)| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    total += sampler.sample_with(&relabeled, &mut ws, &mut rng).len();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_postings_scan, bench_sampler_inner_loop);
criterion_main!(benches);
