//! A small blocking client for the wire protocol — what the load
//! generator, the soak test and the equivalence harness speak.

use crate::protocol::{
    hex_decode, read_frame, write_frame, ClientOptions, Request, Response, Role, StatsView,
    PROTOCOL_VERSION,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use tirm_online::{AllocationSnapshot, OnlineEvent};

/// What the server announced in its `hello` response: the recovery
/// anchors a reconnecting client resumes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloInfo {
    /// The server's protocol version (equal to ours, or
    /// [`Client::connect_with`] would have failed typed).
    pub version: u32,
    /// Snapshot epoch at handshake time.
    pub epoch: u64,
    /// The server's durable frontier: admitted mutations logged and
    /// fsynced so far. A client replaying an event log resumes at the
    /// `wal_seq`-th mutation — everything before it survived.
    pub wal_seq: u64,
    /// Whether this endpoint admits mutations ([`Role::Leader`]) or
    /// redirects them ([`Role::Follower`]). v1 servers announce no
    /// role and decode as leaders.
    pub role: Role,
    /// The fencing epoch the server serves under (0 until a promotion
    /// ever happened in its state dir's lineage).
    pub fencing_epoch: u64,
}

/// One page of a checkpoint download
/// ([`Client::replicate_checkpoint`]), already decoded from the wire's
/// hex transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointChunk {
    /// The WAL frontier the checkpoint covers — its identity. A seq
    /// that changes between chunks means the leader rotated
    /// checkpoints mid-download; restart from offset 0.
    pub checkpoint_seq: u64,
    /// Byte offset of this chunk within the checkpoint file.
    pub offset: u64,
    /// Total checkpoint file size (download done when
    /// `offset + data.len() >= total_bytes`).
    pub total_bytes: u64,
    /// The raw checkpoint bytes of this chunk.
    pub data: Vec<u8>,
}

/// One connection to a `tirm_server`. Requests are strictly
/// request/response on the connection; open several clients for
/// concurrency.
pub struct Client {
    stream: TcpStream,
    hello: Option<HelloInfo>,
}

/// A protocol-level failure surfaced as `io::Error` with context.
fn protocol_err(why: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why)
}

impl Client {
    /// Connects (with `TCP_NODELAY` — frames are small and
    /// latency-sensitive) without a handshake — the bare pre-`hello`
    /// client. Use [`connect_with`](Self::connect_with) for version
    /// checking, reconnection, and the resume anchor.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            hello: None,
        })
    }

    /// Connects per `opts`: bounded reconnect attempts with capped
    /// exponential backoff (for a server that is restarting), then the
    /// optional `hello` handshake — version skew is a typed
    /// `InvalidData` error here, not a mid-stream decode failure later.
    pub fn connect_with(
        addr: impl ToSocketAddrs + Clone,
        opts: &ClientOptions,
    ) -> io::Result<Client> {
        let mut attempt = 0;
        loop {
            match Self::connect_once(addr.clone(), opts) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if attempt >= opts.reconnect_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(opts.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    fn connect_once(addr: impl ToSocketAddrs, opts: &ClientOptions) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        if opts.nodelay {
            stream.set_nodelay(true)?;
        }
        let mut client = Client {
            stream,
            hello: None,
        };
        if opts.handshake {
            match client.request(&Request::Hello {
                version: PROTOCOL_VERSION,
            })? {
                Response::Hello {
                    version,
                    epoch,
                    wal_seq,
                    role,
                    fencing_epoch,
                } => {
                    if version != PROTOCOL_VERSION {
                        return Err(protocol_err(format!(
                            "protocol version skew: server speaks v{version}, \
                             this client speaks v{PROTOCOL_VERSION}"
                        )));
                    }
                    client.hello = Some(HelloInfo {
                        version,
                        epoch,
                        wal_seq,
                        role,
                        fencing_epoch,
                    });
                }
                other => return Err(protocol_err(format!("expected hello, got {other:?}"))),
            }
        }
        Ok(client)
    }

    /// The server's `hello` announcement (`None` when connected without
    /// a handshake).
    pub fn hello(&self) -> Option<&HelloInfo> {
        self.hello.as_ref()
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send_raw_frame(req.encode().as_bytes())
    }

    /// Sends an arbitrary frame body and reads the typed response —
    /// how harnesses probe the server's handling of malformed requests.
    pub fn send_raw_frame(&mut self, body: &[u8]) -> io::Result<Response> {
        write_frame(&mut self.stream, body)?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| protocol_err("server closed the connection".to_string()))?;
        Response::decode(&frame).map_err(protocol_err)
    }

    /// Sends a mutating event (or routes `RegretQuery` to the read
    /// path), returning the raw admission/read response.
    pub fn send_event(&mut self, ev: &OnlineEvent) -> io::Result<Response> {
        let req = match ev {
            OnlineEvent::RegretQuery => Request::RegretQuery,
            other => Request::Mutate(other.clone()),
        };
        self.request(&req)
    }

    /// [`send_event`](Self::send_event) with bounded retry on
    /// [`Response::Overloaded`] — the deterministic-delivery mode replay
    /// harnesses use (every mutation eventually lands, so the server's
    /// final snapshot is a pure function of the log). Backs off by
    /// `backoff` between attempts; gives up after `deadline`.
    pub fn send_event_retrying(
        &mut self,
        ev: &OnlineEvent,
        backoff: Duration,
        deadline: Duration,
    ) -> io::Result<Response> {
        let t0 = Instant::now();
        loop {
            match self.send_event(ev)? {
                Response::Overloaded { .. } if t0.elapsed() < deadline => {
                    std::thread::sleep(backoff);
                }
                other => return Ok(other),
            }
        }
    }

    /// The full standing allocation from the latest snapshot.
    pub fn allocation(&mut self) -> io::Result<AllocationSnapshot> {
        match self.request(&Request::AllocationQuery)? {
            Response::Allocation(snap) => Ok(snap),
            other => Err(protocol_err(format!("expected allocation, got {other:?}"))),
        }
    }

    /// The regret estimate from the latest snapshot.
    pub fn regret(&mut self) -> io::Result<(u64, f64)> {
        match self.request(&Request::RegretQuery)? {
            Response::Regret {
                epoch,
                regret_estimate,
                ..
            } => Ok((epoch, regret_estimate)),
            other => Err(protocol_err(format!("expected regret, got {other:?}"))),
        }
    }

    /// Serving statistics.
    pub fn stats(&mut self) -> io::Result<StatsView> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(protocol_err(format!("expected stats, got {other:?}"))),
        }
    }

    /// The server's observability registry dump as a JSON string
    /// (counters, gauges, histograms, slow-event trace). The dump is
    /// process-lifetime state — it survives snapshot publishes and
    /// follower promotion, unlike the per-run [`Self::stats`] counters.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(protocol_err(format!("expected metrics, got {other:?}"))),
        }
    }

    /// Fetches the server's flight-recorder lineage dump (Chrome
    /// trace-event JSON, same payload as HTTP `/trace.json`).
    pub fn trace_dump(&mut self) -> io::Result<String> {
        match self.request(&Request::TraceDump)? {
            Response::TraceDump { json } => Ok(json),
            other => Err(protocol_err(format!("expected trace dump, got {other:?}"))),
        }
    }

    /// One replication poll: asks the server for WAL frames starting
    /// at `from_seq`. The response is returned raw because three
    /// outcomes are all legitimate protocol — `ReplicateFrames` (a
    /// page, possibly empty when caught up), `ReplicateBootstrap` (the
    /// anchor was pruned; download the checkpoint first), `NotLeader`
    /// (re-target the stream).
    pub fn replicate_poll(&mut self, from_seq: u64, max_frames: u64) -> io::Result<Response> {
        self.request(&Request::ReplicatePoll {
            from_seq,
            max_frames,
        })
    }

    /// One page of a checkpoint download, decoded from the wire's hex
    /// transport. An `offset` at or past `total_bytes` yields an empty
    /// `data` — the downloader's loop terminator.
    pub fn replicate_checkpoint(
        &mut self,
        offset: u64,
        max_bytes: u64,
    ) -> io::Result<CheckpointChunk> {
        match self.request(&Request::ReplicateCheckpoint { offset, max_bytes })? {
            Response::ReplicateCheckpointChunk {
                checkpoint_seq,
                offset,
                total_bytes,
                data_hex,
            } => Ok(CheckpointChunk {
                checkpoint_seq,
                offset,
                total_bytes,
                data: hex_decode(&data_hex).map_err(protocol_err)?,
            }),
            other => Err(protocol_err(format!(
                "expected checkpoint chunk, got {other:?}"
            ))),
        }
    }

    /// Asks a follower to promote itself to leader, returning the
    /// fencing epoch it will serve under. A current leader answers
    /// `Rejected`, surfaced here as an error.
    pub fn promote(&mut self) -> io::Result<u64> {
        match self.request(&Request::Promote)? {
            Response::Promoting { fencing_epoch } => Ok(fencing_epoch),
            other => Err(protocol_err(format!("expected promoting, got {other:?}"))),
        }
    }

    /// Asks the server to begin graceful shutdown.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(protocol_err(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }
}
