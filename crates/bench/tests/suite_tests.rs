//! Integration tests for the perf-suite backbone: artifact round trips,
//! `bench_diff` fixture pairs, and suite determinism.

use tirm_bench::diff::{diff_reports, DiffOptions, Verdict};
use tirm_bench::schema::{BenchReport, EnvFingerprint, SCHEMA_VERSION};
use tirm_bench::suite::{run_scenario, run_suite, SuiteConfig};
use tirm_workloads::scenarios::{AllocatorKind, ScenarioSpec, Tier};
use tirm_workloads::{DatasetKind, ProbModel, ScaleConfig};

/// Small enough for debug-build test runs, big enough to exercise the
/// real problem construction and allocators.
fn tiny_scale() -> ScaleConfig {
    ScaleConfig {
        scale: 0.02,
        eval_runs: 20,
        threads: 1,
    }
}

fn spec(dataset: DatasetKind, model: ProbModel, allocator: AllocatorKind) -> ScenarioSpec {
    ScenarioSpec {
        dataset,
        model,
        allocator,
        threads: 1,
        kappa: 1,
        lambda: 0.0,
        seed_cap: None,
        online: false,
        serving: false,
        serving_repl: false,
    }
}

fn online_spec(dataset: DatasetKind, model: ProbModel, kappa: u32) -> ScenarioSpec {
    ScenarioSpec {
        kappa,
        online: true,
        ..spec(dataset, model, AllocatorKind::Tirm)
    }
}

fn serving_spec(dataset: DatasetKind, model: ProbModel, kappa: u32) -> ScenarioSpec {
    ScenarioSpec {
        kappa,
        serving: true,
        ..spec(dataset, model, AllocatorKind::Tirm)
    }
}

// ---------------------------------------------------------------- schema

#[test]
fn measured_cells_round_trip_through_the_artifact_format() {
    let cell = run_scenario(
        &spec(
            DatasetKind::Epinions,
            ProbModel::Exponential,
            AllocatorKind::GreedyIrie,
        ),
        &tiny_scale(),
        42,
    );
    let report = BenchReport::new("test", EnvFingerprint::current(&tiny_scale()), vec![cell]);
    let back = BenchReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, back, "measured values must survive JSON exactly");
    assert_eq!(back.schema_version, SCHEMA_VERSION);
    let c = &back.cells[0];
    assert_eq!(c.dataset, "EPINIONS");
    assert_eq!(c.prob_model, "exp");
    assert_eq!(c.allocator, "IRIE");
    assert!(c.nodes >= 64 && c.edges > 0 && c.ads == 10);
}

// ------------------------------------------------------------ bench_diff

/// Builds the (baseline, probe) fixture pair on disk, mutates the probe
/// with `mutate`, and returns the decoded diff.
fn fixture_diff(mutate: impl FnOnce(&mut BenchReport)) -> tirm_bench::diff::DiffReport {
    let cell_a = run_scenario(
        &spec(
            DatasetKind::Flixster,
            ProbModel::TopicConcentrated,
            AllocatorKind::GreedyIrie,
        ),
        &tiny_scale(),
        7,
    );
    let cell_b = run_scenario(
        &spec(
            DatasetKind::Epinions,
            ProbModel::Exponential,
            AllocatorKind::GreedyIrie,
        ),
        &tiny_scale(),
        7,
    );
    // Explicit release-like fingerprint: `EnvFingerprint::current` in a
    // debug test build sets `debug_assertions`, which (correctly) makes
    // the diff refuse to compare wall-clock fields at all.
    let env = EnvFingerprint {
        debug_assertions: false,
        ..EnvFingerprint::current(&tiny_scale())
    };
    let mut baseline = BenchReport::new("test", env.clone(), vec![cell_a, cell_b]);
    for c in &mut baseline.cells {
        // Debug-build fixture timings sit under the 50 ms noise gate;
        // normalize them so the pair actually exercises time comparison.
        c.wall_s = 1.0;
        c.eval_s = 1.0;
    }
    let mut probe = baseline.clone();
    mutate(&mut probe);

    // Through the filesystem, like the real gate.
    let dir = std::env::temp_dir().join(format!("tirm_diff_fixture_{}", std::process::id()));
    let old_path = dir.join("BENCH_old.json");
    let new_path = dir.join("BENCH_new.json");
    baseline.save(&old_path).unwrap();
    probe.save(&new_path).unwrap();
    let old = BenchReport::load(&old_path).unwrap();
    let new = BenchReport::load(&new_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Fixture timings must be above the noise gate for time checks.
    diff_reports(&old, &new, &DiffOptions::default())
}

#[test]
fn fixture_pair_no_regression() {
    let d = fixture_diff(|_| {});
    assert!(
        !d.has_regressions(),
        "identical artifacts must pass: {:?}",
        d.findings
    );
    assert_eq!(d.cells_joined, 2);
}

#[test]
fn fixture_pair_injected_slowdown_is_flagged() {
    let d = fixture_diff(|probe| {
        for c in &mut probe.cells {
            c.wall_s *= 1.2;
        }
    });
    assert!(d.has_regressions(), "a 20% slowdown must fail the gate");
    assert!(d
        .findings
        .iter()
        .any(|f| f.metric == "wall_s" && f.verdict == Verdict::Regression));
}

#[test]
fn fixture_pair_jitter_passes() {
    let d = fixture_diff(|probe| {
        for c in &mut probe.cells {
            c.wall_s *= 1.08; // under the 15% tolerance
        }
    });
    assert!(!d.has_regressions(), "8% jitter must not fail the gate");
}

#[test]
fn fixture_pair_missing_cell_is_flagged() {
    let d = fixture_diff(|probe| {
        probe.cells.pop();
    });
    assert!(d.has_regressions());
    assert!(d.findings.iter().any(|f| f.verdict == Verdict::MissingCell));
    assert_eq!(d.cells_joined, 1);
}

// ---------------------------------------------------------- determinism

#[test]
fn same_seed_same_metric_payload() {
    // Two independent runs of the same cells must agree on every
    // deterministic field; only wall-clock fields may differ.
    let scale = tiny_scale();
    let specs = [
        spec(
            DatasetKind::Flixster,
            ProbModel::TopicConcentrated,
            AllocatorKind::Tirm,
        ),
        spec(
            DatasetKind::Dblp,
            ProbModel::WeightedCascade,
            AllocatorKind::GreedyIrie,
        ),
    ];
    for s in &specs {
        let mut a = run_scenario(s, &scale, 0x71a6_5eed);
        let mut b = run_scenario(s, &scale, 0x71a6_5eed);
        a.strip_timings();
        b.strip_timings();
        assert_eq!(a, b, "non-deterministic payload in {}", s.id());
        // Byte-level too: the artifact is the contract.
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
    }
}

#[test]
fn different_base_seed_changes_the_payload() {
    // Sanity check that the determinism test above cannot pass vacuously:
    // the seed must actually steer the measured allocation.
    let s = spec(
        DatasetKind::Flixster,
        ProbModel::TopicConcentrated,
        AllocatorKind::Tirm,
    );
    let scale = tiny_scale();
    let mut a = run_scenario(&s, &scale, 1);
    let mut b = run_scenario(&s, &scale, 2);
    a.strip_timings();
    b.strip_timings();
    assert_ne!(a.seed, b.seed);
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "different seeds should perturb some metric"
    );
}

#[test]
fn snapshot_warm_run_has_identical_metric_payload() {
    // The run-twice determinism contract must survive the snapshot cache:
    // run 1 generates cold and writes snapshots, run 2 loads them warm —
    // every non-timing field of the artifacts must be byte-identical, and
    // the cold/warm provenance fields must say what happened.
    let dir = std::env::temp_dir().join(format!("tirm_suite_snapwarm_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = SuiteConfig {
        tier: Tier::Quick,
        scale: tiny_scale(),
        base_seed: 0x71a6_5eed,
        // Two cells sharing one (dataset, model): the second must reuse
        // the in-memory instance and report zero ingestion time.
        filter: Some("EPINIONS/exp".to_string()),
        snapshot_dir: Some(dir.clone()),
    };
    let cold = run_suite(&cfg);
    assert!(cold.cells.len() >= 2, "filter matched {}", cold.cells.len());
    assert!(
        cold.cells[0].dataset_cold_s > 0.0 && cold.cells[0].dataset_warm_s == 0.0,
        "first run generates cold"
    );
    assert!(
        cold.cells[1].dataset_cold_s == 0.0 && cold.cells[1].dataset_warm_s == 0.0,
        "second cell reuses the in-memory dataset"
    );

    let warm = run_suite(&cfg);
    assert!(
        warm.cells[0].dataset_warm_s > 0.0 && warm.cells[0].dataset_cold_s == 0.0,
        "second run loads the snapshot warm"
    );
    std::fs::remove_dir_all(&dir).ok();

    let strip = |r: &BenchReport| {
        let mut r = r.clone();
        r.created_unix = 0;
        for c in &mut r.cells {
            c.strip_timings();
        }
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(
        strip(&cold),
        strip(&warm),
        "snapshot-warm run must be bit-identical to cold generation"
    );
}

// -------------------------------------------------------------- online

#[test]
fn online_cell_measures_serving_metrics() {
    let cell = run_scenario(
        &online_spec(DatasetKind::Epinions, ProbModel::Exponential, 2),
        &tiny_scale(),
        0x71a6_5eed,
    );
    assert!(cell.id.starts_with("ONLINE/"));
    assert_eq!(cell.allocator, "ONLINE");
    assert!(cell.theta > 0, "serving layer holds RR capital");
    assert!(cell.memory_bytes > 0);
    assert!(cell.events_per_s > 0.0);
    assert!(cell.latency_p50_us > 0.0);
    assert!(cell.latency_p99_us >= cell.latency_p95_us);
    assert!(cell.latency_p95_us >= cell.latency_p50_us);
    // The artifact round-trips the new fields exactly.
    let report = BenchReport::new("test", EnvFingerprint::current(&tiny_scale()), vec![cell]);
    let back = BenchReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, back);
}

#[test]
fn online_cell_payload_is_deterministic() {
    let s = online_spec(DatasetKind::Epinions, ProbModel::Exponential, 2);
    let scale = tiny_scale();
    let mut a = run_scenario(&s, &scale, 0x71a6_5eed);
    let mut b = run_scenario(&s, &scale, 0x71a6_5eed);
    a.strip_timings();
    b.strip_timings();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "two replays must agree on every non-timing field"
    );
    assert_eq!(a.latency_p50_us, 0.0, "latencies are timing fields");
    assert_eq!(a.events_per_s, 0.0);
}

// -------------------------------------------------------------- serving

#[test]
fn serving_cell_measures_the_network_frontend() {
    let cell = run_scenario(
        &serving_spec(DatasetKind::Epinions, ProbModel::Exponential, 2),
        &tiny_scale(),
        0x71a6_5eed,
    );
    assert!(cell.id.starts_with("SERVING/"));
    assert_eq!(cell.allocator, "SERVING");
    assert!(cell.theta > 0, "drained snapshot carries the RR capital");
    assert!(cell.memory_bytes > 0);
    assert!(cell.events_per_s > 0.0);
    assert!(cell.latency_p50_us > 0.0, "wire mutation latencies stamped");
    assert!(cell.latency_p99_us >= cell.latency_p95_us);
    // The acceptance floor: ≥ 4 concurrent readers served during the
    // run, with their p99 and throughput in the artifact.
    assert!(cell.read_p99_us > 0.0, "read path p99 stamped");
    assert!(cell.reads_per_s > 0.0, "reader pool made progress");
    // Closed-loop readers must outpace the ~48-event mutation stream by
    // orders of magnitude — serialized-behind-the-writer reads can't.
    // (Mutation responses return at *admission*, so latency_p99_us is
    // wire RTT, not allocator service time — comparing read p99 against
    // it would be scheduler-noise roulette. The latency-instrumented
    // no-reader-blocks assertion lives in tirm_server's
    // `readers_never_block_on_the_writer`, which measures real mutation
    // service time via queue drain.)
    assert!(
        cell.reads_per_s > cell.events_per_s,
        "reader pool throughput {} vs {} events/s",
        cell.reads_per_s,
        cell.events_per_s
    );
    assert!((0.0..=1.0).contains(&cell.shed_rate), "shed rate recorded");
    // The artifact round-trips the v4 fields exactly.
    let report = BenchReport::new("test", EnvFingerprint::current(&tiny_scale()), vec![cell]);
    let back = BenchReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, back);
}

#[test]
fn serving_cell_payload_is_deterministic() {
    // Deterministic delivery (retry-on-overload) makes the drained
    // snapshot a pure function of the log: two runs through two real
    // servers on two ports must agree on every non-timing field.
    let s = serving_spec(DatasetKind::Epinions, ProbModel::Exponential, 2);
    let scale = tiny_scale();
    let mut a = run_scenario(&s, &scale, 0x71a6_5eed);
    let mut b = run_scenario(&s, &scale, 0x71a6_5eed);
    a.strip_timings();
    b.strip_timings();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "two served runs must agree on every non-timing field"
    );
    assert_eq!(a.read_p99_us, 0.0, "read metrics are timing fields");
    assert_eq!(a.reads_per_s, 0.0);
    assert_eq!(a.shed_rate, 0.0);
}

fn replicated_spec(dataset: DatasetKind, model: ProbModel, kappa: u32) -> ScenarioSpec {
    ScenarioSpec {
        kappa,
        serving_repl: true,
        ..spec(dataset, model, AllocatorKind::Tirm)
    }
}

#[test]
fn replicated_cell_converges_and_stamps_follower_metrics() {
    // One real leader + one real WAL-shipping follower: the runner
    // itself asserts the follower's final snapshot is bit-identical to
    // the leader's drained one, so this test passing *is* the
    // replication-correctness check at tiny scale. On top we check the
    // v6 metric stamps and the artifact round trip.
    let mut cell = run_scenario(
        &replicated_spec(DatasetKind::Epinions, ProbModel::Exponential, 2),
        &tiny_scale(),
        0x71a6_5eed,
    );
    assert!(cell.id.starts_with("SERVING-REPL/"));
    assert_eq!(cell.allocator, "SERVING-REPL");
    assert!(cell.theta > 0, "drained snapshot carries the RR capital");
    assert!(cell.events_per_s > 0.0);
    assert!(cell.reads_per_s > 0.0, "reader pool made progress");
    assert!(
        cell.follower_reads_per_s > 0.0,
        "part of the reader pool must route through the follower"
    );
    assert!(cell.follower_lag_p99 >= 0.0, "lag p99 recorded");
    let report = BenchReport::new(
        "test",
        EnvFingerprint::current(&tiny_scale()),
        vec![cell.clone()],
    );
    let back = BenchReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, back, "v6 fields round-trip through the artifact");
    cell.strip_timings();
    assert_eq!(cell.follower_reads_per_s, 0.0, "timing field");
    assert_eq!(cell.follower_lag_p99, 0.0, "timing field");
}

#[test]
fn serving_and_online_cells_agree_on_the_engine() {
    // Same grid point, same seeds: the network cell's drained
    // allocation quality must match what the in-process cell computes —
    // the TCP layer is transport, not allocation policy. (Streams are
    // salted differently, so compare regret magnitudes only via both
    // being finite and the allocations being non-trivial.)
    let scale = tiny_scale();
    let serving = run_scenario(
        &serving_spec(DatasetKind::Epinions, ProbModel::Exponential, 2),
        &scale,
        7,
    );
    let online = run_scenario(
        &online_spec(DatasetKind::Epinions, ProbModel::Exponential, 2),
        &scale,
        7,
    );
    assert_eq!(serving.nodes, online.nodes, "shared problem instance");
    assert_eq!(serving.edges, online.edges);
    assert!(serving.total_seeds > 0 && online.total_seeds > 0);
}

#[test]
fn quick_tier_ids_match_runner_expectations() {
    // Every quick-tier spec must be runnable in principle: ids unique,
    // Greedy capped, and the ≥18-cell coverage the CI gate relies on.
    let specs = Tier::Quick.matrix();
    assert!(specs.len() >= 18);
    for s in &specs {
        if s.allocator == AllocatorKind::Greedy {
            assert!(s.seed_cap.is_some());
        }
    }
}
