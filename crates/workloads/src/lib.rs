//! # tirm-workloads
//!
//! Synthetic workloads shaped like the paper's evaluation setup (§6):
//!
//! * [`datasets`] — generators for FLIXSTER-, EPINIONS-, DBLP- and
//!   LIVEJOURNAL-like networks with matching degree structure and the
//!   §6 probability models (topic-concentrated, exponential, weighted
//!   cascade). Real data sets are proprietary/remote; DESIGN.md §3
//!   documents why these stand-ins preserve the experiments' behaviour.
//! * [`campaigns`] — advertiser generators matching Table 2 (budgets,
//!   CPEs) and the §6 topic-skew (`γ_i` = 0.91 own topic, 0.01 others).
//! * [`toy`] — the Fig. 1 gadget as a ready-made problem instance,
//!   including the paper's hand-built allocations A and B.
//! * [`scale`] — environment-driven scaling (`TIRM_SCALE`,
//!   `TIRM_EVAL_RUNS`, `TIRM_THREADS`) so the same harness runs on a
//!   laptop or a large server.
//! * [`scenarios`] — the declarative scenario matrix (dataset ×
//!   probability model × allocator × threads) behind the perf suite's
//!   `quick` / `full` / `paper` / `online` tiers.
//! * [`events`] — seeded, replayable event streams for the online
//!   serving layer (Poisson arrivals, truncated-Pareto budgets,
//!   top-ups/departures/queries) plus the JSON-lines log format.
//! * [`replay`] — the replay driver: feeds a log through a
//!   `tirm_online::OnlineAllocator`, recording per-event-type latency
//!   histograms and events/s throughput.

pub mod campaigns;
pub mod datasets;
pub mod events;
pub mod replay;
pub mod scale;
pub mod scenarios;
pub mod toy;

pub use campaigns::{campaign, CampaignSpec};
pub use datasets::{
    snapshot_dir, Dataset, DatasetKind, DatasetTiming, ProbModel, GENERATOR_VERSION,
};
pub use events::{final_population, EventStreamSpec, FinalAd, LogEvent};
// (`replay::replay` itself is not re-exported at the root: a function
// and a module sharing the name `replay` breaks rustdoc.)
pub use replay::{LatencyHistogram, ReplayReport};
pub use scale::ScaleConfig;
pub use scenarios::{AllocatorKind, ScenarioSpec, Tier};
