//! Fig. 1 / Examples 1–2: the worked toy example.
//!
//! Prints the paper's per-node click probabilities for allocations A and B
//! (exact possible-world values next to the paper's independence-
//! approximation numbers), the expected-click totals (paper: 5.55 vs 6.3),
//! and the regrets at λ = 0 and λ = 0.1 (paper: 6.6/2.7 and 7.2/3.3).

use tirm_core::report::{fnum, Table};
use tirm_core::RegretReport;
use tirm_diffusion::exact_activation_probs;
use tirm_workloads::toy::Fig1;

fn main() {
    let fig = Fig1::new();
    let problem = fig.problem(0.0);

    println!("Fig. 1 toy network: 6 users, 4 ads (a,b,c,d), CPE 1, kappa 1");
    println!();

    for (name, alloc, paper_total) in [
        ("Allocation A (myopic)", fig.allocation_a(), 5.55),
        ("Allocation B (virality-aware)", fig.allocation_b(), 6.30),
    ] {
        let mut t = Table::new(&["ad", "seeds", "exact E[clicks]"]);
        let mut total = 0.0;
        let mut revenues = Vec::new();
        for i in 0..4 {
            let seeds = alloc.seeds(i);
            let clicks: f64 = if seeds.is_empty() {
                0.0
            } else {
                exact_activation_probs(&fig.graph, &fig.probs, seeds, Some(problem.ctp.ad(i)))
                    .iter()
                    .sum()
            };
            total += clicks;
            revenues.push(clicks); // CPE = 1
            t.row(vec![
                ["a", "b", "c", "d"][i].to_string(),
                format!("{:?}", seeds.iter().map(|&s| s + 1).collect::<Vec<_>>()),
                fnum(clicks),
            ]);
        }
        println!("{name}");
        println!("{}", t.render());
        println!(
            "total expected clicks: {:.3}  (paper, independence approx: {paper_total})",
            total
        );
        for lambda in [0.0, 0.1] {
            let report = RegretReport::new(
                (0..4).map(|i| ([4.0, 2.0, 2.0, 1.0][i], revenues[i], alloc.seeds(i).len())),
                lambda,
            );
            println!("regret (lambda = {lambda}): {:.3}", report.total());
        }
        println!();
    }

    println!("note: the paper computes v6's click probability assuming its two");
    println!("parents are independent; they share ancestor v3, so the exact");
    println!("possible-world totals differ from 5.55/6.3 in the third decimal.");
}
