//! `tirm_obs`: zero-perturbation observability for the tirm stack.
//!
//! A process-wide metrics registry (sharded atomic [`Counter`]s,
//! [`Gauge`]s, fixed-bucket log2 [`Histogram`]s), a span-timing macro
//! ([`time!`]), a bounded top-K [`SlowTrace`], and two exposition
//! renderers (Prometheus text in [`prom`], a deterministic JSON dump in
//! [`registry`]) served over std TCP by [`http`].
//!
//! # Out-of-band by construction
//!
//! The serving stack's correctness anchors are bit-identity properties:
//! wire replay ≡ in-process replay, recovery replay ≡ the pre-crash
//! state, follower state ≡ leader state. Instrumentation therefore obeys
//! one rule: **metrics are write-only from instrumented code**. Nothing
//! reads a counter to pick a code path, size a buffer, or time out a
//! loop; exposition happens on dedicated threads that only read. With
//! that discipline, enabling metrics cannot change any allocation
//! decision — enforced by run-twice tests at the server layer.
//!
//! Hot-path cost is bounded the same way: recording is a handful of
//! relaxed atomic adds on pre-allocated statics (no locks, no
//! allocation), and per-item instrumentation lives at batch granularity
//! (per sampler call, per WAL group commit, per event apply) rather than
//! inside inner loops.
//!
//! The [`flight`] module extends the same discipline from aggregates to
//! *lineage*: per-mutation lifecycle stage records (admit → queue →
//! wal_append → fsync → apply → publish → replication) written into
//! fixed-size per-thread ring buffers, keyed by a trace id derived from
//! the mutation's WAL position so timelines join up across processes.

pub mod flight;
pub mod http;
pub mod metric;
pub mod prom;
pub mod registry;
pub mod sample;
pub mod trace;

pub use flight::{FlightEvent, Stage};
pub use metric::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, COUNTER_SHARDS,
    HISTOGRAM_BUCKETS,
};
pub use registry::{dump_json, snapshot, RegistrySnapshot};
pub use sample::SampleHistogram;
pub use trace::{SlowEvent, SlowTrace};
