//! Serialization traits: a small mirror of `serde::ser`.

/// A serializable value.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize values.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Sub-serializer for maps / structs.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit / null value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Begins a map with an optional known length.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a sequence with an optional known length.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Adds one `key: value` entry.
    fn serialize_entry<V: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Adds one element.
    fn serialize_element<V: Serialize + ?Sized>(&mut self, value: &V) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_unit(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
