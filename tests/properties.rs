//! Property-based tests (proptest) on cross-crate invariants: spread
//! monotonicity/submodularity under the exact engine, Lemma 1, projection
//! algebra, allocation validity of every algorithm on random instances.

use proptest::prelude::*;
use tirm::{
    myopic_allocate, myopic_plus_allocate, tirm_allocate, Advertiser, Attention, ProblemInstance,
    TirmOptions,
};
use tirm_diffusion::exact_spread;
use tirm_graph::{DiGraph, NodeId};
use tirm_topics::{CtpTable, TopicDist, TopicEdgeProbs};

/// Strategy: a random digraph with ≤ 10 arcs (exact-enumeration friendly)
/// over 6 nodes, plus per-arc probabilities.
fn small_graph() -> impl Strategy<Value = (DiGraph, Vec<f32>)> {
    proptest::collection::vec((0u32..6, 0u32..6), 1..10).prop_map(|pairs| {
        let edges: Vec<(NodeId, NodeId)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
        let g = DiGraph::from_edges(6, edges);
        let m = g.num_edges();
        // Deterministic pseudo-probabilities from edge ids.
        let probs = (0..m)
            .map(|e| 0.1 + 0.8 * ((e * 37 % 97) as f32 / 97.0))
            .collect();
        (g, probs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spread_is_monotone((g, probs) in small_graph(), extra in 0u32..6) {
        let s1 = exact_spread(&g, &probs, &[0], None);
        let s2 = exact_spread(&g, &probs, &[0, extra], None);
        prop_assert!(s2 >= s1 - 1e-9, "monotonicity: {s1} -> {s2}");
    }

    #[test]
    fn spread_is_submodular((g, probs) in small_graph(), x in 1u32..6) {
        // MG(x | ∅) ≥ MG(x | {0}).
        let empty = 0.0;
        let sx = exact_spread(&g, &probs, &[x], None);
        let s0 = exact_spread(&g, &probs, &[0], None);
        let s0x = exact_spread(&g, &probs, &[0, x], None);
        prop_assert!(
            (sx - empty) + 1e-9 >= s0x - s0,
            "submodularity: {} vs {}", sx, s0x - s0
        );
    }

    #[test]
    fn lemma_1_identity_holds((g, probs) in small_graph(), u in 1u32..6, d in 0.05f32..0.95) {
        let mut ctp = vec![1.0f32; 6];
        ctp[u as usize] = d;
        let s = [0u32];
        let su = [0u32, u];
        let lhs = d as f64 * (exact_spread(&g, &probs, &su, None)
            - exact_spread(&g, &probs, &s, None));
        let rhs = exact_spread(&g, &probs, &su, Some(&ctp))
            - exact_spread(&g, &probs, &s, Some(&ctp));
        prop_assert!((lhs - rhs).abs() < 1e-9, "Lemma 1: {lhs} vs {rhs}");
    }

    #[test]
    fn projection_is_bounded_convex(
        w0 in 0.0f32..1.0,
        p0 in 0.0f32..1.0,
        p1 in 0.0f32..1.0,
    ) {
        let mut tp = TopicEdgeProbs::new(1, 2);
        tp.set(0, 0, p0);
        tp.set(0, 1, p1);
        let ad = TopicDist::new(vec![w0, 1.0 - w0]).unwrap();
        let proj = tp.project(&ad)[0];
        let lo = p0.min(p1) - 1e-6;
        let hi = p0.max(p1) + 1e-6;
        prop_assert!(proj >= lo && proj <= hi, "{proj} outside [{lo}, {hi}]");
    }

    #[test]
    fn all_algorithms_emit_valid_allocations(
        seed in 0u64..200,
        kappa in 1u32..4,
        budget in 1.0f64..12.0,
    ) {
        let g = tirm_graph::generators::erdos_renyi(30, 90, seed);
        let h = 2usize;
        let ads = (0..h)
            .map(|_| Advertiser::new(budget, 1.0, TopicDist::single(1, 0)))
            .collect::<Vec<_>>();
        let probs = vec![vec![0.15f32; g.num_edges()]; h];
        let ctp = CtpTable::uniform_random(30, h, 0.1, 0.6, seed);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(kappa), 0.0);

        let (a, _) = myopic_allocate(&p);
        prop_assert!(a.validate(&p).is_ok());
        let (a, _) = myopic_plus_allocate(&p);
        prop_assert!(a.validate(&p).is_ok());
        let (a, _) = tirm_allocate(&p, TirmOptions {
            eps: 0.3,
            seed,
            max_theta_per_ad: Some(20_000),
            ..TirmOptions::default()
        });
        prop_assert!(a.validate(&p).is_ok());
    }
}
