//! CTP-weighted RR-set coverage.
//!
//! Algorithm 2 (line 12) of the paper removes every RR set covered by a
//! freshly chosen seed. That is exact when seeds click with probability 1
//! (the scalability setup, §6.2): a covering seed then activates the
//! set's root for sure. With click-through probabilities `δ ≪ 1`,
//! however, a chosen seed only "covers" a set with probability `δ` — the
//! exact possible-world bookkeeping multiplies the set's weight by
//! `(1 − δ)` instead of dropping it:
//!
//! * set weight `w_R = Π_{s ∈ S ∩ R} (1 − δ(s))` — probability that no
//!   already-chosen seed in `R` clicks;
//! * node score `score(v) = Σ_{R ∋ v} w_R` — so the exact marginal revenue
//!   of candidate `v` is `cpe · n · δ(v) · score(v) / θ`;
//! * `deficit = Σ_R (1 − w_R)` — so `n · deficit / θ` estimates
//!   `σ_ctp(S)` without bias (each root clicks iff some seed in its RR
//!   set clicks: probability `1 − w_R`).
//!
//! At `δ = 1` weights drop to 0 and this degenerates to the paper's
//! hard removal, so the weighted collection strictly generalises
//! [`crate::RrCollection`]. The difference at small CTPs is measured by
//! the `ablation` harness binary.

use tirm_graph::NodeId;

/// RR-set collection with per-set survival weights.
#[derive(Clone, Debug)]
pub struct WeightedRrCollection {
    n: usize,
    offsets: Vec<u32>,
    nodes: Vec<NodeId>,
    /// Survival weight `w_R` per set (1 until a seed in it is chosen).
    weights: Vec<f64>,
    /// `score[v] = Σ_{R ∋ v} w_R`.
    score: Vec<f64>,
    /// Inverted index node → set ids.
    index: Vec<Vec<u32>>,
    /// `Σ_R (1 − w_R)`.
    deficit: f64,
    /// Number of sets containing at least one chosen seed (weight < 1) —
    /// `n·touched/θ` estimates the CTP-free spread `σ_ic(S)`, used as an
    /// `OPT_s` lower-bound proxy for the θ formula.
    touched: usize,
}

impl WeightedRrCollection {
    /// Empty collection over `n` nodes.
    pub fn new(n: usize) -> Self {
        WeightedRrCollection {
            n,
            offsets: vec![0],
            nodes: Vec::new(),
            weights: Vec::new(),
            score: vec![0.0; n],
            index: vec![Vec::new(); n],
            deficit: 0.0,
            touched: 0,
        }
    }

    /// Number of nodes the collection is defined over.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total number of sets added (θ).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.weights.len()
    }

    /// Adds one RR set with weight 1; returns its id.
    pub fn add_set(&mut self, members: &[NodeId]) -> u32 {
        let sid = self.weights.len() as u32;
        self.nodes.extend_from_slice(members);
        self.offsets.push(self.nodes.len() as u32);
        self.weights.push(1.0);
        for &v in members {
            self.score[v as usize] += 1.0;
            self.index[v as usize].push(sid);
        }
        sid
    }

    /// Current score of `v` (weighted marginal coverage).
    #[inline]
    pub fn score(&self, v: NodeId) -> f64 {
        self.score[v as usize]
    }

    /// `Σ_R (1 − w_R)`; `n·deficit/θ` estimates `σ_ctp(S)` unbiasedly.
    #[inline]
    pub fn deficit(&self) -> f64 {
        self.deficit
    }

    /// Number of sets touched by at least one seed; `n·touched/θ`
    /// estimates the CTP-free spread `σ_ic(S)` of the chosen seed set.
    #[inline]
    pub fn union_coverage(&self) -> usize {
        self.touched
    }

    /// Commits seed `v` with click probability `delta`: every set
    /// containing `v` keeps only a `(1 − δ)` share of its weight
    /// (`δ = 1` reproduces the paper's hard removal). Returns `v`'s score
    /// before the decay (its weighted coverage at selection time).
    pub fn decay_node(&mut self, v: NodeId, delta: f64) -> f64 {
        self.decay_node_from(v, delta, 0)
    }

    /// Like [`Self::decay_node`] but only touches sets with id ≥
    /// `from_sid` — TIRM's `UpdateEstimates` (Algorithm 4) uses this to
    /// apply existing seeds to freshly sampled sets only. Returns `v`'s
    /// weighted score restricted to the touched id range, *before* decay.
    pub fn decay_node_from(&mut self, v: NodeId, delta: f64, from_sid: u32) -> f64 {
        debug_assert!((0.0..=1.0).contains(&delta));
        let keep = 1.0 - delta;
        let mut before = 0.0f64;
        let sids = std::mem::take(&mut self.index[v as usize]);
        for &sid in &sids {
            if sid < from_sid {
                continue;
            }
            let w = self.weights[sid as usize];
            if w <= 0.0 {
                continue;
            }
            before += w;
            let dw = w * delta;
            if dw > 0.0 {
                if w >= 1.0 {
                    self.touched += 1;
                }
                self.weights[sid as usize] = w * keep;
                self.deficit += dw;
                let lo = self.offsets[sid as usize] as usize;
                let hi = self.offsets[sid as usize + 1] as usize;
                for i in lo..hi {
                    self.score[self.nodes[i] as usize] -= dw;
                }
            }
        }
        self.index[v as usize] = sids;
        before
    }

    /// Node with maximum score among eligible ones (linear scan; TIRM uses
    /// the lazy heap instead).
    pub fn argmax_score(&self, mut eligible: impl FnMut(NodeId) -> bool) -> Option<(NodeId, f64)> {
        let mut best: Option<(NodeId, f64)> = None;
        for v in 0..self.n as NodeId {
            let s = self.score[v as usize];
            if s <= 1e-12 || !eligible(v) {
                continue;
            }
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((v, s));
            }
        }
        best
    }

    /// Exact bytes held (Table 4 metric).
    pub fn memory_bytes(&self) -> usize {
        let index_bytes: usize = self
            .index
            .iter()
            .map(|v| v.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum();
        self.nodes.capacity() * 4
            + self.offsets.capacity() * 4
            + self.weights.capacity() * 8
            + self.score.capacity() * 8
            + index_bytes
    }

    /// Sum of set sizes.
    pub fn total_entries(&self) -> usize {
        self.nodes.len()
    }
}

/// Encodes a non-negative score as a heap key preserving order
/// (IEEE-754 doubles of equal sign compare like their bit patterns).
#[inline]
pub fn score_key(score: f64) -> u64 {
    debug_assert!(score >= 0.0);
    score.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedRrCollection {
        let mut c = WeightedRrCollection::new(4);
        c.add_set(&[0, 1]);
        c.add_set(&[1, 2]);
        c.add_set(&[1]);
        c
    }

    #[test]
    fn scores_count_sets() {
        let c = sample();
        assert_eq!(c.score(1), 3.0);
        assert_eq!(c.score(0), 1.0);
        assert_eq!(c.score(3), 0.0);
        assert_eq!(c.deficit(), 0.0);
    }

    #[test]
    fn full_delta_equals_hard_removal() {
        let mut c = sample();
        let before = c.decay_node(1, 1.0);
        assert_eq!(before, 3.0);
        assert_eq!(c.score(1), 0.0);
        assert_eq!(c.score(0), 0.0);
        assert_eq!(c.score(2), 0.0);
        assert_eq!(c.deficit(), 3.0);
    }

    #[test]
    fn partial_delta_decays() {
        let mut c = sample();
        c.decay_node(1, 0.5);
        // Every set containing 1 halves; scores follow.
        assert!((c.score(1) - 1.5).abs() < 1e-12);
        assert!((c.score(0) - 0.5).abs() < 1e-12);
        assert!((c.deficit() - 1.5).abs() < 1e-12);
        // Second decay by 0.5 halves the survivors again.
        c.decay_node(1, 0.5);
        assert!((c.score(1) - 0.75).abs() < 1e-12);
        assert!((c.deficit() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn deficit_matches_inclusion_exclusion() {
        // Set {0,1} with δ(0)=0.3 then δ(1)=0.2:
        // 1 − (1−0.3)(1−0.2) = 0.44.
        let mut c = WeightedRrCollection::new(2);
        c.add_set(&[0, 1]);
        c.decay_node(0, 0.3);
        c.decay_node(1, 0.2);
        assert!((c.deficit() - 0.44).abs() < 1e-12);
    }

    #[test]
    fn decay_from_only_touches_new_sets() {
        let mut c = sample(); // sets 0..3 contain node 1
        let first_new = c.num_sets() as u32;
        c.add_set(&[1, 3]);
        c.decay_node_from(1, 0.5, first_new);
        // Old sets untouched, new set halved.
        assert!((c.deficit() - 0.5).abs() < 1e-12);
        assert!((c.score(3) - 0.5).abs() < 1e-12);
        assert!((c.score(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_and_memory() {
        let c = sample();
        assert_eq!(c.argmax_score(|_| true).map(|(v, _)| v), Some(1));
        assert_eq!(c.argmax_score(|v| v != 1).map(|(v, _)| v), Some(0));
        assert!(c.memory_bytes() > 0);
        assert_eq!(c.total_entries(), 5);
    }

    #[test]
    fn score_key_orders() {
        assert!(score_key(2.0) > score_key(1.5));
        assert!(score_key(0.1) > score_key(0.0));
    }
}
