//! Dataset-shaped synthetic networks.
//!
//! | Paper data set | Shape reproduced | Probability model (§6) |
//! |---|---|---|
//! | FLIXSTER (30K/425K, directed) | heavy-tail follower graph, reciprocity ~0.3 | topic-concentrated (stand-in for MLE-learned TIC, K=10) |
//! | EPINIONS (76K/509K, directed) | heavy-tail trust graph, low reciprocity | per-topic `Exp(rate 30)` clamped to \[0,1\] |
//! | DBLP (317K/1.05M, undirected → both directions) | clustered co-authorship, fully reciprocal | Weighted-Cascade `1/indeg(v)` |
//! | LIVEJOURNAL (4.8M/69M, directed) | power-law in *and* out degree | Weighted-Cascade |
//!
//! Default scales keep the harness laptop-friendly; see [`crate::scale`].

use crate::scale::ScaleConfig;
use std::path::{Path, PathBuf};
use std::time::Instant;
use tirm_graph::{generators, snapshot, DiGraph, GraphStats};
use tirm_topics::{genprob, TopicEdgeProbs};

/// Version stamp of the *generators' output*: bump whenever any dataset
/// generator or probability model changes what it produces for a given
/// `(kind, model, scale, seed)`, so cached snapshots from older code are
/// keyed away instead of silently served. CI cache keys embed this
/// constant together with [`snapshot::FORMAT_VERSION`].
pub const GENERATOR_VERSION: u32 = 1;

/// Which of the four paper data sets a workload mimics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// FLIXSTER-like: quality experiments, learned-TIC stand-in.
    Flixster,
    /// EPINIONS-like: quality experiments, exponential probabilities.
    Epinions,
    /// DBLP-like: scalability experiments, weighted cascade.
    Dblp,
    /// LIVEJOURNAL-like: scalability experiments, weighted cascade.
    LiveJournal,
}

impl DatasetKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Flixster => "FLIXSTER",
            DatasetKind::Epinions => "EPINIONS",
            DatasetKind::Dblp => "DBLP",
            DatasetKind::LiveJournal => "LIVEJOURNAL",
        }
    }

    /// Node count of the real data set (Table 1).
    pub fn paper_nodes(self) -> usize {
        match self {
            DatasetKind::Flixster => 30_000,
            DatasetKind::Epinions => 76_000,
            DatasetKind::Dblp => 317_000,
            DatasetKind::LiveJournal => 4_800_000,
        }
    }

    /// Default node count at `TIRM_SCALE = 1` (chosen for minute-scale
    /// sweeps on a laptop; raise `TIRM_SCALE` to approach paper sizes).
    pub fn default_nodes(self) -> usize {
        match self {
            DatasetKind::Flixster => 6_000,
            DatasetKind::Epinions => 12_000,
            DatasetKind::Dblp => 40_000,
            DatasetKind::LiveJournal => 120_000,
        }
    }

    /// Number of latent topics `K` (10 in all quality experiments).
    pub fn topics(self) -> usize {
        match self {
            DatasetKind::Flixster | DatasetKind::Epinions => 10,
            _ => 1,
        }
    }

    /// Parses a CLI dataset name (case-insensitive) — the shared
    /// vocabulary of every `--dataset` flag in the workspace.
    pub fn parse(s: &str) -> Option<DatasetKind> {
        match s.to_ascii_uppercase().as_str() {
            "FLIXSTER" => Some(DatasetKind::Flixster),
            "EPINIONS" => Some(DatasetKind::Epinions),
            "DBLP" => Some(DatasetKind::Dblp),
            "LIVEJOURNAL" => Some(DatasetKind::LiveJournal),
            _ => None,
        }
    }

    /// The `size_ratio` a dataset generated under `cfg` will carry,
    /// *without* generating it — pure arithmetic on the node counts.
    /// This is what wire clients (the load generator) use to map a
    /// paper-scale event log onto whatever scale the server was booted
    /// at, matching [`Dataset::generate`]'s own ratio exactly.
    pub fn size_ratio_at(self, cfg: &ScaleConfig) -> f64 {
        cfg.nodes(self.default_nodes()) as f64 / self.paper_nodes() as f64
    }
}

/// Which §6 probability model decorates a network's arcs. Every paper
/// data set has a *canonical* model (the table above); the perf suite also
/// crosses data sets with the other models to widen the scenario matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbModel {
    /// Topic-concentrated TIC stand-in (K = 10): each arc strong in 2
    /// topics, background elsewhere. Canonical for FLIXSTER.
    TopicConcentrated,
    /// Per-topic `Exp(rate 30)` clamped to [0, 1] (K = 10). Canonical for
    /// EPINIONS.
    Exponential,
    /// Weighted-Cascade `1/indeg(v)` (K = 1). Canonical for DBLP and
    /// LIVEJOURNAL.
    WeightedCascade,
}

impl ProbModel {
    /// Short machine-readable name used in scenario ids and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ProbModel::TopicConcentrated => "topic",
            ProbModel::Exponential => "exp",
            ProbModel::WeightedCascade => "wc",
        }
    }

    /// Parses a CLI model name (`topic` / `exp` / `wc`) — the shared
    /// vocabulary of every `--model` flag in the workspace.
    pub fn parse(s: &str) -> Option<ProbModel> {
        match s {
            "topic" => Some(ProbModel::TopicConcentrated),
            "exp" => Some(ProbModel::Exponential),
            "wc" => Some(ProbModel::WeightedCascade),
            _ => None,
        }
    }

    /// The model §6 pairs with each data set.
    pub fn canonical(kind: DatasetKind) -> ProbModel {
        match kind {
            DatasetKind::Flixster => ProbModel::TopicConcentrated,
            DatasetKind::Epinions => ProbModel::Exponential,
            DatasetKind::Dblp | DatasetKind::LiveJournal => ProbModel::WeightedCascade,
        }
    }

    /// Number of latent topics the model produces (WC is single-topic).
    pub fn topics(self) -> usize {
        match self {
            ProbModel::WeightedCascade => 1,
            _ => 10,
        }
    }
}

/// A generated network plus its per-topic arc probabilities.
pub struct Dataset {
    /// Which paper data set this mimics.
    pub kind: DatasetKind,
    /// The graph.
    pub graph: DiGraph,
    /// Per-topic arc probabilities (K = 1 for the scalability data sets).
    pub topic_probs: TopicEdgeProbs,
    /// Ratio `generated nodes / paper nodes` — budgets are scaled by this
    /// so seeds-per-node ratios match the paper's regime.
    pub size_ratio: f64,
}

impl Dataset {
    /// Generates the dataset at the configured scale with its canonical §6
    /// probability model, deterministically.
    pub fn generate(kind: DatasetKind, cfg: &ScaleConfig, seed: u64) -> Dataset {
        Self::generate_with_model(kind, ProbModel::canonical(kind), cfg, seed)
    }

    /// Generates the dataset with an explicit probability model — the
    /// scenario matrix crosses network shapes with non-canonical models.
    /// Canonical calls produce bit-identical output to pre-matrix
    /// `generate` (same per-model seed derivations).
    pub fn generate_with_model(
        kind: DatasetKind,
        model: ProbModel,
        cfg: &ScaleConfig,
        seed: u64,
    ) -> Dataset {
        let n = cfg.nodes(kind.default_nodes());
        let graph = match kind {
            // FLIXSTER: avg degree ~14, noticeable reciprocity.
            DatasetKind::Flixster => generators::preferential_attachment(n, 10, 0.3, seed),
            // EPINIONS: avg degree ~6.7, mostly one-way trust.
            DatasetKind::Epinions => generators::preferential_attachment(n, 6, 0.1, seed),
            // DBLP: undirected co-authorship → fully reciprocal, deg ~6.6.
            DatasetKind::Dblp => generators::preferential_attachment(n, 3, 1.0, seed),
            // LIVEJOURNAL: power-law both ways, avg degree ~14.
            DatasetKind::LiveJournal => generators::copying_model(n, 14, 0.35, seed),
        };
        let m = graph.num_edges();
        let k = model.topics();
        let topic_probs = match model {
            ProbModel::TopicConcentrated => {
                // Stand-in for MLE-learned TIC probabilities: each arc
                // strong in 2 of 10 topics (Exp mean ≈ 0.33), background
                // elsewhere (Exp mean ≈ 0.002). The strong mean is chosen
                // so an own-topic ad sees near-critical branching
                // (≈ deg·0.2·0.91·0.33 ≈ 0.85 plus hub effects), matching
                // the paper's regime where one 2%-CTP seed yields ~0.8
                // expected clicks (Table 3: 868 seeds cover 680 clicks).
                genprob::topic_concentrated_probs(
                    m,
                    k,
                    2,
                    flixster_strong_rate(),
                    500.0,
                    seed ^ 0xf11c,
                )
            }
            ProbModel::Exponential => {
                // §6: "sampled from an exponential distribution with
                // [rate] 30, via the inverse transform technique".
                genprob::exponential_topic_probs(m, k, 30.0, seed ^ 0xe919)
            }
            ProbModel::WeightedCascade => {
                // §6.2: Weighted-Cascade for all ads.
                let wc = genprob::weighted_cascade(&graph);
                TopicEdgeProbs::single_topic(wc)
            }
        };
        Dataset {
            kind,
            graph,
            topic_probs,
            size_ratio: n as f64 / kind.paper_nodes() as f64,
        }
    }

    /// Graph statistics (Table 1 analogue).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.graph)
    }

    /// Stable cache key for a generated dataset: FNV-1a over everything
    /// that determines the generator's output — kind, probability model,
    /// resolved node count, seed, [`GENERATOR_VERSION`] and (for the
    /// topic-concentrated model only) the `TIRM_FLIX_RATE` override.
    pub fn snapshot_key(kind: DatasetKind, model: ProbModel, cfg: &ScaleConfig, seed: u64) -> u64 {
        let mut id = format!(
            "{}/{}/n{}/s{:016x}/g{}",
            kind.name(),
            model.name(),
            cfg.nodes(kind.default_nodes()),
            seed,
            GENERATOR_VERSION
        );
        if model == ProbModel::TopicConcentrated {
            id.push_str(&format!("/r{}", flixster_strong_rate()));
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Cache file path for a dataset under `dir`.
    pub fn snapshot_path(
        dir: &Path,
        kind: DatasetKind,
        model: ProbModel,
        cfg: &ScaleConfig,
        seed: u64,
    ) -> PathBuf {
        dir.join(format!(
            "{}_{}_{:016x}.tirmsnap",
            kind.name(),
            model.name(),
            Self::snapshot_key(kind, model, cfg, seed)
        ))
    }

    /// [`Self::generate_with_model`] behind a snapshot cache: when `dir`
    /// is set and holds a valid snapshot for this exact
    /// `(kind, model, scale, seed, generator version)`, the dataset is
    /// loaded from it (bit-identical to regeneration — enforced by
    /// property tests); otherwise it is generated and the snapshot written
    /// back best-effort. Damaged or version-skewed cache files are warned
    /// about and regenerated, never trusted and never fatal.
    pub fn load_or_generate(
        kind: DatasetKind,
        model: ProbModel,
        cfg: &ScaleConfig,
        seed: u64,
        dir: Option<&Path>,
    ) -> (Dataset, DatasetTiming) {
        if let Some(dir) = dir {
            let path = Self::snapshot_path(dir, kind, model, cfg, seed);
            if path.exists() {
                let t0 = Instant::now();
                match snapshot::read_snapshot(&path) {
                    Ok(snap) => {
                        let warm_s = t0.elapsed().as_secs_f64();
                        let graph = snap.graph;
                        let topic_probs =
                            TopicEdgeProbs::from_flat(snap.num_topics, snap.edge_probs);
                        let dataset = Dataset {
                            kind,
                            size_ratio: graph.num_nodes() as f64 / kind.paper_nodes() as f64,
                            graph,
                            topic_probs,
                        };
                        return (
                            dataset,
                            DatasetTiming {
                                cold_s: 0.0,
                                warm_s,
                            },
                        );
                    }
                    Err(e) => {
                        eprintln!(
                            "warn: snapshot {} unusable ({e}); regenerating",
                            path.display()
                        );
                    }
                }
            }
            // cold_s is the full cache-miss cost: generation plus the
            // snapshot write-back this run performed. That is what the
            // warm path saves a later run, so cold/warm is the speedup
            // the cache actually delivers.
            let t0 = Instant::now();
            let dataset = Self::generate_with_model(kind, model, cfg, seed);
            if let Err(e) = snapshot::write_snapshot(
                &path,
                &dataset.graph,
                dataset.topic_probs.k(),
                dataset.topic_probs.flat(),
            ) {
                eprintln!("warn: writing snapshot {} failed: {e}", path.display());
            }
            let cold_s = t0.elapsed().as_secs_f64();
            return (
                dataset,
                DatasetTiming {
                    cold_s,
                    warm_s: 0.0,
                },
            );
        }
        let t0 = Instant::now();
        let dataset = Self::generate_with_model(kind, model, cfg, seed);
        let cold_s = t0.elapsed().as_secs_f64();
        (
            dataset,
            DatasetTiming {
                cold_s,
                warm_s: 0.0,
            },
        )
    }

    /// [`Self::load_or_generate`] with the cache directory taken from the
    /// `TIRM_SNAPSHOT_DIR` environment variable (unset ⇒ no caching) —
    /// what the experiment binaries call.
    pub fn load_or_generate_env(
        kind: DatasetKind,
        model: ProbModel,
        cfg: &ScaleConfig,
        seed: u64,
    ) -> (Dataset, DatasetTiming) {
        Self::load_or_generate(kind, model, cfg, seed, snapshot_dir().as_deref())
    }
}

/// How a dataset was materialised: exactly one of the fields is non-zero.
/// `cold_s` is the cache-miss cost (generation, plus snapshot write-back
/// when a cache directory is in use); `warm_s` is the cache-hit cost
/// (snapshot load). These feed the `dataset_cold_s` / `dataset_warm_s`
/// artifact fields.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DatasetTiming {
    /// Seconds the cache miss cost (0 when loaded warm).
    pub cold_s: f64,
    /// Seconds the snapshot load cost (0 when generated cold).
    pub warm_s: f64,
}

/// The snapshot cache directory from `TIRM_SNAPSHOT_DIR` (unset or empty
/// ⇒ `None`, caching disabled).
pub fn snapshot_dir() -> Option<PathBuf> {
    std::env::var_os("TIRM_SNAPSHOT_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Exponential rate of the "strong" topic probabilities in the
/// FLIXSTER-like generator (mean strength = 1/rate). Default 10.0 keeps
/// own-topic cascades sizeable but subcritical, so the §4.1 working
/// assumption `p_i < 1` holds at harness scale; override with
/// `TIRM_FLIX_RATE` for sensitivity studies.
pub fn flixster_strong_rate() -> f64 {
    std::env::var("TIRM_FLIX_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ScaleConfig {
        ScaleConfig {
            scale: 0.05,
            eval_runs: 100,
            threads: 1,
        }
    }

    #[test]
    fn all_kinds_generate_and_validate() {
        for kind in [
            DatasetKind::Flixster,
            DatasetKind::Epinions,
            DatasetKind::Dblp,
            DatasetKind::LiveJournal,
        ] {
            let d = Dataset::generate(kind, &tiny_cfg(), 7);
            d.graph.validate().unwrap();
            assert_eq!(d.topic_probs.num_edges(), d.graph.num_edges());
            assert_eq!(d.topic_probs.k(), kind.topics());
            assert!(d.size_ratio > 0.0 && d.size_ratio < 1.0);
        }
    }

    #[test]
    fn dblp_is_reciprocal_like_an_undirected_graph() {
        let d = Dataset::generate(DatasetKind::Dblp, &tiny_cfg(), 3);
        let st = d.stats();
        assert!(
            st.reciprocity > 0.95,
            "DBLP must look undirected, reciprocity {}",
            st.reciprocity
        );
    }

    #[test]
    fn quality_sets_have_heavy_tails() {
        let d = Dataset::generate(DatasetKind::Flixster, &tiny_cfg(), 5);
        let st = d.stats();
        assert!(st.in_degree_gini > 0.3, "gini {}", st.in_degree_gini);
    }

    #[test]
    fn wc_probabilities_sum_to_one() {
        let d = Dataset::generate(DatasetKind::LiveJournal, &tiny_cfg(), 9);
        // Spot-check one node with in-degree > 0.
        let g = &d.graph;
        for v in 0..g.num_nodes() as u32 {
            let deg = g.in_degree(v);
            if deg > 0 {
                let sum: f32 = g.in_edges(v).map(|(e, _)| d.topic_probs.get(e, 0)).sum();
                assert!((sum - 1.0).abs() < 1e-3, "node {v}: {sum}");
                break;
            }
        }
    }

    fn tmp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tirm_dataset_cache_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn datasets_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.topic_probs.k(), b.topic_probs.k());
        let pa: Vec<u32> = a.topic_probs.flat().iter().map(|p| p.to_bits()).collect();
        let pb: Vec<u32> = b.topic_probs.flat().iter().map(|p| p.to_bits()).collect();
        assert_eq!(pa, pb);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.size_ratio, b.size_ratio);
    }

    #[test]
    fn cache_cold_then_warm_is_bit_identical() {
        let dir = tmp_cache_dir("coldwarm");
        let cfg = tiny_cfg();
        let (cold, t_cold) = Dataset::load_or_generate(
            DatasetKind::Epinions,
            ProbModel::Exponential,
            &cfg,
            21,
            Some(&dir),
        );
        assert!(t_cold.cold_s > 0.0 && t_cold.warm_s == 0.0);
        let path = Dataset::snapshot_path(
            &dir,
            DatasetKind::Epinions,
            ProbModel::Exponential,
            &cfg,
            21,
        );
        assert!(path.exists(), "cold miss must write the snapshot");

        let (warm, t_warm) = Dataset::load_or_generate(
            DatasetKind::Epinions,
            ProbModel::Exponential,
            &cfg,
            21,
            Some(&dir),
        );
        assert!(t_warm.warm_s > 0.0 && t_warm.cold_s == 0.0);
        datasets_identical(&cold, &warm);

        let plain =
            Dataset::generate_with_model(DatasetKind::Epinions, ProbModel::Exponential, &cfg, 21);
        datasets_identical(&warm, &plain);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_falls_back_to_regeneration() {
        let dir = tmp_cache_dir("corrupt");
        let cfg = tiny_cfg();
        let path =
            Dataset::snapshot_path(&dir, DatasetKind::Dblp, ProbModel::WeightedCascade, &cfg, 5);
        std::fs::write(&path, b"garbage that is definitely not a snapshot").unwrap();
        let (d, t) = Dataset::load_or_generate(
            DatasetKind::Dblp,
            ProbModel::WeightedCascade,
            &cfg,
            5,
            Some(&dir),
        );
        assert!(t.cold_s > 0.0, "corrupt cache must regenerate, not die");
        let plain =
            Dataset::generate_with_model(DatasetKind::Dblp, ProbModel::WeightedCascade, &cfg, 5);
        datasets_identical(&d, &plain);
        // The bad file was replaced by a loadable one.
        let (again, t2) = Dataset::load_or_generate(
            DatasetKind::Dblp,
            ProbModel::WeightedCascade,
            &cfg,
            5,
            Some(&dir),
        );
        assert!(t2.warm_s > 0.0, "rewritten snapshot must load warm");
        datasets_identical(&again, &plain);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_key_separates_every_axis() {
        let cfg = tiny_cfg();
        let base = Dataset::snapshot_key(DatasetKind::Flixster, ProbModel::Exponential, &cfg, 1);
        assert_eq!(
            base,
            Dataset::snapshot_key(DatasetKind::Flixster, ProbModel::Exponential, &cfg, 1)
        );
        assert_ne!(
            base,
            Dataset::snapshot_key(DatasetKind::Epinions, ProbModel::Exponential, &cfg, 1)
        );
        assert_ne!(
            base,
            Dataset::snapshot_key(DatasetKind::Flixster, ProbModel::WeightedCascade, &cfg, 1)
        );
        assert_ne!(
            base,
            Dataset::snapshot_key(DatasetKind::Flixster, ProbModel::Exponential, &cfg, 2)
        );
        let bigger = ScaleConfig {
            scale: cfg.scale * 4.0,
            ..cfg
        };
        assert_ne!(
            base,
            Dataset::snapshot_key(DatasetKind::Flixster, ProbModel::Exponential, &bigger, 1)
        );
    }

    #[test]
    fn no_cache_dir_means_plain_generation() {
        let (d, t) = Dataset::load_or_generate(
            DatasetKind::Flixster,
            ProbModel::WeightedCascade,
            &tiny_cfg(),
            3,
            None,
        );
        assert!(t.cold_s > 0.0 && t.warm_s == 0.0);
        assert_eq!(d.kind, DatasetKind::Flixster);
    }

    /// The paper-scale config shared by the acceptance test and its warm
    /// probe: ×40 lifts LIVEJOURNAL's 120k default to the paper's 4.8M.
    fn paper_cfg() -> ScaleConfig {
        ScaleConfig {
            scale: 40.0,
            eval_runs: 10,
            threads: 1,
        }
    }

    /// Content fingerprint of a dataset (graph arrays + probability bits)
    /// for cross-process bit-identity checks.
    fn content_hash(d: &Dataset) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |w: u32| {
            h ^= w as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let (oo, ot, io, is_, ie) = d.graph.csr_parts();
        for arr in [oo, ot, io, is_, ie] {
            for &w in arr {
                eat(w);
            }
        }
        eat(d.topic_probs.k() as u32);
        for p in d.topic_probs.flat() {
            eat(p.to_bits());
        }
        h
    }

    /// Subprocess half of the paper-scale check: warm-loads the snapshot
    /// the parent test wrote, in a *fresh* process — the pattern every
    /// real consumer has (perf_suite, CI, the experiment bins all start
    /// cold-process/warm-cache). In-process re-loading would instead
    /// measure this container's late-footprint page-fault pathology on
    /// top of the IO. No-op unless the parent set the probe env var.
    #[test]
    #[ignore = "helper for paper_scale_livejournal_streaming_build_and_snapshot"]
    fn paper_scale_warm_probe() {
        let Some(dir) = std::env::var_os("TIRM_PAPER_PROBE_DIR") else {
            return;
        };
        let (warm, t) = Dataset::load_or_generate(
            DatasetKind::LiveJournal,
            ProbModel::WeightedCascade,
            &paper_cfg(),
            0x71a6_5eed,
            Some(Path::new(&dir)),
        );
        assert!(
            t.warm_s > 0.0,
            "probe must hit the snapshot, not regenerate"
        );
        println!("WARM_S={}", t.warm_s);
        println!("CONTENT_HASH={:016x}", content_hash(&warm));
    }

    /// Paper-scale acceptance check (§6.2, Table 1): LIVEJOURNAL at its
    /// real size builds through the streaming path, snapshots round-trip
    /// bit-identically across processes, and a fresh process warm-loads
    /// ≥ 10× faster than regeneration. Run by the nightly CI job (and
    /// locally) as
    /// `cargo test --release -p tirm_workloads -- --ignored paper_scale`.
    /// Needs ~4 GB RAM and a few minutes; ignored in ordinary test runs.
    #[test]
    #[ignore = "paper-scale: minutes of runtime, ~4 GB RAM, ~1 GB disk"]
    fn paper_scale_livejournal_streaming_build_and_snapshot() {
        let cfg = paper_cfg();
        let dir = tmp_cache_dir("paper_scale");
        let t0 = std::time::Instant::now();
        let (cold, t_cold) = Dataset::load_or_generate(
            DatasetKind::LiveJournal,
            ProbModel::WeightedCascade,
            &cfg,
            0x71a6_5eed,
            Some(&dir),
        );
        eprintln!(
            "cold: {:.1}s gen (+write: {:.1}s total), {} nodes, {} edges, {:.2} GB CSR",
            t_cold.cold_s,
            t0.elapsed().as_secs_f64(),
            cold.graph.num_nodes(),
            cold.graph.num_edges(),
            cold.graph.memory_bytes() as f64 / 1e9
        );
        assert!(
            cold.graph.num_nodes() >= 4_000_000,
            "paper-scale node count"
        );
        assert!(
            cold.graph.num_edges() >= 60_000_000,
            "paper-scale arc count"
        );

        // Drain the 1.1 GB of dirty snapshot pages before timing reads —
        // an in-flight writeback storm is measurement noise, not load
        // cost (best-effort; `sync` exists on every CI image).
        std::process::Command::new("sync").status().ok();

        // Warm load in fresh processes (see `paper_scale_warm_probe`);
        // best of three, standard practice for a warm measurement (the
        // first run often still rides the write-back of the 1.1 GB
        // snapshot it is loading).
        let mut best_warm = f64::INFINITY;
        let mut hash_line = String::new();
        for _ in 0..3 {
            let out = std::process::Command::new(std::env::current_exe().unwrap())
                .args(["--ignored", "--exact", "--nocapture"])
                .arg("datasets::tests::paper_scale_warm_probe")
                .env("TIRM_PAPER_PROBE_DIR", &dir)
                .output()
                .expect("spawning the warm probe");
            let stdout = String::from_utf8_lossy(&out.stdout).to_string();
            assert!(
                out.status.success(),
                "warm probe failed:\n{stdout}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            // `split_once`, not `strip_prefix`: with --nocapture the
            // harness's "test … ... " header shares the line.
            let grab = |key: &str| {
                stdout
                    .lines()
                    .find_map(|l| l.split_once(key).map(|(_, v)| v.trim().to_string()))
                    .unwrap_or_else(|| panic!("probe output missing {key}:\n{stdout}"))
            };
            let warm_s: f64 = grab("WARM_S=").parse().unwrap();
            eprintln!("warm probe (fresh process): {warm_s:.2}s load");
            best_warm = best_warm.min(warm_s);
            hash_line = grab("CONTENT_HASH=");
        }
        eprintln!(
            "cache miss {:.2}s vs cache hit {:.2}s: {:.1}× speedup",
            t_cold.cold_s,
            best_warm,
            t_cold.cold_s / best_warm
        );
        assert!(
            t_cold.cold_s >= 10.0 * best_warm,
            "warm load must be ≥10× faster than regeneration: \
             miss {:.2}s vs hit {:.2}s",
            t_cold.cold_s,
            best_warm
        );
        assert_eq!(
            hash_line,
            format!("{:016x}", content_hash(&cold)),
            "loaded dataset must be bit-identical to the generated one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::generate(DatasetKind::Epinions, &tiny_cfg(), 11);
        let b = Dataset::generate(DatasetKind::Epinions, &tiny_cfg(), 11);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.topic_probs.get(0, 0), b.topic_probs.get(0, 0));
    }

    #[test]
    fn canonical_model_matches_plain_generate() {
        let a = Dataset::generate(DatasetKind::Flixster, &tiny_cfg(), 13);
        let b = Dataset::generate_with_model(
            DatasetKind::Flixster,
            ProbModel::TopicConcentrated,
            &tiny_cfg(),
            13,
        );
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.topic_probs.get(1, 3), b.topic_probs.get(1, 3));
    }

    #[test]
    fn model_override_controls_topic_count() {
        let d = Dataset::generate_with_model(
            DatasetKind::Flixster,
            ProbModel::WeightedCascade,
            &tiny_cfg(),
            13,
        );
        assert_eq!(d.topic_probs.k(), 1);
        let d = Dataset::generate_with_model(
            DatasetKind::Dblp,
            ProbModel::Exponential,
            &tiny_cfg(),
            13,
        );
        assert_eq!(d.topic_probs.k(), 10);
        assert_eq!(
            ProbModel::canonical(DatasetKind::Dblp),
            ProbModel::WeightedCascade
        );
        assert_eq!(ProbModel::canonical(DatasetKind::Epinions).name(), "exp");
    }
}
