//! Micro-benchmark: RR-set sampling throughput (the inner loop of TIRM's
//! sampling phase) on an EPINIONS-shaped graph.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tirm_rrset::{ParallelSampler, RrCollection, RrSampler, SampleWorkspace, SamplingConfig};
use tirm_workloads::{Dataset, DatasetKind, ScaleConfig};

fn bench_rr_sampling(c: &mut Criterion) {
    let cfg = ScaleConfig {
        scale: 0.25,
        eval_runs: 100,
        threads: 1,
    };
    let d = Dataset::generate(DatasetKind::Epinions, &cfg, 1);
    let ad = tirm_topics::TopicDist::concentrated(10, 0, 0.91);
    let probs = d.topic_probs.project(&ad);
    let sampler = RrSampler::new(&d.graph, &probs);
    let n = d.graph.num_nodes();

    let mut g = c.benchmark_group("rr_sampling");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.throughput(criterion::Throughput::Elements(1000));
    g.bench_function("sample_1000_rr_sets", |b| {
        b.iter_batched(
            || (SampleWorkspace::new(n), SmallRng::seed_from_u64(7)),
            |(mut ws, mut rng)| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    total += sampler.sample(&mut ws, &mut rng).len();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("sample_1000_rrc_sets", |b| {
        let ctp = vec![0.02f32; n];
        b.iter_batched(
            || (SampleWorkspace::new(n), SmallRng::seed_from_u64(7)),
            |(mut ws, mut rng)| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    total += sampler.sample_rrc(&ctp, &mut ws, &mut rng).len();
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    // Parallel engine throughput: the same θ batch drawn at 1 / 4 / all
    // cores through ParallelSampler (arena sharding + ordered merge).
    let theta = 20_000usize;
    let mut g = c.benchmark_group("rr_sampling_parallel");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.throughput(criterion::Throughput::Elements(theta as u64));
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut counts = vec![1usize, 2, 4, hw];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        g.bench_function(format!("sample_{theta}_rr_sets_{threads}t").as_str(), |b| {
            b.iter_batched(
                || {
                    // Fresh engine + collection: measure the full batch cost.
                    let engine = ParallelSampler::new(SamplingConfig::new(threads, 7), n);
                    (engine, RrCollection::new(n))
                },
                |(mut engine, mut coll)| {
                    engine.sample_into(&sampler, theta, &mut coll);
                    coll.num_sets()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rr_sampling);
criterion_main!(benches);
