//! Integration coverage for the flight recorder: ring wraparound,
//! concurrent stage writers, and the "loss is counted, never silent"
//! property.
//!
//! These tests share one process's rings (that's the point — the
//! recorder is process-global), so each test claims a disjoint trace
//! range and filters dumps down to it. A test thread owns its ring
//! exclusively, which is what makes the per-slot accounting below
//! *exact* rather than merely monotone.

use proptest::prelude::*;
use std::cell::{Cell, RefCell};
use std::collections::{HashSet, VecDeque};
use tirm_obs::flight::{self, Stage, RING_RECORDS};
use tirm_obs::registry;

const WRAP_BASE: u64 = 1_000_000;
const CONC_BASE: u64 = 2_000_000;
const PROP_BASE: u64 = 3_000_000;

#[test]
fn wraparound_keeps_the_newest_records_and_counts_overwrites() {
    let overwritten_before = registry::FLIGHT_OVERWRITTEN.get();
    let total = 2 * RING_RECORDS as u64;
    for i in 0..total {
        flight::record(WRAP_BASE + 1 + i, Stage::Apply, i, i + 1);
    }
    let mine: Vec<_> = flight::dump_events()
        .into_iter()
        .filter(|e| (WRAP_BASE + 1..=WRAP_BASE + total).contains(&e.trace))
        .collect();
    // This thread owns its ring, so the surviving window is exact: the
    // newest RING_RECORDS records, every older one overwritten.
    assert_eq!(mine.len(), RING_RECORDS);
    for e in &mine {
        assert!(
            e.trace > WRAP_BASE + RING_RECORDS as u64,
            "pre-wrap record survived: {e:?}"
        );
    }
    // Loss is counted, never silent: this thread alone overwrote
    // RING_RECORDS records (other tests may add more concurrently).
    assert!(
        registry::FLIGHT_OVERWRITTEN.get() - overwritten_before >= RING_RECORDS as u64,
        "overwrites not accounted"
    );
    assert!(flight::lost_records() >= RING_RECORDS as u64);
}

#[test]
fn concurrent_stage_writers_produce_monotone_per_trace_timelines() {
    const THREADS: u64 = 8;
    const TRACES_PER_THREAD: u64 = 16;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        handles.push(std::thread::spawn(move || {
            for i in 0..TRACES_PER_THREAD {
                let trace = CONC_BASE + t * TRACES_PER_THREAD + i + 1;
                let mut ts = trace * 1_000;
                for stage in Stage::CORE_LIFECYCLE {
                    flight::record(trace, stage, ts, ts + 10);
                    ts += 100;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let hi = CONC_BASE + THREADS * TRACES_PER_THREAD;
    let events: Vec<_> = flight::dump_events()
        .into_iter()
        .filter(|e| (CONC_BASE + 1..=hi).contains(&e.trace))
        .collect();
    // 8 threads × 16 traces × 4 stages, nothing near a wrap: every
    // record is visible.
    assert_eq!(
        events.len(),
        (THREADS * TRACES_PER_THREAD) as usize * Stage::CORE_LIFECYCLE.len()
    );
    // Each trace's timeline is contiguous and causally ordered even
    // though stages interleaved arbitrarily across writer threads.
    for w in events.windows(2) {
        if w[0].trace == w[1].trace {
            assert!(w[0].stage < w[1].stage, "{:?} !< {:?}", w[0], w[1]);
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }
    assert_eq!(
        flight::traces_covering(&events, &Stage::CORE_LIFECYCLE),
        (THREADS * TRACES_PER_THREAD) as usize
    );
}

thread_local! {
    /// The last RING_RECORDS spans this thread wrote, oldest first.
    static HISTORY: RefCell<VecDeque<(u64, Stage, u64, u64)>> =
        const { RefCell::new(VecDeque::new()) };
    /// Spans this thread has ever written (may exceed the ring).
    static WRITTEN: Cell<u64> = const { Cell::new(0) };
    /// This thread's ring slot, discovered from its first dumped record.
    static MY_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

fn write_and_track(trace: u64, stage: Stage, start: u64, end: u64) {
    flight::record(trace, stage, start, end);
    WRITTEN.with(|w| w.set(w.get() + 1));
    HISTORY.with(|h| {
        let mut h = h.borrow_mut();
        if h.len() == RING_RECORDS {
            h.pop_front();
        }
        h.push_back((trace, stage, start, end));
    });
}

proptest! {
    /// The satellite property: for arbitrary interleavings of stage
    /// writes, dumped timelines are per-trace monotone, every visible
    /// record is one that was actually written, visibility from this
    /// thread's ring is exactly the newest `min(written, RING_RECORDS)`
    /// spans, and any shortfall shows up in the loss counters.
    #[test]
    fn dumped_timelines_are_monotone_and_loss_is_counted(
        writes in proptest::collection::vec(
            (0u64..64, 0usize..Stage::ALL.len(), 0u64..1_000_000, 0u64..1_000),
            1..200,
        )
    ) {
        // Discover this thread's slot once via a sentinel record.
        let slot = MY_SLOT.with(|s| s.get()).unwrap_or_else(|| {
            let sentinel = PROP_BASE + 999_999;
            write_and_track(sentinel, Stage::Admit, 1, 2);
            let slot = flight::dump_events()
                .into_iter()
                .find(|e| e.trace == sentinel)
                .expect("sentinel record visible")
                .slot;
            MY_SLOT.with(|s| s.set(Some(slot)));
            slot
        });

        for (t, s_idx, start, dur) in &writes {
            write_and_track(PROP_BASE + 1 + t, Stage::ALL[*s_idx], *start, start + dur);
        }

        let all = flight::dump_events();
        // Global dump order: per-trace runs are contiguous and stage-
        // then-time monotone within each run.
        for w in all.windows(2) {
            if w[0].trace == w[1].trace {
                prop_assert!(w[0].stage <= w[1].stage);
                if w[0].stage == w[1].stage {
                    prop_assert!(w[0].start_ns <= w[1].start_ns);
                }
            }
        }

        // Exact per-slot accounting: nothing vanishes untracked.
        let mine: Vec<_> = all.into_iter().filter(|e| e.slot == slot).collect();
        let written = WRITTEN.with(|w| w.get());
        prop_assert_eq!(mine.len() as u64, written.min(RING_RECORDS as u64));
        let history: HashSet<(u64, Stage, u64, u64)> =
            HISTORY.with(|h| h.borrow().iter().copied().collect());
        for e in &mine {
            prop_assert!(
                history.contains(&(e.trace, e.stage, e.start_ns, e.end_ns)),
                "dump invented a record: {:?}", e
            );
        }
        // Loss is counted, never silent: whatever this thread lost to
        // wraps is visible in the (global, hence ≥) loss counters.
        if written > RING_RECORDS as u64 {
            prop_assert!(flight::lost_records() >= written - RING_RECORDS as u64);
        }
    }
}
