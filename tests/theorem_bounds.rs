//! Empirical checks of the paper's theoretical results on instances where
//! exact spread computation is available:
//!
//! * Theorem 2 — overall regret bound of Greedy under the λ assumption;
//! * Theorems 3–4 — λ = 0 budget-regret bounds (`B/3` and
//!   `min(p_max/2, 1−p_max)·B`);
//! * Theorem 1's reduction — greedy solves YES instances of the
//!   3-PARTITION gadget with (near-)zero regret;
//! * Lemma 1 — the CTP marginal identity.

use tirm::{greedy_allocate, Advertiser, Attention, GreedyOptions, ProblemInstance};
use tirm_diffusion::{exact_spread, ExactOracle};
use tirm_graph::{gadgets, generators, DiGraph, NodeId};
use tirm_topics::{CtpTable, TopicDist};

/// Max marginal revenue of any single node, as a fraction of budget:
/// `p_i = max_x Π({x}) / B_i` (§4.2).
fn p_max(g: &DiGraph, probs: &[f32], ctp: &[f32], cpe: f64, budget: f64) -> f64 {
    (0..g.num_nodes() as NodeId)
        .map(|u| cpe * exact_spread(g, probs, &[u], Some(ctp)) / budget)
        .fold(0.0, f64::max)
}

#[test]
fn theorem_3_and_4_budget_regret_bounds() {
    // Random small DAG-ish graphs; λ = 0; CTP < 1; verify the Greedy
    // regret against min(p_max/2, 1 − p_max)·B and B/3.
    for seed in [1u64, 7, 21] {
        let g = generators::erdos_renyi(12, 18, seed);
        let probs = vec![vec![0.4f32; g.num_edges()]];
        let ctp_v = vec![0.6f32; 12];
        let budget = 4.0;
        let ads = vec![Advertiser::new(budget, 1.0, TopicDist::single(1, 0))];
        let ctp = CtpTable::direct(vec![ctp_v.clone()]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let pm = p_max(&g, &p.edge_probs[0], &ctp_v, 1.0, budget);
        if pm >= 1.0 {
            continue; // violates the §4.1 working assumption; skip
        }
        let mut oracle = ExactOracle::new(&g, &p.edge_probs, vec![Some(p.ctp.ad(0))]);
        let (alloc, stats) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
        let regret = (budget - stats.estimated_revenue[0]).abs();
        let bound_t4 = (pm / 2.0).min(1.0 - pm) * budget;
        let bound_t3 = budget / 3.0;
        assert!(
            regret <= bound_t4 + 1e-6 || regret <= bound_t3 + 1e-6,
            "seed {seed}: regret {regret} exceeds Thm-4 bound {bound_t4} and Thm-3 bound {bound_t3} (p_max {pm})"
        );
        let _ = alloc;
    }
}

#[test]
fn theorem_2_regret_bound_with_lambda() {
    // κ_u ≥ h and λ ≤ δ·cpe: overall regret ≤ Σ (p_i B_i + λ)/2 + seed term.
    let g = generators::erdos_renyi(10, 14, 3);
    let h = 2;
    let budget = 3.0;
    let lambda = 0.05;
    let ctp_v = vec![0.5f32; 10];
    let probs = vec![vec![0.3f32; g.num_edges()]; h];
    let ads = (0..h)
        .map(|_| Advertiser::new(budget, 1.0, TopicDist::single(1, 0)))
        .collect::<Vec<_>>();
    let ctp = CtpTable::direct(vec![ctp_v.clone(); h]);
    let p = ProblemInstance::new(
        &g,
        ads,
        probs,
        ctp,
        Attention::Uniform(h as u32), // κ ≥ h per Theorem 2
        lambda,
    );
    assert!(p.lambda_assumption_holds());
    let pm = p_max(&g, &p.edge_probs[0], &ctp_v, 1.0, budget);
    if pm >= 1.0 {
        return;
    }
    let ctps: Vec<Option<&[f32]>> = (0..h).map(|i| Some(p.ctp.ad(i))).collect();
    let mut oracle = ExactOracle::new(&g, &p.edge_probs, ctps);
    let (alloc, stats) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
    // Budget-regret component of Theorem 2: Σ (p_i B_i + λ)/2.
    let budget_bound: f64 = (0..h).map(|_| (pm * budget + lambda) / 2.0).sum();
    let budget_regret: f64 = (0..h)
        .map(|i| (budget - stats.estimated_revenue[i]).abs())
        .sum();
    assert!(
        budget_regret <= budget_bound + 1e-6,
        "budget regret {budget_regret} exceeds Theorem-2 bound {budget_bound} (p_max {pm})"
    );
    // Seed-regret stays finite and small on this instance.
    assert!(alloc.total_seeds() <= 20);
}

#[test]
fn three_partition_yes_instance_reaches_zero_regret() {
    // YES instance: {3,3,3, 3,3,3} → m = 2 groups summing to 9 each.
    // (x_i = 3 ∈ (C/4m, C/2m) = (2.25, 4.5) ✓.) Influence probability 1,
    // CTP 1, CPE 1: picking three "U" nodes per advertiser gives revenue
    // exactly 9 = budget ⇒ zero regret. Greedy with the exact oracle must
    // find it (the gadget has no overshoot traps at these sizes).
    let inst = gadgets::three_partition_gadget(&[3, 3, 3, 3, 3, 3]);
    let g = &inst.graph;
    let n = g.num_nodes();
    let h = inst.num_advertisers;
    let probs = vec![vec![1.0f32; g.num_edges()]; h];
    let ads = (0..h)
        .map(|_| Advertiser::new(inst.budget, 1.0, TopicDist::single(1, 0)))
        .collect::<Vec<_>>();
    let ctp = CtpTable::constant(n, h, 1.0);
    let p = ProblemInstance::new(g, ads, probs, ctp, Attention::Uniform(1), 0.0);
    let ctps: Vec<Option<&[f32]>> = (0..h).map(|i| Some(p.ctp.ad(i))).collect();
    let mut oracle = ExactOracle::new(g, &p.edge_probs, ctps);
    let (alloc, stats) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
    let regret: f64 = (0..h)
        .map(|i| (inst.budget - stats.estimated_revenue[i]).abs())
        .sum();
    assert!(
        regret < 1e-9,
        "greedy should solve the YES gadget exactly, got regret {regret}"
    );
    alloc.validate(&p).unwrap();
}

#[test]
fn lemma_1_ctp_marginal_identity() {
    // δ(u)·[σ_ic(S∪{u}) − σ_ic(S)] = σ_ctp(S∪{u}) − σ_ctp(S), where on the
    // right the *new* seed u has CTP δ(u) and existing seeds keep theirs.
    let g = generators::erdos_renyi(8, 12, 11);
    let probs = vec![0.35f32; g.num_edges()];
    let mut ctp = vec![1.0f32; 8]; // existing seeds: CTP 1 for isolation
    ctp[4] = 0.3;
    let s: Vec<NodeId> = vec![0, 2];
    let mut s_u = s.clone();
    s_u.push(4);
    let lhs = 0.3 * (exact_spread(&g, &probs, &s_u, None) - exact_spread(&g, &probs, &s, None));
    let rhs = exact_spread(&g, &probs, &s_u, Some(&ctp)) - exact_spread(&g, &probs, &s, Some(&ctp));
    assert!((lhs - rhs).abs() < 1e-6, "Lemma 1 violated: {lhs} vs {rhs}");
}

#[test]
fn practical_extremes_from_section_4_1() {
    // Extreme 1: budget ≫ achievable spread → regret ≈ whole budget.
    let g = generators::path(5);
    let probs = vec![vec![0.1f32; g.num_edges()]];
    let ads = vec![Advertiser::new(1000.0, 1.0, TopicDist::single(1, 0))];
    let ctp = CtpTable::constant(5, 1, 1.0);
    let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
    let mut oracle = ExactOracle::new(&g, &p.edge_probs, vec![Some(p.ctp.ad(0))]);
    let (alloc, stats) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
    assert_eq!(alloc.seeds(0).len(), 5, "everything gets allocated");
    assert!(stats.estimated_revenue[0] < 10.0);

    // Extreme 2: one seed overshoots a tiny budget → empty allocation is
    // optimal and Greedy stays empty (any node's revenue ≥ 1 > 2·budget).
    let g2 = generators::clique(4);
    let probs2 = vec![vec![1.0f32; g2.num_edges()]];
    let ads2 = vec![Advertiser::new(0.4, 1.0, TopicDist::single(1, 0))];
    let ctp2 = CtpTable::constant(4, 1, 1.0);
    let p2 = ProblemInstance::new(&g2, ads2, probs2, ctp2, Attention::Uniform(1), 0.0);
    let mut oracle2 = ExactOracle::new(&g2, &p2.edge_probs, vec![Some(p2.ctp.ad(0))]);
    let (alloc2, _) = greedy_allocate(&p2, &mut oracle2, GreedyOptions::default());
    assert_eq!(alloc2.total_seeds(), 0, "empty allocation has least regret");
}
