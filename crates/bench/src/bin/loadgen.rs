//! Open-loop load generator for a running `tirm_server`.
//!
//! ```text
//! # terminal 1
//! cargo run -p tirm_server --bin tirm_server --release -- \
//!     --dataset EPINIONS --bind 127.0.0.1:7401
//!
//! # terminal 2 — 200 events at 50 ev/s open-loop, 4 concurrent
//! # readers, graceful server shutdown at the end
//! cargo run -p tirm_bench --bin loadgen --release -- \
//!     --addr 127.0.0.1:7401 --events 200 --rate 50 --readers 4 --shutdown
//! ```
//!
//! Traffic comes from a generated [`EventStreamSpec`] stream
//! (`--events N`, seeded, Poisson clock + truncated-Pareto budgets) or
//! a JSONL log (`--log PATH`). Budgets in both are *paper scale*; the
//! generator multiplies them by the size ratio of `--dataset` at the
//! current `TIRM_SCALE` — the same convention the server and
//! `online_replay` use — so one log drives any scale
//! (`--raw-budgets` disables).
//!
//! Flags:
//! * `--addr HOST:PORT` — server address (required).
//! * `--dataset NAME`   — stream preset + budget scaling (default
//!   EPINIONS; must match the server's dataset).
//! * `--events N`       — generate an N-event stream (default 200).
//! * `--log PATH`       — replay a JSONL log instead of generating.
//! * `--rate R`         — open-loop Poisson rate in events/s (default:
//!   closed-loop, as fast as responses return).
//! * `--readers N`      — concurrent read connections (default 4).
//! * `--read-pause-us U` — pause between each reader's queries
//!   (default 0 = fully closed-loop; the bench cells use a small pause
//!   so the reader pool doesn't starve a 1-CPU writer).
//! * `--no-retry`       — drop `overloaded` mutations instead of
//!   retrying (overload probing; default retries = deterministic
//!   delivery).
//! * `--seed N`         — stream + pacing seed.
//! * `--reconnect N`    — survive up to N connection losses per
//!   reconnect (capped exponential backoff), resuming the log at the
//!   server's durable `wal_seq` — the kill/restart bench mode against
//!   a `--state-dir` server. Default 0 = a reset is fatal.
//! * `--follower HOST:PORT` — add a follower replica to the read pool
//!   (repeatable). Readers are spread round-robin across the leader
//!   plus the follower pool with lag-aware routing: a follower more
//!   than `--max-lag` events behind (or unreachable) loses its readers
//!   to the leader until it catches up.
//! * `--max-lag N`      — replication-lag budget (events) before a
//!   follower's readers fall back to the leader (default 64).
//! * `--shutdown`       — send a graceful-shutdown request at the end.
//! * `--raw-budgets`    — send log budgets verbatim.
//!
//! Per-request-kind wire latency histograms, reader throughput and the
//! shed rate print as a table and land in
//! `target/experiments/loadgen.json` (schema-v4 field names).

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;
use tirm_bench::loadgen::{drive, LoadgenConfig};
use tirm_bench::write_json;
use tirm_core::report::{fnum, Table};
use tirm_server::Client;
use tirm_server::ClientOptions;
use tirm_workloads::events::{read_log, scale_budgets};
use tirm_workloads::{DatasetKind, EventStreamSpec, LatencyHistogram, ScaleConfig};

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--dataset NAME] [--events N | --log PATH] \
         [--rate R] [--readers N] [--read-pause-us U] [--no-retry] [--seed N] \
         [--reconnect N] [--follower HOST:PORT]... [--max-lag N] [--shutdown] \
         [--raw-budgets]"
    );
    ExitCode::from(2)
}

#[derive(serde::Serialize)]
struct KindRow {
    kind: String,
    count: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
}

#[derive(serde::Serialize)]
struct LoadgenSummary {
    addr: String,
    dataset: String,
    events: usize,
    readers: usize,
    rate: Option<f64>,
    retry: bool,
    wall_s: f64,
    offered: u64,
    accepted: u64,
    shed: u64,
    shed_rate: f64,
    events_per_s: f64,
    reads: u64,
    reads_per_s: f64,
    read_p50_us: f64,
    read_p99_us: f64,
    reads_per_reader: Vec<u64>,
    follower_reads: u64,
    leader_fallback_reads: u64,
    follower_lag_p99: u64,
    leader_queue_p99: u64,
    leader_shed_total: u64,
    latency_p50_us: f64,
    latency_p95_us: f64,
    latency_p99_us: f64,
    server_max_queue_depth: usize,
    server_epoch: u64,
    latencies: Vec<KindRow>,
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut dataset = DatasetKind::Epinions;
    let mut events = 200usize;
    let mut log_path: Option<PathBuf> = None;
    let mut rate: Option<f64> = None;
    let mut readers = 4usize;
    let mut read_pause_us = 0u64;
    let mut retry = true;
    let mut seed = 0x10adu64;
    let mut reconnect_attempts = 0u32;
    let mut followers: Vec<String> = Vec::new();
    let mut max_lag = 64u64;
    let mut shutdown = false;
    let mut raw_budgets = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => return usage("--addr expects HOST:PORT"),
            },
            "--dataset" => match args.next().as_deref().and_then(DatasetKind::parse) {
                Some(d) => dataset = d,
                None => return usage("--dataset expects FLIXSTER|EPINIONS|DBLP|LIVEJOURNAL"),
            },
            "--events" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => events = n,
                _ => return usage("--events expects a positive count"),
            },
            "--log" => match args.next() {
                Some(p) => log_path = Some(PathBuf::from(p)),
                None => return usage("--log expects a path"),
            },
            "--rate" => match args.next().and_then(|s| s.parse().ok()) {
                Some(r) if r > 0.0 => rate = Some(r),
                _ => return usage("--rate expects a positive events/s"),
            },
            "--readers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => readers = n,
                None => return usage("--readers expects a count"),
            },
            "--read-pause-us" => match args.next().and_then(|s| s.parse().ok()) {
                Some(u) => read_pause_us = u,
                None => return usage("--read-pause-us expects microseconds"),
            },
            "--no-retry" => retry = false,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--reconnect" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => reconnect_attempts = n,
                None => return usage("--reconnect expects an attempt budget"),
            },
            "--follower" => match args.next() {
                Some(a) => followers.push(a),
                None => return usage("--follower expects HOST:PORT"),
            },
            "--max-lag" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => max_lag = n,
                None => return usage("--max-lag expects an event count"),
            },
            "--shutdown" => shutdown = true,
            "--raw-budgets" => raw_budgets = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        return usage("--addr is required");
    };
    let sock: SocketAddr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(s) => s,
        None => return usage(&format!("cannot resolve {addr:?}")),
    };
    let mut follower_addrs = Vec::with_capacity(followers.len());
    for f in &followers {
        match f.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(s) => follower_addrs.push(s),
            None => return usage(&format!("cannot resolve follower {f:?}")),
        }
    }

    let mut log = match &log_path {
        Some(path) => match read_log(path) {
            Ok(l) => l,
            Err(e) => return usage(&format!("{}: {e}", path.display())),
        },
        None => EventStreamSpec::for_dataset(dataset, events, seed).generate(1.0),
    };
    if log.is_empty() {
        return usage("event stream is empty");
    }
    if !raw_budgets {
        let cfg = ScaleConfig::from_env();
        let ratio = dataset.size_ratio_at(&cfg);
        scale_budgets(&mut log, ratio);
        eprintln!(
            "budgets scaled by {}'s size ratio {ratio:.4} at TIRM_SCALE={} \
             (pass --raw-budgets to disable)",
            dataset.name(),
            cfg.scale
        );
    }

    eprintln!(
        "driving {} events at {} against {sock} ({readers} readers, {})",
        log.len(),
        rate.map(|r| format!("{r:.1} ev/s open-loop"))
            .unwrap_or_else(|| "closed-loop".to_string()),
        if retry {
            "retry-on-overload"
        } else {
            "shed-and-drop"
        },
    );
    let report = match drive(
        sock,
        &log,
        &LoadgenConfig {
            readers,
            rate,
            retry,
            seed,
            drain: true,
            read_pause: std::time::Duration::from_micros(read_pause_us),
            reconnect: if reconnect_attempts > 0 {
                ClientOptions::reconnecting(reconnect_attempts)
            } else {
                ClientOptions::default()
            },
            follower_addrs,
            max_lag,
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut t = Table::new(&["request", "count", "p50 µs", "p95 µs", "p99 µs", "max µs"]);
    let mut rows = Vec::new();
    let mut push = |name: &str, h: &LatencyHistogram| {
        if h.count() == 0 {
            return;
        }
        t.row(vec![
            name.to_string(),
            h.count().to_string(),
            fnum(h.percentile_us(50.0)),
            fnum(h.percentile_us(95.0)),
            fnum(h.percentile_us(99.0)),
            fnum(h.max_us()),
        ]);
        rows.push(KindRow {
            kind: name.to_string(),
            count: h.count(),
            p50_us: h.percentile_us(50.0),
            p95_us: h.percentile_us(95.0),
            p99_us: h.percentile_us(99.0),
            max_us: h.max_us(),
        });
    };
    for (kind, h) in &report.per_kind {
        push(kind.name(), h);
    }
    push("reads(pool)", &report.read_latency);

    println!(
        "\nloadgen — {} offered ({} accepted, {} shed = {:.1}%), {} reads",
        report.offered,
        report.accepted,
        report.shed,
        report.shed_rate() * 100.0,
        report.reads
    );
    println!("{}", t.render());
    println!(
        "throughput {:.1} accepted ev/s | reader pool {:.1} reads/s over {} connections {:?} | \
         server max queue {} | final epoch {}",
        report.events_per_s,
        report.reads_per_s,
        readers,
        report.reads_per_reader,
        report.final_stats.max_queue_depth,
        report.final_stats.epoch,
    );
    if !report.leader_queue_depth.is_empty() {
        println!(
            "leader pressure — queue depth p99 {} over {} observations, \
             {} mutations shed process-lifetime",
            report.leader_queue_p99(),
            report.leader_queue_depth.len(),
            report.leader_shed_total,
        );
    }
    if !followers.is_empty() {
        println!(
            "follower pool — {} follower reads, {} leader fallbacks, lag p99 {} events",
            report.follower_reads,
            report.leader_fallback_reads,
            report.follower_lag_p99(),
        );
    }

    write_json(
        "loadgen",
        &LoadgenSummary {
            addr,
            dataset: dataset.name().to_string(),
            events: log.len(),
            readers,
            rate,
            retry,
            wall_s: report.wall_s,
            offered: report.offered,
            accepted: report.accepted,
            shed: report.shed,
            shed_rate: report.shed_rate(),
            events_per_s: report.events_per_s,
            reads: report.reads,
            reads_per_s: report.reads_per_s,
            read_p50_us: report.read_latency.percentile_us(50.0),
            read_p99_us: report.read_latency.percentile_us(99.0),
            reads_per_reader: report.reads_per_reader.clone(),
            follower_reads: report.follower_reads,
            leader_fallback_reads: report.leader_fallback_reads,
            follower_lag_p99: report.follower_lag_p99(),
            leader_queue_p99: report.leader_queue_p99(),
            leader_shed_total: report.leader_shed_total,
            latency_p50_us: report.mutation_latency.percentile_us(50.0),
            latency_p95_us: report.mutation_latency.percentile_us(95.0),
            latency_p99_us: report.mutation_latency.percentile_us(99.0),
            server_max_queue_depth: report.final_stats.max_queue_depth,
            server_epoch: report.final_stats.epoch,
            latencies: rows,
        },
    );

    if shutdown {
        match Client::connect(sock).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => eprintln!("server shutdown requested"),
            Err(e) => eprintln!("warn: shutdown request failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}
