//! The spread-oracle abstraction used by the greedy allocator.
//!
//! Algorithm 1 of the paper repeatedly asks "what is `Π_i(S_i ∪ {x})`?".
//! The answer can come from Monte-Carlo simulation (the paper's conceptual
//! Greedy), exact enumeration (tests), the IRIE heuristic (GREEDY-IRIE) or
//! RR-set coverage (TIRM). This trait lets `tirm-core` implement the greedy
//! loop once, generically.

use crate::exact::exact_spread;
use crate::montecarlo::mc_spread;
use tirm_graph::{DiGraph, NodeId};

/// Estimates expected *spread* (clicks) `σ_i(S)` per ad. Revenue scaling by
/// `cpe(i)` is applied by the caller.
///
/// `&mut self` allows implementations to cache (CELF state, RR coverage,
/// IRIE ranks) between queries.
pub trait SpreadOracle {
    /// Expected number of clicks for ad `ad` if `seeds` are promoted to it.
    fn spread(&mut self, ad: usize, seeds: &[NodeId]) -> f64;

    /// Marginal spread of adding `x` to `seeds`; `base` is a cached
    /// `spread(ad, seeds)` so the default needs one evaluation.
    fn marginal(&mut self, ad: usize, seeds: &[NodeId], base: f64, x: NodeId) -> f64 {
        let mut with: Vec<NodeId> = Vec::with_capacity(seeds.len() + 1);
        with.extend_from_slice(seeds);
        with.push(x);
        (self.spread(ad, &with) - base).max(0.0)
    }

    /// Number of ads the oracle can answer for.
    fn num_ads(&self) -> usize;
}

/// Monte-Carlo oracle: the paper's Algorithm 1 instantiation "Greedy with
/// MC simulations". Accurate but expensive — `O(runs · m)` per query.
pub struct McOracle<'a> {
    graph: &'a DiGraph,
    /// Per-ad projected arc probabilities (Eq. 1).
    probs: &'a [Vec<f32>],
    /// Per-ad CTP vectors; empty slice ⇒ CTP = 1 for everyone.
    ctps: Vec<Option<&'a [f32]>>,
    runs: usize,
    seed: u64,
}

impl<'a> McOracle<'a> {
    /// Builds an MC oracle with `runs` cascades per query.
    pub fn new(
        graph: &'a DiGraph,
        probs: &'a [Vec<f32>],
        ctps: Vec<Option<&'a [f32]>>,
        runs: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(probs.len(), ctps.len());
        McOracle {
            graph,
            probs,
            ctps,
            runs,
            seed,
        }
    }
}

impl SpreadOracle for McOracle<'_> {
    fn spread(&mut self, ad: usize, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        mc_spread(
            self.graph,
            &self.probs[ad],
            seeds,
            self.ctps[ad],
            self.runs,
            // Distinct but deterministic stream per (ad, |S|) query shape.
            self.seed ^ (ad as u64) << 32,
        )
    }

    fn num_ads(&self) -> usize {
        self.probs.len()
    }
}

/// Exact oracle for gadget-sized graphs (≤ 20 arcs).
pub struct ExactOracle<'a> {
    graph: &'a DiGraph,
    probs: &'a [Vec<f32>],
    ctps: Vec<Option<&'a [f32]>>,
}

impl<'a> ExactOracle<'a> {
    /// Builds an exact oracle; panics later if the graph is too large.
    pub fn new(graph: &'a DiGraph, probs: &'a [Vec<f32>], ctps: Vec<Option<&'a [f32]>>) -> Self {
        assert_eq!(probs.len(), ctps.len());
        ExactOracle { graph, probs, ctps }
    }
}

impl SpreadOracle for ExactOracle<'_> {
    fn spread(&mut self, ad: usize, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        exact_spread(self.graph, &self.probs[ad], seeds, self.ctps[ad])
    }

    fn num_ads(&self) -> usize {
        self.probs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_graph::generators;

    #[test]
    fn exact_oracle_marginals_are_submodular_on_path() {
        let g = generators::path(4);
        let probs = vec![vec![0.5f32; 3]];
        let mut o = ExactOracle::new(&g, &probs, vec![None]);
        let s_empty = o.spread(0, &[]);
        let s0 = o.spread(0, &[0]);
        let mg_empty = o.marginal(0, &[], s_empty, 1);
        let mg_after0 = o.marginal(0, &[0], s0, 1);
        assert!(mg_empty >= mg_after0 - 1e-12, "submodularity violated");
    }

    #[test]
    fn mc_oracle_close_to_exact() {
        let g = generators::path(5);
        let probs = vec![vec![0.7f32; 4]];
        let ctp = vec![0.4f32; 5];
        let ctps: Vec<Option<&[f32]>> = vec![Some(&ctp)];
        let mut exact = ExactOracle::new(&g, &probs, ctps.clone());
        let mut mc = McOracle::new(&g, &probs, ctps, 50_000, 3);
        let t = exact.spread(0, &[0, 3]);
        let e = mc.spread(0, &[0, 3]);
        assert!((t - e).abs() < 0.03, "exact {t} vs mc {e}");
    }

    #[test]
    fn empty_seed_is_zero_without_simulation() {
        let g = generators::path(3);
        let probs = vec![vec![1.0f32; 2]];
        let mut mc = McOracle::new(&g, &probs, vec![None], 10, 1);
        assert_eq!(mc.spread(0, &[]), 0.0);
        assert_eq!(mc.num_ads(), 1);
    }
}
