//! Per-topic arc influence probabilities `p^z_{u,v}` and their TIC
//! projection to per-ad arc probabilities (Eq. 1 of the paper).

use crate::dist::TopicDist;
use tirm_graph::EdgeId;

/// Dense per-topic arc probabilities, edge-major layout
/// (`probs[e·K + z] = p^z` of edge `e`) so that projecting one edge touches
/// one cache line.
#[derive(Clone, Debug)]
pub struct TopicEdgeProbs {
    k: usize,
    probs: Vec<f32>,
}

impl TopicEdgeProbs {
    /// All-zero table for `m` arcs and `k` topics.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one topic");
        TopicEdgeProbs {
            k,
            probs: vec![0.0; m * k],
        }
    }

    /// Builds the table by evaluating `f(edge, topic)` for every entry.
    pub fn from_fn(m: usize, k: usize, mut f: impl FnMut(EdgeId, usize) -> f32) -> Self {
        let mut t = TopicEdgeProbs::new(m, k);
        for e in 0..m {
            for z in 0..k {
                t.set(e as EdgeId, z, f(e as EdgeId, z));
            }
        }
        t
    }

    /// Wraps a single-topic (plain IC) probability vector.
    pub fn single_topic(probs: Vec<f32>) -> Self {
        TopicEdgeProbs { k: 1, probs }
    }

    /// Wraps an edge-major `m × k` matrix already in the internal layout —
    /// the zero-copy entry point for the snapshot loader
    /// (`tirm_graph::snapshot` stores exactly this layout). Panics if the
    /// length is not a multiple of `k`.
    pub fn from_flat(k: usize, probs: Vec<f32>) -> Self {
        assert!(k > 0, "need at least one topic");
        assert_eq!(
            probs.len() % k,
            0,
            "flat probability matrix length must be a multiple of k"
        );
        TopicEdgeProbs { k, probs }
    }

    /// The edge-major `m × k` matrix as a flat slice (the snapshot
    /// writer's view; inverse of [`Self::from_flat`]).
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.probs
    }

    /// Number of topics `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of arcs covered.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.probs.len() / self.k
    }

    /// Sets `p^z` of edge `e`. Probability must lie in `[0, 1]`.
    #[inline]
    pub fn set(&mut self, e: EdgeId, z: usize, p: f32) {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.probs[e as usize * self.k + z] = p;
    }

    /// Reads `p^z` of edge `e`.
    #[inline]
    pub fn get(&self, e: EdgeId, z: usize) -> f32 {
        self.probs[e as usize * self.k + z]
    }

    /// Per-topic slice of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &[f32] {
        let lo = e as usize * self.k;
        &self.probs[lo..lo + self.k]
    }

    /// TIC projection (Eq. 1): `p^i_{u,v} = Σ_z γ^z_i · p^z_{u,v}` for every
    /// arc, producing the flat per-ad probability vector consumed by the
    /// diffusion and RR-sampling engines.
    pub fn project(&self, ad: &TopicDist) -> Vec<f32> {
        assert_eq!(ad.k(), self.k, "ad lives in a different topic space");
        let m = self.num_edges();
        let mut out = vec![0.0f32; m];
        let w = ad.weights();
        for (e, slot) in out.iter_mut().enumerate() {
            let row = &self.probs[e * self.k..(e + 1) * self.k];
            let acc: f32 = w.iter().zip(row).map(|(wz, pz)| wz * pz).sum();
            // Numerical guard: convex combination of [0,1] values can drift
            // a hair above 1 in f32.
            *slot = acc.clamp(0.0, 1.0);
        }
        out
    }

    /// Projects every ad at once; returns one probability vector per ad.
    pub fn project_all(&self, ads: &[TopicDist]) -> Vec<Vec<f32>> {
        ads.iter().map(|a| self.project(a)).collect()
    }

    /// Bytes held by the table.
    pub fn memory_bytes(&self) -> usize {
        self.probs.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_convex_combination() {
        let mut t = TopicEdgeProbs::new(2, 3);
        t.set(0, 0, 0.9);
        t.set(0, 1, 0.3);
        t.set(0, 2, 0.0);
        t.set(1, 0, 0.1);
        t.set(1, 1, 0.1);
        t.set(1, 2, 0.1);
        let ad = TopicDist::new(vec![0.5, 0.5, 0.0]).unwrap();
        let p = t.project(&ad);
        assert!((p[0] - 0.6).abs() < 1e-6);
        assert!((p[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn single_topic_projection_is_identity() {
        let t = TopicEdgeProbs::single_topic(vec![0.25, 0.75]);
        let ad = TopicDist::single(1, 0);
        assert_eq!(t.project(&ad), vec![0.25, 0.75]);
    }

    #[test]
    fn point_mass_selects_topic() {
        let t = TopicEdgeProbs::from_fn(4, 2, |e, z| if z == 0 { 0.0 } else { e as f32 / 10.0 });
        let ad = TopicDist::single(2, 1);
        let p = t.project(&ad);
        assert_eq!(p, vec![0.0, 0.1, 0.2, 0.3]);
    }

    #[test]
    fn projection_stays_in_unit_interval() {
        let t = TopicEdgeProbs::from_fn(8, 4, |_, _| 1.0);
        let ad = TopicDist::uniform(4);
        assert!(t.project(&ad).iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "different topic space")]
    fn topic_space_mismatch_panics() {
        let t = TopicEdgeProbs::new(1, 2);
        let ad = TopicDist::uniform(3);
        let _ = t.project(&ad);
    }

    #[test]
    fn flat_round_trip() {
        let t = TopicEdgeProbs::from_fn(3, 2, |e, z| (e as f32 + z as f32) / 10.0);
        let back = TopicEdgeProbs::from_flat(t.k(), t.flat().to_vec());
        assert_eq!(back.k(), 2);
        assert_eq!(back.num_edges(), 3);
        for e in 0..3u32 {
            assert_eq!(back.edge(e), t.edge(e));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn from_flat_rejects_ragged_matrix() {
        let _ = TopicEdgeProbs::from_flat(3, vec![0.1; 7]);
    }

    #[test]
    fn memory_accounting() {
        let t = TopicEdgeProbs::new(10, 5);
        assert_eq!(t.memory_bytes(), 10 * 5 * 4);
        assert_eq!(t.num_edges(), 10);
        assert_eq!(t.k(), 5);
    }
}
