//! Property test for the full ingestion round trip the dataset cache
//! relies on: `DiGraph + TopicEdgeProbs → snapshot file → load` must be
//! bit-identical — graphs compare equal and every probability survives as
//! the exact same f32 bit pattern.

use proptest::prelude::*;
use tirm_graph::{generators, snapshot};
use tirm_topics::{genprob, TopicEdgeProbs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_plus_topic_probs_round_trip_bit_identical(
        n in 16usize..120,
        out_per_node in 1usize..5,
        k in 1usize..6,
        seed in 0u64..512,
    ) {
        let g = generators::preferential_attachment(n, out_per_node, 0.3, seed);
        let probs: TopicEdgeProbs =
            genprob::exponential_topic_probs(g.num_edges(), k, 30.0, seed ^ 0xe919);

        let dir = std::env::temp_dir()
            .join(format!("tirm_topics_snapshot_{}", std::process::id()));
        let path = dir.join(format!("case_{n}_{k}_{seed}.tirmsnap"));
        snapshot::write_snapshot(&path, &g, probs.k(), probs.flat()).unwrap();
        let snap = snapshot::read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&snap.graph, &g);
        let back = TopicEdgeProbs::from_flat(snap.num_topics, snap.edge_probs);
        prop_assert_eq!(back.k(), probs.k());
        prop_assert_eq!(back.num_edges(), probs.num_edges());
        let got: Vec<u32> = back.flat().iter().map(|p| p.to_bits()).collect();
        let want: Vec<u32> = probs.flat().iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(got, want, "probabilities must survive as raw bits");
    }
}
