//! Bounded slow-event trace: keeps the top-K slowest events seen so far,
//! dumpable on demand.
//!
//! The fast path is a single relaxed load: once the buffer is full, its
//! minimum duration is cached in an atomic floor, and events at or below
//! the floor return without touching the lock. Only genuinely slow events
//! (by construction, at most K of them per floor level) pay for the
//! mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One traced slow event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEvent {
    /// Static event kind label (e.g. `"arrival"`, `"wal_fsync"`).
    pub kind: &'static str,
    /// Ad id the event concerned, or 0 when not ad-scoped.
    pub ad_id: u64,
    /// Duration in nanoseconds.
    pub nanos: u64,
    /// Process-wide admission order (monotone; later ⇒ more recent).
    pub seq: u64,
}

struct TraceInner {
    entries: Vec<SlowEvent>,
    next_seq: u64,
}

/// Top-K slowest events, `const`-constructible for `static` position.
pub struct SlowTrace {
    capacity: usize,
    /// Admission floor in nanoseconds: events at or below this cannot
    /// displace anything (0 until the buffer fills).
    floor: AtomicU64,
    inner: Mutex<TraceInner>,
}

impl SlowTrace {
    /// An empty trace keeping the slowest `capacity` events.
    pub const fn new(capacity: usize) -> Self {
        SlowTrace {
            capacity,
            floor: AtomicU64::new(0),
            inner: Mutex::new(TraceInner {
                entries: Vec::new(),
                next_seq: 0,
            }),
        }
    }

    /// Offers one event; keeps it only if it ranks among the slowest
    /// seen.
    pub fn record(&self, kind: &'static str, ad_id: u64, nanos: u64) {
        if nanos <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(SlowEvent {
            kind,
            ad_id,
            nanos,
            seq,
        });
        if inner.entries.len() > self.capacity {
            let min_idx = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.nanos)
                .map(|(i, _)| i)
                .unwrap();
            inner.entries.swap_remove(min_idx);
        }
        if inner.entries.len() >= self.capacity {
            let new_floor = inner.entries.iter().map(|e| e.nanos).min().unwrap_or(0);
            self.floor.store(new_floor, Ordering::Relaxed);
        }
    }

    /// Current contents, slowest first (ties broken by recency).
    pub fn dump(&self) -> Vec<SlowEvent> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let mut out = inner.entries.clone();
        drop(inner);
        out.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(b.seq.cmp(&a.seq)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_k_by_duration() {
        let t = SlowTrace::new(4);
        for nanos in [10u64, 50, 20, 40, 30, 60, 5] {
            t.record("ev", nanos, nanos);
        }
        let dump = t.dump();
        let durations: Vec<u64> = dump.iter().map(|e| e.nanos).collect();
        assert_eq!(durations, vec![60, 50, 40, 30]);
        // Floor rejects without admitting: 5 and 10 never displace.
        assert!(dump.iter().all(|e| e.nanos >= 30));
        assert_eq!(dump[0].ad_id, 60);
        assert_eq!(dump[0].kind, "ev");
    }

    #[test]
    fn fast_reject_below_floor() {
        let t = SlowTrace::new(2);
        t.record("a", 0, 100);
        t.record("b", 0, 200);
        // Buffer full: floor is now 100, this is dropped without a lock
        // round-trip mutating anything.
        t.record("c", 0, 50);
        let dump = t.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].nanos, 200);
        assert_eq!(dump[1].nanos, 100);
    }
}
