//! The REGRET-MINIMIZATION problem instance (Problem 1, §3).

use tirm_graph::{DiGraph, NodeId};
use tirm_topics::{CtpTable, TopicDist, TopicEdgeProbs};

/// One advertiser `a_i`: an ad with topic distribution `γ_i`, a campaign
/// budget `B_i` and a cost-per-engagement `cpe(i)`.
#[derive(Clone, Debug)]
pub struct Advertiser {
    /// Campaign budget `B_i` — the maximum the advertiser will pay.
    pub budget: f64,
    /// Cost-per-engagement `cpe(i)` paid to the host per click.
    pub cpe: f64,
    /// Topic distribution `γ_i` of the ad.
    pub topics: TopicDist,
}

impl Advertiser {
    /// Convenience constructor.
    pub fn new(budget: f64, cpe: f64, topics: TopicDist) -> Self {
        assert!(budget >= 0.0 && budget.is_finite());
        assert!(cpe > 0.0 && cpe.is_finite());
        Advertiser {
            budget,
            cpe,
            topics,
        }
    }
}

/// Per-user attention bounds `κ_u` (§3): the maximum number of ads the host
/// may promote to a user.
#[derive(Clone, Debug)]
pub enum Attention {
    /// Same bound for everyone (the paper's experiments use κ ∈ 1..=5).
    Uniform(u32),
    /// Personalised per-user bounds ("the host can even personalize this
    /// number depending on users' activity").
    PerUser(Vec<u32>),
}

impl Attention {
    /// `κ_u`.
    #[inline]
    pub fn of(&self, u: NodeId) -> u32 {
        match self {
            Attention::Uniform(k) => *k,
            Attention::PerUser(v) => v[u as usize],
        }
    }
}

/// A fully specified REGRET-MINIMIZATION instance.
///
/// `edge_probs[i]` holds the *projected* per-arc probabilities `p^i_{u,v}`
/// of ad `i` (Eq. 1 already applied), so the propagation engines never need
/// topic arithmetic in their hot loops.
pub struct ProblemInstance<'a> {
    /// The social graph (arc `(u,v)`: `v` follows `u`).
    pub graph: &'a DiGraph,
    /// The advertisers `a_1 … a_h`.
    pub ads: Vec<Advertiser>,
    /// Per-ad projected arc probabilities.
    pub edge_probs: Vec<Vec<f32>>,
    /// Click-through probabilities `δ(u, i)`.
    pub ctp: CtpTable,
    /// Attention bounds `κ_u`.
    pub attention: Attention,
    /// Seed-set size penalty `λ ≥ 0` (Eq. 3).
    pub lambda: f64,
    /// Budget boost `β ≥ 0` (§3 Discussion): regret is measured against
    /// `B'_i = (1 + β)·B_i`, letting the host trade a bounded amount of
    /// free service for extra revenue. `β = 0` recovers Problem 1 verbatim.
    pub beta: f64,
}

impl<'a> ProblemInstance<'a> {
    /// Builds an instance from pre-projected probabilities.
    pub fn new(
        graph: &'a DiGraph,
        ads: Vec<Advertiser>,
        edge_probs: Vec<Vec<f32>>,
        ctp: CtpTable,
        attention: Attention,
        lambda: f64,
    ) -> Self {
        assert!(!ads.is_empty(), "need at least one advertiser");
        assert_eq!(ads.len(), edge_probs.len(), "one probability vector per ad");
        assert_eq!(ctp.num_ads(), ads.len(), "CTP table must cover every ad");
        assert_eq!(ctp.num_nodes(), graph.num_nodes());
        for p in &edge_probs {
            assert_eq!(p.len(), graph.num_edges(), "probability vector length");
        }
        if let Attention::PerUser(v) = &attention {
            assert_eq!(v.len(), graph.num_nodes());
        }
        assert!(lambda >= 0.0 && lambda.is_finite());
        ProblemInstance {
            graph,
            ads,
            edge_probs,
            ctp,
            attention,
            lambda,
            beta: 0.0,
        }
    }

    /// Builds an instance by projecting a per-topic probability table
    /// through each ad's topic distribution (Eq. 1).
    pub fn from_topic_model(
        graph: &'a DiGraph,
        topic_probs: &TopicEdgeProbs,
        ads: Vec<Advertiser>,
        ctp: CtpTable,
        attention: Attention,
        lambda: f64,
    ) -> Self {
        assert_eq!(topic_probs.num_edges(), graph.num_edges());
        let edge_probs = ads.iter().map(|a| topic_probs.project(&a.topics)).collect();
        Self::new(graph, ads, edge_probs, ctp, attention, lambda)
    }

    /// Sets the budget boost `β` (builder style).
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta >= 0.0 && beta.is_finite());
        self.beta = beta;
        self
    }

    /// Number of advertisers `h`.
    #[inline]
    pub fn num_ads(&self) -> usize {
        self.ads.len()
    }

    /// Number of users `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The (possibly boosted) target budget `B'_i = (1 + β)·B_i`.
    #[inline]
    pub fn target_budget(&self, ad: usize) -> f64 {
        (1.0 + self.beta) * self.ads[ad].budget
    }

    /// Expected *direct* revenue of promoting ad `i` to `u` with no network
    /// effect: `δ(u,i)·cpe(i)` — MYOPIC's ranking key and the λ-assumption
    /// quantity of Theorem 2.
    #[inline]
    pub fn direct_revenue(&self, u: NodeId, ad: usize) -> f64 {
        self.ctp.get(u, ad) as f64 * self.ads[ad].cpe
    }

    /// Checks Theorem 2's λ assumption: `λ ≤ δ(u,i)·cpe(i)` for all pairs.
    pub fn lambda_assumption_holds(&self) -> bool {
        let min_cpe = self.ads.iter().map(|a| a.cpe).fold(f64::INFINITY, f64::min);
        self.lambda <= self.ctp.min_ctp() as f64 * min_cpe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_graph::generators;
    use tirm_topics::genprob;

    fn tiny<'a>(g: &'a DiGraph) -> ProblemInstance<'a> {
        let ads = vec![
            Advertiser::new(10.0, 1.0, TopicDist::single(2, 0)),
            Advertiser::new(5.0, 2.0, TopicDist::single(2, 1)),
        ];
        let tp = genprob::replicate_across_topics(&vec![0.2; g.num_edges()], 2);
        let ctp = CtpTable::uniform_random(g.num_nodes(), 2, 0.01, 0.03, 1);
        ProblemInstance::from_topic_model(g, &tp, ads, ctp, Attention::Uniform(1), 0.0)
    }

    #[test]
    fn projection_wires_through() {
        let g = generators::path(5);
        let p = tiny(&g);
        assert_eq!(p.num_ads(), 2);
        assert_eq!(p.edge_probs[0].len(), g.num_edges());
        assert!((p.edge_probs[0][0] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn boosted_budget() {
        let g = generators::path(5);
        let p = tiny(&g).with_beta(0.25);
        assert!((p.target_budget(0) - 12.5).abs() < 1e-12);
        assert!((p.target_budget(1) - 6.25).abs() < 1e-12);
    }

    #[test]
    fn lambda_assumption_check() {
        let g = generators::path(5);
        let mut p = tiny(&g);
        p.lambda = 0.005; // min direct revenue = 0.01·1 = 0.01
        assert!(p.lambda_assumption_holds());
        p.lambda = 0.5;
        assert!(!p.lambda_assumption_holds());
    }

    #[test]
    fn attention_variants() {
        let a = Attention::Uniform(3);
        assert_eq!(a.of(7), 3);
        let b = Attention::PerUser(vec![1, 2, 5]);
        assert_eq!(b.of(2), 5);
    }

    #[test]
    #[should_panic(expected = "one probability vector per ad")]
    fn mismatched_probs_rejected() {
        let g = generators::path(3);
        let ads = vec![Advertiser::new(1.0, 1.0, TopicDist::single(1, 0))];
        let ctp = CtpTable::constant(3, 1, 1.0);
        ProblemInstance::new(&g, ads, vec![], ctp, Attention::Uniform(1), 0.0);
    }
}
