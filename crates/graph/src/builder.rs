//! Mutable edge-list accumulator that finalises into a [`DiGraph`].

use crate::csr::{DiGraph, EdgeId, NodeId};

/// Collects arcs, then sorts, deduplicates, strips self-loops and builds the
/// dual-direction CSR in one pass.
///
/// Duplicate arcs are merged (the propagation models treat an arc as a single
/// influence channel; multiplicity would silently square probabilities).
/// Self-loops carry no influence semantics in the IC family and are dropped.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes
    /// (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes < u32::MAX as usize,
            "node count exceeds u32 id space"
        );
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Pre-reserves capacity for `m` arcs.
    pub fn with_capacity(num_nodes: usize, m: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.edges.reserve(m);
        b
    }

    /// Number of arcs currently buffered (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no arcs are buffered.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds arc `u → v` (information flows from `u` to follower `v`).
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes, "source {u} out of range");
        debug_assert!((v as usize) < self.num_nodes, "target {v} out of range");
        self.edges.push((u, v));
    }

    /// Adds both `u → v` and `v → u` (used when directing undirected data
    /// sets such as DBLP, per §6.1 of the paper).
    #[inline]
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Grows the node count (ids are dense; this only moves the upper bound).
    pub fn ensure_nodes(&mut self, n: usize) {
        assert!(n < u32::MAX as usize);
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Finalises into an immutable [`DiGraph`].
    pub fn build(mut self) -> DiGraph {
        let n = self.num_nodes;
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        assert!(m <= u32::MAX as usize, "edge count exceeds u32 id space");

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        // Sorted edge list *is* the out-CSR payload.
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        // Reverse direction: counting sort by target, remembering forward ids.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_edge_ids = vec![0 as EdgeId; m];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let slot = cursor[v as usize] as usize;
            in_sources[slot] = u;
            in_edge_ids[slot] = e as EdgeId;
            cursor[v as usize] += 1;
        }

        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_edge_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1); // duplicate
        b.add_edge(1, 1); // self-loop
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 1));
        g.validate().unwrap();
    }

    #[test]
    fn undirected_inserts_both_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn ensure_nodes_extends_id_space() {
        let mut b = GraphBuilder::new(1);
        b.ensure_nodes(5);
        b.add_edge(4, 0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.has_edge(4, 0));
    }
}
