//! The paper's Fig. 1 worked example, end to end: the two hand-built
//! allocations A (myopic) and B (virality-aware), their exact expected
//! clicks and regrets — and what each of the implemented algorithms does
//! on the same instance.
//!
//! ```sh
//! cargo run --release --example toy_paper_example
//! ```

use tirm::core::report::{fnum, Table};
use tirm::{
    evaluate, greedy_allocate, myopic_allocate, myopic_plus_allocate, tirm_allocate, GreedyOptions,
    TirmOptions,
};
use tirm_diffusion::{exact_activation_probs, ExactOracle};
use tirm_workloads::toy::Fig1;

fn main() {
    let fig = Fig1::new();
    let problem = fig.problem(0.0);

    println!("== the paper's hand-built allocations ==");
    for (name, alloc) in [
        (
            "Allocation A (paper: 5.55 clicks, regret 6.6)",
            fig.allocation_a(),
        ),
        (
            "Allocation B (paper: 6.3 clicks, regret 2.7)",
            fig.allocation_b(),
        ),
    ] {
        let mut clicks = 0.0;
        let mut regret = 0.0;
        for i in 0..4 {
            let seeds = alloc.seeds(i);
            let c: f64 = if seeds.is_empty() {
                0.0
            } else {
                exact_activation_probs(&fig.graph, &fig.probs, seeds, Some(problem.ctp.ad(i)))
                    .iter()
                    .sum()
            };
            clicks += c;
            regret += (problem.target_budget(i) - c).abs();
        }
        println!("{name}: exact clicks {clicks:.3}, exact regret {regret:.3}");
    }

    println!("\n== what the algorithms do on the toy instance ==");
    let mut t = Table::new(&["algorithm", "clicks", "regret", "seeds"]);
    let mut push = |name: &str, alloc: &tirm::Allocation| {
        // Exact evaluation is feasible here (6 arcs); MC cross-checks it.
        let ev = evaluate(&problem, alloc, 60_000, 5, 2);
        t.row(vec![
            name.to_string(),
            fnum(ev.spreads.iter().sum::<f64>()),
            fnum(ev.regret.total()),
            alloc.total_seeds().to_string(),
        ]);
    };

    let (a, _) = myopic_allocate(&problem);
    push("Myopic", &a);
    let (a, _) = myopic_plus_allocate(&problem);
    push("Myopic+", &a);
    // Algorithm 1 with the *exact* oracle — optimal greedy behaviour.
    let ctps: Vec<Option<&[f32]>> = (0..4).map(|i| Some(problem.ctp.ad(i))).collect();
    let mut oracle = ExactOracle::new(&fig.graph, &problem.edge_probs, ctps);
    let (a, _) = greedy_allocate(&problem, &mut oracle, GreedyOptions::default());
    push("Greedy (Alg. 1, exact oracle)", &a);
    let (a, _) = tirm_allocate(
        &problem,
        TirmOptions {
            eps: 0.1,
            seed: 3,
            ..TirmOptions::default()
        },
    );
    push("TIRM", &a);
    println!("{}", t.render());
    println!("(budgets a,b,c,d = 4,2,2,1; CPE 1; kappa 1; lambda 0)");
}
