//! Table 2: advertiser budget and cost-per-engagement summary (mean, min,
//! max) for the quality data sets, at both paper scale and harness scale.

use tirm_bench::{banner, write_json};
use tirm_core::report::{fnum, Table};
use tirm_workloads::{campaigns, Dataset, DatasetKind, ScaleConfig};

fn summary(values: impl Iterator<Item = f64> + Clone) -> (f64, f64, f64) {
    let n = values.clone().count().max(1) as f64;
    let mean = values.clone().sum::<f64>() / n;
    let min = values.clone().fold(f64::INFINITY, f64::min);
    let max = values.fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn main() {
    let cfg = ScaleConfig::from_env();
    banner("table2: budgets and CPEs", &cfg);
    let mut t = Table::new(&[
        "dataset",
        "budget mean",
        "budget min",
        "budget max",
        "cpe mean",
        "cpe min",
        "cpe max",
        "paper budget (mean/min/max)",
        "paper cpe",
    ]);
    let mut rows = Vec::new();
    for kind in [DatasetKind::Flixster, DatasetKind::Epinions] {
        let d = Dataset::generate(kind, &cfg, 0xda7a + kind as u64);
        let spec = campaigns::CampaignSpec::quality(kind);
        let ads = campaigns::campaign(&spec, d.size_ratio, (kind as u64) ^ 0xada);
        let (bm, blo, bhi) = summary(ads.iter().map(|a| a.budget));
        let (cm, clo, chi) = summary(ads.iter().map(|a| a.cpe));
        let paper = match kind {
            DatasetKind::Flixster => ("375 / 200 / 600", "5.5 / 5 / 6"),
            DatasetKind::Epinions => ("215 / 100 / 350", "4.35 / 2.5 / 6"),
            _ => unreachable!(),
        };
        t.row(vec![
            kind.name().to_string(),
            fnum(bm),
            fnum(blo),
            fnum(bhi),
            fnum(cm),
            fnum(clo),
            fnum(chi),
            paper.0.to_string(),
            paper.1.to_string(),
        ]);
        rows.push(serde_json::json!({
            "dataset": kind.name(),
            "budget_mean": bm, "budget_min": blo, "budget_max": bhi,
            "cpe_mean": cm, "cpe_min": clo, "cpe_max": chi,
            "size_ratio": d.size_ratio,
        }));
    }
    println!("{}", t.render());
    println!("(budgets are scaled by each dataset's size ratio so the");
    println!(" seeds-per-node regime matches the paper's; see DESIGN.md)");
    write_json("table2", &rows);
}
