//! The paper's headline qualitative claims (§6.1) on a miniature quality
//! workload: TIRM beats GREEDY-IRIE beats the myopic baselines on regret;
//! the myopic baselines overshoot; TIRM targets far fewer distinct users.

use tirm_bench::{run_quality_cell, AlgoKind, QualityWorkload};
use tirm_workloads::DatasetKind;

fn workload() -> QualityWorkload {
    // Small + fast: fix scale/eval via env for this process only. (At this
    // scale budgets force seed counts that are a sizeable fraction of n,
    // so margins below are looser than the paper's full-scale gaps.)
    std::env::set_var("TIRM_SCALE", "0.25");
    std::env::set_var("TIRM_EVAL_RUNS", "3000");
    let w = QualityWorkload::new(DatasetKind::Flixster, 0x0123);
    std::env::remove_var("TIRM_SCALE");
    std::env::remove_var("TIRM_EVAL_RUNS");
    w
}

#[test]
fn tirm_dominates_baselines_and_targets_fewer_users() {
    let w = workload();
    let tirm = run_quality_cell(&w, AlgoKind::Tirm, 1, 0.0, 1);
    let irie = run_quality_cell(&w, AlgoKind::GreedyIrie, 1, 0.0, 1);
    let myo = run_quality_cell(&w, AlgoKind::Myopic, 1, 0.0, 1);
    let myop = run_quality_cell(&w, AlgoKind::MyopicPlus, 1, 0.0, 1);

    // Fig. 3 ordering: TIRM lowest, myopic baselines far above.
    assert!(
        tirm.total_regret < myo.total_regret,
        "TIRM {} vs Myopic {}",
        tirm.total_regret,
        myo.total_regret
    );
    assert!(
        tirm.total_regret < myop.total_regret,
        "TIRM {} vs Myopic+ {}",
        tirm.total_regret,
        myop.total_regret
    );
    assert!(
        tirm.total_regret <= irie.total_regret * 1.25,
        "TIRM {} should not lose clearly to IRIE {}",
        tirm.total_regret,
        irie.total_regret
    );
    // The myopic baselines' regret comes from overshooting (§6.1 footnote):
    // their revenue exceeds the total budget.
    assert!(
        myo.slack_per_ad.iter().sum::<f64>() > 0.0,
        "Myopic overshoots"
    );

    // Table 3: Myopic targets every user; TIRM strictly fewer (at paper
    // scale the gap is 30×; at this miniature scale budgets force TIRM to
    // seed a large share of the graph, so assert the strict ordering plus
    // a modest margin).
    assert_eq!(myo.distinct_targeted, w.dataset.graph.num_nodes());
    assert!(
        (tirm.distinct_targeted as f64) < 0.85 * myo.distinct_targeted as f64,
        "TIRM {} vs Myopic {} distinct users",
        tirm.distinct_targeted,
        myo.distinct_targeted
    );
}

#[test]
fn tirm_regret_stays_low_across_attention_bounds() {
    let w = workload();
    let k1 = run_quality_cell(&w, AlgoKind::Tirm, 1, 0.0, 2);
    let k5 = run_quality_cell(&w, AlgoKind::Tirm, 5, 0.0, 2);
    // Fig. 3's robust claim: TIRM's relative regret is a small fraction of
    // the total budget at every κ (the paper reports 2.5% at κ=1 on
    // FLIXSTER; MC noise at miniature scale warrants slack). Strict
    // monotonicity in κ is an "almost all cases" trend, not asserted here.
    assert!(
        k1.relative_regret < 0.15,
        "κ=1 relative regret {}",
        k1.relative_regret
    );
    assert!(
        k5.relative_regret < 0.15,
        "κ=5 relative regret {}",
        k5.relative_regret
    );
    assert!(
        k5.total_regret <= k1.total_regret * 1.6,
        "κ=5 {} should not collapse vs κ=1 {}",
        k5.total_regret,
        k1.total_regret
    );
}

#[test]
fn regret_rises_with_lambda() {
    let w = workload();
    let l0 = run_quality_cell(&w, AlgoKind::Tirm, 1, 0.0, 3);
    let l1 = run_quality_cell(&w, AlgoKind::Tirm, 1, 1.0, 3);
    // Fig. 4: total regret (including the λ penalty) grows with λ.
    assert!(
        l1.total_regret >= l0.total_regret,
        "λ=1 {} vs λ=0 {}",
        l1.total_regret,
        l0.total_regret
    );
}

#[test]
fn myopic_plus_targets_fewer_with_more_attention() {
    let w = workload();
    let k1 = run_quality_cell(&w, AlgoKind::MyopicPlus, 1, 0.0, 4);
    let k5 = run_quality_cell(&w, AlgoKind::MyopicPlus, 5, 0.0, 4);
    // Table 3 trend: higher κ ⇒ fewer distinct nodes needed.
    assert!(
        k5.distinct_targeted <= k1.distinct_targeted,
        "κ=5 {} vs κ=1 {}",
        k5.distinct_targeted,
        k1.distinct_targeted
    );
}
