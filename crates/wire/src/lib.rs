//! # tirm-wire
//!
//! The typed wire protocol shared by the serving frontend
//! (`tirm_server`) and its clients (`tirm_bench`'s load generator, the
//! crash-soak driver): length-prefixed JSON frames carrying versioned
//! [`Request`]/[`Response`] shapes. One crate owns the encode/decode of
//! every frame on the wire, so the server and each client cannot drift.
//!
//! Every message is one **frame**: a 4-byte little-endian length prefix
//! followed by exactly that many bytes of UTF-8 JSON. Frames are capped
//! at [`MAX_FRAME_BYTES`] — a peer announcing a larger frame is a
//! protocol error, not an allocation request.
//!
//! Connections may open with a `hello` exchange: the client announces
//! [`PROTOCOL_VERSION`], the server echoes its own plus the current
//! snapshot epoch and WAL sequence number — the anchor a reconnecting
//! client resumes its event log from (see [`Response::Hello`]). The
//! handshake is optional for backward compatibility: any other request
//! is served without one.
//!
//! Requests reuse the event-log vocabulary verbatim: a mutation request
//! is exactly the JSON object [`tirm_workloads::events::event_json_fields`]
//! produces for the same event, so any log line (minus its `at` pacing
//! field) is a valid request body and the server and the log reader
//! reject exactly the same malformed payloads. Read requests use `type`
//! tags outside the event vocabulary (`allocation`, `ad`, `stats`,
//! `shutdown`, `hello`).
//!
//! Responses are typed: the admission-control outcomes (`accepted` /
//! `overloaded` / `shutting_down`), the read-path payloads (`regret` /
//! `allocation` / `ad` / `stats` / `hello`) and `rejected` for malformed
//! requests. Allocation payloads embed [`AllocationSnapshot::to_json`]
//! and decode bit-exactly (shortest round-trip float printing), so a
//! client can verify the server's allocation against an in-process
//! replay down to revenue-estimate bits.
//!
//! # Replication vocabulary (protocol v2)
//!
//! Followers tail a leader's write-ahead log through the same framing:
//! [`Request::ReplicatePoll`] asks for frames at or past a `wal_seq`
//! subscription anchor and is answered with
//! [`Response::ReplicateFrames`] (raw event-JSON bodies, clamped to the
//! leader's durable frontier) or [`Response::ReplicateBootstrap`] when
//! the anchor falls inside a pruned segment — the follower then pages
//! the named checkpoint down with [`Request::ReplicateCheckpoint`] /
//! [`Response::ReplicateCheckpointChunk`] and re-subscribes at its
//! cover point. Every replication response carries the leader's
//! **fencing epoch**; a follower ignores frames from an epoch older
//! than the newest it has seen, so a deposed leader's stale segments
//! are rejected. Mutations sent to a follower get the typed
//! [`Response::NotLeader`] redirect, and [`Request::Promote`] asks a
//! follower to stop tailing, bump the fencing epoch, and take over
//! writes ([`Response::Promoting`]).

use serde_json::Value;
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;
use tirm_online::{AdId, AdSnapshot, AllocationSnapshot, OnlineEvent};
use tirm_workloads::events::{event_from_value, event_json_fields};

/// Version of the request/response vocabulary. Bumped on any change a
/// peer cannot ignore; the `hello` exchange surfaces skew as a typed
/// error instead of a mid-stream decode failure. v2 added the
/// replication vocabulary (`Replicate*`, `NotLeader`, `Promote`) and
/// the role / fencing-epoch fields on `hello` and `stats`. v3 added the
/// `metrics` observability request and the registry-backed
/// `shed_total` / `rejected_total` fields on `stats`. v4 added the
/// event-lineage vocabulary: the `trace_dump` request and the
/// `trace_base` field on `replicate_frames` (lenient — it restates the
/// positional trace numbering, so v3 peers interoperate).
pub const PROTOCOL_VERSION: u32 = 4;

/// Hard cap on one frame's body. Requests are small (an arrival with a
/// full topic-weight vector is hundreds of bytes); responses embed at
/// most one allocation snapshot. 16 MiB leaves three orders of
/// magnitude of headroom while bounding what a hostile peer can make
/// the server buffer.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Which side of the replication stream a process is serving: the
/// single writer (leader) or a read replica tailing its WAL
/// (follower). Carried in `hello` and `stats` so clients can route
/// mutations and reason about lag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations; streams its WAL to followers.
    #[default]
    Leader,
    /// Serves snapshot reads; redirects mutations with
    /// [`Response::NotLeader`].
    Follower,
}

impl Role {
    /// Wire name of the role.
    pub fn name(self) -> &'static str {
        match self {
            Role::Leader => "leader",
            Role::Follower => "follower",
        }
    }

    /// Parses a wire role name.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "leader" => Some(Role::Leader),
            "follower" => Some(Role::Follower),
            _ => None,
        }
    }
}

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Protocol handshake (`{"type":"hello","version":N}`): announce the
    /// client's protocol version, learn the server's version, snapshot
    /// epoch and WAL sequence number.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// A mutating event for the writer queue (`arrival` / `topup` /
    /// `departure` / `reallocate` in event-log notation).
    Mutate(OnlineEvent),
    /// Current regret estimate, served from the snapshot
    /// (`regret_query` — the event vocabulary's only read is a wire
    /// read too).
    RegretQuery,
    /// The full standing allocation (`{"type":"allocation"}`).
    AllocationQuery,
    /// One ad's slice of the allocation (`{"type":"ad","id":N}`).
    AdQuery {
        /// Advertiser id to look up.
        id: AdId,
    },
    /// Serving statistics (`{"type":"stats"}`).
    Stats,
    /// The process-wide observability registry dump
    /// (`{"type":"metrics"}`): every counter, gauge and latency
    /// histogram plus the slow-event trace, as one JSON object.
    Metrics,
    /// The event-lineage flight-recorder dump
    /// (`{"type":"trace_dump"}`): the process's per-mutation lifecycle
    /// timelines in Chrome trace-event JSON, same payload as the
    /// `/trace.json` exposition route.
    TraceDump,
    /// Ask the server to begin graceful shutdown
    /// (`{"type":"shutdown"}`).
    Shutdown,
    /// Follower → leader: stream WAL frames starting at the `from_seq`
    /// subscription anchor
    /// (`{"type":"replicate_poll","from_seq":N,"max_frames":N}`).
    ReplicatePoll {
        /// First sequence number the follower still needs.
        from_seq: u64,
        /// Cap on frames in one response (bounds the frame size).
        max_frames: u64,
    },
    /// Follower → leader: page down the bootstrap checkpoint named by a
    /// [`Response::ReplicateBootstrap`]
    /// (`{"type":"replicate_checkpoint","offset":N,"max_bytes":N}`).
    ReplicateCheckpoint {
        /// Byte offset into the checkpoint image.
        offset: u64,
        /// Cap on payload bytes in one chunk.
        max_bytes: u64,
    },
    /// Ask a follower to take over as leader: stop tailing, bump the
    /// fencing epoch, accept writes (`{"type":"promote"}`).
    Promote,
}

impl Request {
    /// Encodes the request as a JSON object (frame body).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { version } => {
                format!("{{\"type\":\"hello\",\"version\":{version}}}")
            }
            Request::Mutate(ev) => format!("{{{}}}", event_json_fields(ev)),
            Request::RegretQuery => "{\"type\":\"regret_query\"}".to_string(),
            Request::AllocationQuery => "{\"type\":\"allocation\"}".to_string(),
            Request::AdQuery { id } => format!("{{\"type\":\"ad\",\"id\":{id}}}"),
            Request::Stats => "{\"type\":\"stats\"}".to_string(),
            Request::Metrics => "{\"type\":\"metrics\"}".to_string(),
            Request::TraceDump => "{\"type\":\"trace_dump\"}".to_string(),
            Request::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
            Request::ReplicatePoll {
                from_seq,
                max_frames,
            } => format!(
                "{{\"type\":\"replicate_poll\",\"from_seq\":{from_seq},\
                 \"max_frames\":{max_frames}}}"
            ),
            Request::ReplicateCheckpoint { offset, max_bytes } => format!(
                "{{\"type\":\"replicate_checkpoint\",\"offset\":{offset},\
                 \"max_bytes\":{max_bytes}}}"
            ),
            Request::Promote => "{\"type\":\"promote\"}".to_string(),
        }
    }

    /// Decodes a frame body. Mutating events go through the shared
    /// event codec; `RegretQuery` — an event kind that mutates nothing —
    /// is routed to the read path.
    pub fn decode(bytes: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "missing `type`".to_string())?;
        match ty {
            "hello" => Ok(Request::Hello {
                version: v
                    .get("version")
                    .and_then(|x| x.as_u64())
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| "missing `version`".to_string())?,
            }),
            "allocation" => Ok(Request::AllocationQuery),
            "ad" => Ok(Request::AdQuery {
                id: v
                    .get("id")
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| "missing `id`".to_string())?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "trace_dump" => Ok(Request::TraceDump),
            "shutdown" => Ok(Request::Shutdown),
            "replicate_poll" => {
                let u = |key: &str| {
                    v.get(key)
                        .and_then(|x| x.as_u64())
                        .ok_or_else(|| format!("missing `{key}`"))
                };
                Ok(Request::ReplicatePoll {
                    from_seq: u("from_seq")?,
                    max_frames: u("max_frames")?,
                })
            }
            "replicate_checkpoint" => {
                let u = |key: &str| {
                    v.get(key)
                        .and_then(|x| x.as_u64())
                        .ok_or_else(|| format!("missing `{key}`"))
                };
                Ok(Request::ReplicateCheckpoint {
                    offset: u("offset")?,
                    max_bytes: u("max_bytes")?,
                })
            }
            "promote" => Ok(Request::Promote),
            _ => match event_from_value(&v)? {
                OnlineEvent::RegretQuery => Ok(Request::RegretQuery),
                ev => Ok(Request::Mutate(ev)),
            },
        }
    }
}

/// Serving statistics as reported over the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsView {
    /// Mutating events applied (the published snapshot's epoch).
    pub epoch: u64,
    /// Admitted mutations durably logged (the WAL sequence number); 0 on
    /// a server running without a WAL.
    pub wal_seq: u64,
    /// Live campaigns.
    pub live_ads: usize,
    /// Seeds allocated in total.
    pub total_seeds: usize,
    /// RR sets held across live shards.
    pub total_rr_sets: usize,
    /// Allocator index + capital bytes.
    pub engine_memory_bytes: usize,
    /// Mutations currently queued or in flight at the writer.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth` over the server's lifetime.
    pub max_queue_depth: usize,
    /// Mutations admitted to the queue.
    pub accepted: u64,
    /// Mutations shed with `overloaded` (queue full).
    pub shed: u64,
    /// Admitted mutations the allocator rejected (unknown ids, malformed
    /// payload domains).
    pub rejected: u64,
    /// Frames that failed to decode as requests.
    pub bad_requests: u64,
    /// Currently open connections.
    pub connections: usize,
    /// This process's replication role.
    pub role: Role,
    /// Fencing epoch the process serves at (0 before any hand-off).
    pub fencing_epoch: u64,
    /// The leader's durable frontier as last observed: equal to
    /// `wal_seq` on a leader; on a follower, the `durable_seq` of the
    /// newest replication response it applied.
    pub leader_seq: u64,
    /// Mutations shed over the *process* lifetime (registry-backed):
    /// unlike `shed`, this survives a follower's promotion to leader
    /// within the same process, so lag-aware routers see accumulated
    /// leader pressure across hand-offs. Decodes leniently to `shed`
    /// against pre-v3 servers.
    pub shed_total: u64,
    /// Allocator rejections over the process lifetime
    /// (registry-backed; lenient to `rejected` pre-v3).
    pub rejected_total: u64,
}

impl StatsView {
    /// Replication lag in events: how far the local durable frontier
    /// trails the leader's (0 on a leader, and on a caught-up
    /// follower).
    pub fn lag(&self) -> u64 {
        self.leader_seq.saturating_sub(self.wal_seq)
    }
}

/// One decoded response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake reply: the server's protocol version and the two
    /// resume anchors a reconnecting client needs — the snapshot epoch
    /// and the WAL sequence number (count of admitted mutations durably
    /// logged; a client replaying an event log resumes right after its
    /// `wal_seq`-th non-query event).
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Snapshot epoch at handshake time.
        epoch: u64,
        /// WAL sequence number at handshake time (0 without a WAL).
        wal_seq: u64,
        /// The process's replication role (decodes leniently: a v1
        /// `hello` without the field is a leader).
        role: Role,
        /// Fencing epoch the process serves at (lenient: 0 when
        /// absent). A follower tracks the max it has seen and rejects
        /// replication frames from anything older.
        fencing_epoch: u64,
    },
    /// The mutation was admitted to the writer queue: it will be
    /// **processed** before the server exits (the drain guarantee).
    /// Admission is a delivery promise, not a validity one — the
    /// allocator may still reject the event when it is applied
    /// (duplicate arrival id, unknown top-up target); such rejections
    /// count into `stats.rejected`, and a client that needs
    /// confirmation queries the ad (or watches the epoch) afterwards.
    /// Exactly the same events are rejected by an in-process replay, so
    /// the bit-identity anchor is unaffected. `epoch` is the snapshot
    /// epoch visible at admission, not the one the event will produce.
    Accepted {
        /// Snapshot epoch at admission time.
        epoch: u64,
        /// Queue depth right after admission.
        queue_depth: usize,
    },
    /// The write queue is full: the mutation was **shed**, not queued.
    /// The client may retry; the server never blocks its accept loop on
    /// a slow writer.
    Overloaded {
        /// Queue depth observed when the mutation was shed.
        queue_depth: usize,
    },
    /// The server is draining and no longer admits mutations.
    ShuttingDown,
    /// The request was malformed (decode failure); nothing was admitted.
    Rejected {
        /// Human-readable decode failure.
        why: String,
    },
    /// Regret estimate from the latest snapshot.
    Regret {
        /// Snapshot epoch.
        epoch: u64,
        /// Live campaigns.
        live_ads: usize,
        /// Engine regret estimate.
        regret_estimate: f64,
    },
    /// The full standing allocation from the latest snapshot.
    Allocation(AllocationSnapshot),
    /// One ad's slice of the latest snapshot (`None`: not live).
    Ad {
        /// Snapshot epoch.
        epoch: u64,
        /// The ad's slice, if live.
        ad: Option<AdSnapshot>,
    },
    /// Serving statistics.
    Stats(StatsView),
    /// The observability registry dump: one JSON object (`counters`,
    /// `gauges`, `histograms`, `slow_events`) embedded verbatim. All
    /// values are integers and object order is preserved by the codec,
    /// so the dump round-trips byte-exactly.
    Metrics {
        /// The registry dump as rendered by `tirm_obs::dump_json`.
        json: String,
    },
    /// The flight-recorder lineage dump: Chrome trace-event JSON
    /// embedded verbatim (one object, all-integer `args`), exactly the
    /// `/trace.json` exposition payload.
    TraceDump {
        /// The dump as rendered by `tirm_obs::flight::dump_chrome_json`.
        json: String,
    },
    /// Replication stream payload: `frames[i]` is the event-JSON body
    /// of WAL frame `start_seq + i`. Frames are clamped to the leader's
    /// durable frontier, so everything here is fsynced on the leader's
    /// disk. An empty `frames` means "caught up; poll again later".
    ReplicateFrames {
        /// The leader's fencing epoch — stale-epoch frames are the
        /// deposed-leader signature and must be dropped by followers.
        fencing_epoch: u64,
        /// Sequence number of `frames[0]`.
        start_seq: u64,
        /// The leader's durable frontier at response time (lag =
        /// `durable_seq - (start_seq + frames.len())`).
        durable_seq: u64,
        /// Flight trace id of `frames[0]`: the follower records its
        /// `follower_append` / `follower_apply` stages under
        /// `trace_base + i`, joining the leader's timeline for the same
        /// mutation. Under positional trace numbering this is
        /// `start_seq + 1`, and a v3 response without the field decodes
        /// to exactly that, so propagation degrades to the derived ids
        /// rather than to no lineage.
        trace_base: u64,
        /// Raw event-JSON frame bodies, in sequence order.
        frames: Vec<String>,
    },
    /// The poll's `from_seq` precedes the oldest retained WAL segment
    /// (pruned after a checkpoint): the follower must bootstrap from
    /// the named checkpoint instead — **not** a gap error.
    ReplicateBootstrap {
        /// The leader's fencing epoch.
        fencing_epoch: u64,
        /// Cover point of the checkpoint to fetch; re-subscribe here.
        checkpoint_seq: u64,
        /// Size of the checkpoint image in bytes.
        total_bytes: u64,
    },
    /// One page of the bootstrap checkpoint image.
    ReplicateCheckpointChunk {
        /// Cover point of the checkpoint being paged.
        checkpoint_seq: u64,
        /// Byte offset of this chunk.
        offset: u64,
        /// Total size of the image (chunking ends at it).
        total_bytes: u64,
        /// Hex-encoded payload bytes (`2·max_bytes` chars ≤ frame cap).
        data_hex: String,
    },
    /// Typed redirect: this process is a follower; mutations (and
    /// shutdown) belong at the leader.
    NotLeader {
        /// Address of the leader this follower tails (best effort —
        /// may itself be stale during a hand-off).
        leader: String,
    },
    /// A follower acknowledging [`Request::Promote`]: it is tearing
    /// down the tail loop and will re-serve as leader.
    Promoting {
        /// The fencing epoch the promoted leader will serve at.
        fencing_epoch: u64,
    },
}

impl Response {
    /// Encodes the response as a JSON object (frame body).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello {
                version,
                epoch,
                wal_seq,
                role,
                fencing_epoch,
            } => format!(
                "{{\"type\":\"hello\",\"version\":{version},\"epoch\":{epoch},\
                 \"wal_seq\":{wal_seq},\"role\":\"{}\",\"fencing_epoch\":{fencing_epoch}}}",
                role.name()
            ),
            Response::Accepted { epoch, queue_depth } => {
                format!("{{\"type\":\"accepted\",\"epoch\":{epoch},\"queue_depth\":{queue_depth}}}")
            }
            Response::Overloaded { queue_depth } => {
                format!("{{\"type\":\"overloaded\",\"queue_depth\":{queue_depth}}}")
            }
            Response::ShuttingDown => "{\"type\":\"shutting_down\"}".to_string(),
            Response::Rejected { why } => format!(
                "{{\"type\":\"rejected\",\"why\":{}}}",
                serde_json::to_string(why).expect("string serialization is infallible")
            ),
            Response::Regret {
                epoch,
                live_ads,
                regret_estimate,
            } => format!(
                "{{\"type\":\"regret\",\"epoch\":{epoch},\"live_ads\":{live_ads},\
                 \"regret_estimate\":{regret_estimate}}}"
            ),
            Response::Allocation(snap) => {
                format!(
                    "{{\"type\":\"allocation\",\"snapshot\":{}}}",
                    snap.to_json()
                )
            }
            Response::Ad { epoch, ad } => {
                let ad_json = match ad {
                    None => "null".to_string(),
                    Some(a) => a.to_json(),
                };
                format!("{{\"type\":\"ad\",\"epoch\":{epoch},\"ad\":{ad_json}}}")
            }
            Response::Stats(s) => format!(
                "{{\"type\":\"stats\",\"epoch\":{},\"wal_seq\":{},\"live_ads\":{},\
                 \"total_seeds\":{},\"total_rr_sets\":{},\"engine_memory_bytes\":{},\
                 \"queue_depth\":{},\"max_queue_depth\":{},\"accepted\":{},\"shed\":{},\
                 \"rejected\":{},\"bad_requests\":{},\"connections\":{},\"role\":\"{}\",\
                 \"fencing_epoch\":{},\"leader_seq\":{},\"shed_total\":{},\
                 \"rejected_total\":{}}}",
                s.epoch,
                s.wal_seq,
                s.live_ads,
                s.total_seeds,
                s.total_rr_sets,
                s.engine_memory_bytes,
                s.queue_depth,
                s.max_queue_depth,
                s.accepted,
                s.shed,
                s.rejected,
                s.bad_requests,
                s.connections,
                s.role.name(),
                s.fencing_epoch,
                s.leader_seq,
                s.shed_total,
                s.rejected_total
            ),
            Response::Metrics { json } => {
                // The dump is already a JSON object: embed verbatim.
                format!("{{\"type\":\"metrics\",\"metrics\":{json}}}")
            }
            Response::TraceDump { json } => {
                // The dump is already a JSON object: embed verbatim.
                format!("{{\"type\":\"trace_dump\",\"trace\":{json}}}")
            }
            Response::ReplicateFrames {
                fencing_epoch,
                start_seq,
                durable_seq,
                trace_base,
                frames,
            } => {
                // Frame bodies are event-JSON objects: embed verbatim.
                let mut out = format!(
                    "{{\"type\":\"replicate_frames\",\"fencing_epoch\":{fencing_epoch},\
                     \"start_seq\":{start_seq},\"durable_seq\":{durable_seq},\
                     \"trace_base\":{trace_base},\"frames\":["
                );
                for (i, frame) in frames.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(frame);
                }
                out.push_str("]}");
                out
            }
            Response::ReplicateBootstrap {
                fencing_epoch,
                checkpoint_seq,
                total_bytes,
            } => format!(
                "{{\"type\":\"replicate_bootstrap\",\"fencing_epoch\":{fencing_epoch},\
                 \"checkpoint_seq\":{checkpoint_seq},\"total_bytes\":{total_bytes}}}"
            ),
            Response::ReplicateCheckpointChunk {
                checkpoint_seq,
                offset,
                total_bytes,
                data_hex,
            } => format!(
                "{{\"type\":\"replicate_checkpoint_chunk\",\"checkpoint_seq\":{checkpoint_seq},\
                 \"offset\":{offset},\"total_bytes\":{total_bytes},\"data_hex\":\"{data_hex}\"}}"
            ),
            Response::NotLeader { leader } => format!(
                "{{\"type\":\"not_leader\",\"leader\":{}}}",
                serde_json::to_string(leader).expect("string serialization is infallible")
            ),
            Response::Promoting { fencing_epoch } => {
                format!("{{\"type\":\"promoting\",\"fencing_epoch\":{fencing_epoch}}}")
            }
        }
    }

    /// Decodes a frame body.
    pub fn decode(bytes: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(|x| x.as_str())
            .ok_or_else(|| "missing `type`".to_string())?;
        let u = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing `{key}`"))
        };
        let f = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing `{key}`"))
        };
        match ty {
            "hello" => Ok(Response::Hello {
                version: u("version")?
                    .try_into()
                    .map_err(|_| "version out of range".to_string())?,
                epoch: u("epoch")?,
                wal_seq: u("wal_seq")?,
                // Lenient: a v1 hello has neither field (single-process
                // leader at epoch 0).
                role: role_or_default(&v)?,
                fencing_epoch: u("fencing_epoch").unwrap_or(0),
            }),
            "accepted" => Ok(Response::Accepted {
                epoch: u("epoch")?,
                queue_depth: u("queue_depth")? as usize,
            }),
            "overloaded" => Ok(Response::Overloaded {
                queue_depth: u("queue_depth")? as usize,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "rejected" => Ok(Response::Rejected {
                why: v
                    .get("why")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| "missing `why`".to_string())?
                    .to_string(),
            }),
            "regret" => Ok(Response::Regret {
                epoch: u("epoch")?,
                live_ads: u("live_ads")? as usize,
                regret_estimate: f("regret_estimate")?,
            }),
            "allocation" => {
                let snap = v
                    .get("snapshot")
                    .ok_or_else(|| "missing `snapshot`".to_string())?;
                Ok(Response::Allocation(snapshot_from_value(snap)?))
            }
            "ad" => {
                let ad = match v.get("ad") {
                    None => return Err("missing `ad`".to_string()),
                    Some(a) if a.is_null() => None,
                    Some(a) => Some(ad_from_value(a)?),
                };
                Ok(Response::Ad {
                    epoch: u("epoch")?,
                    ad,
                })
            }
            "metrics" => {
                let dump = v
                    .get("metrics")
                    .ok_or_else(|| "missing `metrics`".to_string())?;
                if dump.as_object().is_none() {
                    return Err("`metrics` is not an object".to_string());
                }
                Ok(Response::Metrics {
                    json: serde_json::to_string(dump).map_err(|e| e.to_string())?,
                })
            }
            "trace_dump" => {
                let dump = v
                    .get("trace")
                    .ok_or_else(|| "missing `trace`".to_string())?;
                if dump.as_object().is_none() {
                    return Err("`trace` is not an object".to_string());
                }
                Ok(Response::TraceDump {
                    json: serde_json::to_string(dump).map_err(|e| e.to_string())?,
                })
            }
            "stats" => {
                let wal_seq = u("wal_seq")?;
                let shed = u("shed")?;
                let rejected = u("rejected")?;
                Ok(Response::Stats(StatsView {
                    epoch: u("epoch")?,
                    wal_seq,
                    live_ads: u("live_ads")? as usize,
                    total_seeds: u("total_seeds")? as usize,
                    total_rr_sets: u("total_rr_sets")? as usize,
                    engine_memory_bytes: u("engine_memory_bytes")? as usize,
                    queue_depth: u("queue_depth")? as usize,
                    max_queue_depth: u("max_queue_depth")? as usize,
                    accepted: u("accepted")?,
                    shed,
                    rejected,
                    bad_requests: u("bad_requests")?,
                    connections: u("connections")? as usize,
                    // Lenient v1 defaults: a leader at fencing epoch 0,
                    // with its own frontier as the leader frontier.
                    role: role_or_default(&v)?,
                    fencing_epoch: u("fencing_epoch").unwrap_or(0),
                    leader_seq: u("leader_seq").unwrap_or(wal_seq),
                    // Lenient pre-v3 defaults: one serve-run per process,
                    // so the per-run counters are the lifetime ones.
                    shed_total: u("shed_total").unwrap_or(shed),
                    rejected_total: u("rejected_total").unwrap_or(rejected),
                }))
            }
            "replicate_frames" => {
                let frames = v
                    .get("frames")
                    .and_then(|x| x.as_array())
                    .ok_or_else(|| "missing `frames`".to_string())?
                    .iter()
                    .map(|frame| {
                        if frame.as_object().is_some() {
                            serde_json::to_string(frame).map_err(|e| e.to_string())
                        } else {
                            Err("frame body is not an object".to_string())
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let start_seq = u("start_seq")?;
                Ok(Response::ReplicateFrames {
                    fencing_epoch: u("fencing_epoch")?,
                    start_seq,
                    durable_seq: u("durable_seq")?,
                    // Lenient v3 default: positional trace numbering
                    // (trace = WAL position + 1).
                    trace_base: u("trace_base").unwrap_or(start_seq + 1),
                    frames,
                })
            }
            "replicate_bootstrap" => Ok(Response::ReplicateBootstrap {
                fencing_epoch: u("fencing_epoch")?,
                checkpoint_seq: u("checkpoint_seq")?,
                total_bytes: u("total_bytes")?,
            }),
            "replicate_checkpoint_chunk" => Ok(Response::ReplicateCheckpointChunk {
                checkpoint_seq: u("checkpoint_seq")?,
                offset: u("offset")?,
                total_bytes: u("total_bytes")?,
                data_hex: v
                    .get("data_hex")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| "missing `data_hex`".to_string())?
                    .to_string(),
            }),
            "not_leader" => Ok(Response::NotLeader {
                leader: v
                    .get("leader")
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| "missing `leader`".to_string())?
                    .to_string(),
            }),
            "promoting" => Ok(Response::Promoting {
                fencing_epoch: u("fencing_epoch")?,
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// Decodes an optional `role` field (absent ⇒ [`Role::Leader`], the v1
/// single-process shape); a present-but-unknown role is an error.
fn role_or_default(v: &Value) -> Result<Role, String> {
    match v.get("role") {
        None => Ok(Role::Leader),
        Some(r) => {
            let name = r.as_str().ok_or_else(|| "non-string `role`".to_string())?;
            Role::parse(name).ok_or_else(|| format!("unknown role {name:?}"))
        }
    }
}

/// Client-side connection policy, mirrored against the server's
/// `ServerConfig`: handshake behavior and the bounded
/// reconnect-with-backoff schedule a client applies when the server
/// restarts underneath it (the crash-recovery bench mode).
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Disable Nagle's algorithm (request/response pipelining).
    pub nodelay: bool,
    /// Open each connection with a `hello` exchange and fail fast on
    /// protocol-version skew.
    pub handshake: bool,
    /// Bounded reconnect attempts after a lost connection. `0` fails
    /// fast (the pre-recovery behavior); kill/restart bench modes use a
    /// budget that covers the server's recovery time.
    pub reconnect_attempts: u32,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Cap on the per-attempt backoff.
    pub backoff_max: Duration,
    /// Deterministic backoff jitter, keyed by a per-client seed:
    /// `Some(seed)` scales each attempt's backoff by a factor in
    /// `[0.5, 1.0)` derived from `(seed, attempt)`, so a fleet of
    /// clients that lost the same server re-dials spread out instead of
    /// in lockstep — while any single client's schedule stays exactly
    /// reproducible. `None` keeps the unjittered schedule (tests that
    /// pin exact sleeps).
    pub jitter: Option<u64>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            nodelay: true,
            handshake: true,
            reconnect_attempts: 0,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter: None,
        }
    }
}

impl ClientOptions {
    /// Options with a reconnect budget of `attempts` (exponential
    /// backoff, default base/cap).
    pub fn reconnecting(attempts: u32) -> Self {
        ClientOptions {
            reconnect_attempts: attempts,
            ..ClientOptions::default()
        }
    }

    /// [`reconnecting`](Self::reconnecting) with per-client backoff
    /// jitter derived from `seed` — what concurrent load-generator
    /// clients use so a restart doesn't see them re-dial in lockstep.
    pub fn reconnecting_jittered(attempts: u32, seed: u64) -> Self {
        ClientOptions {
            reconnect_attempts: attempts,
            jitter: Some(seed),
            ..ClientOptions::default()
        }
    }

    /// Backoff before reconnect attempt `attempt` (0-based):
    /// `base · 2^attempt`, saturating at the cap, then scaled by the
    /// deterministic per-`(seed, attempt)` jitter factor when
    /// [`jitter`](Self::jitter) is set.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        let full = self
            .backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max);
        match self.jitter {
            None => full,
            Some(seed) => {
                // splitmix64 over (seed, attempt): top 53 bits → a
                // uniform factor in [0.5, 1.0).
                let mut z = seed ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                full.mul_f64(0.5 + unit / 2.0)
            }
        }
    }
}

/// Hex-encodes bytes (checkpoint pages on the wire — the frame body is
/// JSON, so binary payloads travel as hex strings).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes a [`hex_encode`] string.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err("odd-length hex string".to_string());
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {:?}", pair[0] as char))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {:?}", pair[1] as char))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// Decodes one ad object of an allocation payload.
fn ad_from_value(v: &Value) -> Result<AdSnapshot, String> {
    let seeds = v
        .get("seeds")
        .and_then(|x| x.as_array())
        .ok_or_else(|| "missing `seeds`".to_string())?
        .iter()
        .map(|s| s.as_u64().map(|x| x as u32))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| "non-integer seed".to_string())?;
    let f = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("missing `{key}`"))
    };
    Ok(AdSnapshot {
        id: v
            .get("id")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| "missing `id`".to_string())?,
        budget: f("budget")?,
        cpe: f("cpe")?,
        seeds,
        revenue_est: f("revenue_est")?,
    })
}

/// Decodes an [`AllocationSnapshot::to_json`] payload. Lifetime counters
/// are not on the wire ([`AllocationSnapshot::same_allocation`] ignores
/// them), so `stats` decodes to zeros.
pub fn snapshot_from_value(v: &Value) -> Result<AllocationSnapshot, String> {
    let u = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let f = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let ads = v
        .get("ads")
        .and_then(|x| x.as_array())
        .ok_or_else(|| "missing `ads`".to_string())?
        .iter()
        .map(ad_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(AllocationSnapshot {
        epoch: u("epoch")?,
        kappa: u("kappa")? as u32,
        lambda: f("lambda")?,
        ads,
        regret_estimate: f("regret_estimate")?,
        total_rr_sets: u("total_rr_sets")? as usize,
        engine_memory_bytes: u("engine_memory_bytes")? as usize,
        stats: Default::default(),
    })
}

/// Writes one frame (length prefix + body).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame too large to send");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, blocking. `Ok(None)` on clean EOF before the first
/// header byte; errors on truncation mid-frame or an oversized length
/// prefix.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    read_frame_polling(r, || false)
}

/// [`read_frame`] with a cancellation probe for sockets carrying a read
/// timeout: on `WouldBlock`/`TimedOut` with **no bytes buffered yet**,
/// `should_stop()` decides between waiting for the next request
/// (`false`) and a clean `Ok(None)` exit (`true`). A *partial* frame is
/// never abandoned at the first timeout — the peer gets a grace period
/// of further polls to finish it (so a slow writer isn't corrupted by
/// shutdown racing its frame), after which truncation is an error.
pub fn read_frame_polling(
    r: &mut impl Read,
    should_stop: impl Fn() -> bool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match read_exact_polling(r, &mut header, &should_stop, true)? {
        ReadOutcome::CleanExit => return Ok(None),
        ReadOutcome::Done => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    match read_exact_polling(r, &mut body, &should_stop, false)? {
        ReadOutcome::CleanExit => unreachable!("mid-frame reads never exit cleanly"),
        ReadOutcome::Done => Ok(Some(body)),
    }
}

enum ReadOutcome {
    Done,
    CleanExit,
}

/// Number of timeout polls a peer gets to finish a frame it started
/// after shutdown was requested. With the default 25 ms poll interval
/// this is a ~2 s grace period.
const PARTIAL_FRAME_GRACE_POLLS: u32 = 80;

fn read_exact_polling(
    r: &mut impl Read,
    buf: &mut [u8],
    should_stop: &impl Fn() -> bool,
    eof_is_clean: bool,
) -> std::io::Result<ReadOutcome> {
    let mut filled = 0usize;
    let mut stopped_polls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if eof_is_clean && filled == 0 {
                    Ok(ReadOutcome::CleanExit)
                } else {
                    Err(ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if should_stop() {
                    if filled == 0 && eof_is_clean {
                        return Ok(ReadOutcome::CleanExit);
                    }
                    stopped_polls += 1;
                    if stopped_polls > PARTIAL_FRAME_GRACE_POLLS {
                        return Err(ErrorKind::TimedOut.into());
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_topics::TopicDist;

    fn arrival() -> OnlineEvent {
        OnlineEvent::AdArrival {
            id: 7,
            budget: 12.5,
            cpe: 1.25,
            topics: TopicDist::concentrated(4, 1, 0.91),
            ctp: 0.03,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Mutate(arrival()),
            Request::Mutate(OnlineEvent::BudgetTopUp { id: 3, amount: 2.5 }),
            Request::Mutate(OnlineEvent::AdDeparture { id: 3 }),
            Request::Mutate(OnlineEvent::Reallocate),
            Request::RegretQuery,
            Request::AllocationQuery,
            Request::AdQuery { id: 9 },
            Request::Stats,
            Request::Metrics,
            Request::TraceDump,
            Request::Shutdown,
            Request::ReplicatePoll {
                from_seq: 42,
                max_frames: 256,
            },
            Request::ReplicateCheckpoint {
                offset: 1 << 20,
                max_bytes: 65536,
            },
            Request::Promote,
        ];
        for req in reqs {
            let text = req.encode();
            let back = Request::decode(text.as_bytes()).unwrap();
            assert_eq!(back, req, "{text}");
        }
    }

    #[test]
    fn mutation_requests_are_event_log_lines() {
        // The wire vocabulary IS the log vocabulary: a log line without
        // its `at` field decodes as the same request.
        let ev = arrival();
        let log_line = format!("{{{}}}", event_json_fields(&ev));
        assert_eq!(
            Request::decode(log_line.as_bytes()).unwrap(),
            Request::Mutate(ev)
        );
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(Request::decode(b"not json").is_err());
        assert!(Request::decode(b"{\"type\":\"martian\"}").is_err());
        assert!(Request::decode(b"{\"budget\":5}").is_err());
        assert!(
            Request::decode(b"{\"type\":\"ad\"}").is_err(),
            "ad needs id"
        );
        assert!(
            Request::decode(b"{\"type\":\"hello\"}").is_err(),
            "hello needs version"
        );
        assert!(Request::decode(&[0xff, 0xfe]).is_err(), "not UTF-8");
    }

    #[test]
    fn responses_round_trip() {
        let snap = AllocationSnapshot {
            epoch: 5,
            kappa: 2,
            lambda: 0.5,
            ads: vec![AdSnapshot {
                id: 7,
                budget: 12.5,
                cpe: 1.25,
                seeds: vec![3, 1, 4],
                revenue_est: 11.0625,
            }],
            regret_estimate: 1.4375,
            total_rr_sets: 1000,
            engine_memory_bytes: 4096,
            stats: Default::default(),
        };
        let resps = [
            Response::Hello {
                version: PROTOCOL_VERSION,
                epoch: 12,
                wal_seq: 9,
                role: Role::Follower,
                fencing_epoch: 3,
            },
            Response::Accepted {
                epoch: 4,
                queue_depth: 2,
            },
            Response::Overloaded { queue_depth: 64 },
            Response::ShuttingDown,
            Response::Rejected {
                why: "bad \"quote\" and\nnewline".to_string(),
            },
            Response::Regret {
                epoch: 5,
                live_ads: 1,
                regret_estimate: 1.4375,
            },
            Response::Allocation(snap.clone()),
            Response::Ad {
                epoch: 5,
                ad: Some(snap.ads[0].clone()),
            },
            Response::Ad { epoch: 5, ad: None },
            Response::Stats(StatsView {
                epoch: 5,
                wal_seq: 4,
                live_ads: 1,
                total_seeds: 3,
                total_rr_sets: 1000,
                engine_memory_bytes: 4096,
                queue_depth: 1,
                max_queue_depth: 7,
                accepted: 40,
                shed: 2,
                rejected: 1,
                bad_requests: 3,
                connections: 5,
                role: Role::Follower,
                fencing_epoch: 2,
                leader_seq: 11,
                shed_total: 6,
                rejected_total: 2,
            }),
            Response::Metrics {
                json: "{\"counters\":{\"tirm_server_shed_total\":2},\"gauges\":{},\
                       \"histograms\":{},\"slow_events\":[]}"
                    .to_string(),
            },
            Response::TraceDump {
                json: "{\"traceEvents\":[{\"name\":\"apply\",\"cat\":\"lineage\",\
                       \"ph\":\"X\",\"ts\":1.5,\"dur\":2.25,\"pid\":1,\"tid\":0,\
                       \"args\":{\"trace\":41}}],\"displayTimeUnit\":\"ns\"}"
                    .to_string(),
            },
            Response::ReplicateFrames {
                fencing_epoch: 1,
                start_seq: 40,
                durable_seq: 44,
                trace_base: 41,
                frames: vec![
                    "{\"type\":\"topup\",\"id\":3,\"amount\":2.5}".to_string(),
                    "{\"type\":\"departure\",\"id\":3}".to_string(),
                ],
            },
            Response::ReplicateFrames {
                fencing_epoch: 0,
                start_seq: 44,
                durable_seq: 44,
                trace_base: 45,
                frames: vec![],
            },
            Response::ReplicateBootstrap {
                fencing_epoch: 2,
                checkpoint_seq: 128,
                total_bytes: 9000,
            },
            Response::ReplicateCheckpointChunk {
                checkpoint_seq: 128,
                offset: 4096,
                total_bytes: 9000,
                data_hex: hex_encode(&[0xde, 0xad, 0xbe, 0xef]),
            },
            Response::NotLeader {
                leader: "127.0.0.1:7401".to_string(),
            },
            Response::Promoting { fencing_epoch: 4 },
        ];
        for resp in resps {
            let text = resp.encode();
            let back = Response::decode(text.as_bytes()).unwrap();
            assert_eq!(back, resp, "{text}");
        }
    }

    #[test]
    fn metrics_response_embeds_the_dump_verbatim() {
        // The registry dump rides the frame as a JSON object, not an
        // escaped string: decode must hand back the same bytes.
        let json = "{\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":7}}".to_string();
        let text = Response::Metrics { json: json.clone() }.encode();
        assert!(
            text.contains("\"metrics\":{\"counters\""),
            "dump must be embedded as an object: {text}"
        );
        match Response::decode(text.as_bytes()).unwrap() {
            Response::Metrics { json: back } => assert_eq!(back, json),
            other => panic!("wrong response: {other:?}"),
        }
        // A metrics payload that is not an object is a protocol error.
        assert!(Response::decode(b"{\"type\":\"metrics\",\"metrics\":3}").is_err());
        assert!(Response::decode(b"{\"type\":\"metrics\"}").is_err());
    }

    #[test]
    fn trace_dump_embeds_the_chrome_json_verbatim() {
        let json = "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\",\
                    \"otherData\":{\"pid\":7,\"records\":0,\"overwritten\":0,\"dropped\":0}}"
            .to_string();
        let text = Response::TraceDump { json: json.clone() }.encode();
        assert!(
            text.contains("\"trace\":{\"traceEvents\""),
            "dump must be embedded as an object: {text}"
        );
        match Response::decode(text.as_bytes()).unwrap() {
            Response::TraceDump { json: back } => assert_eq!(back, json),
            other => panic!("wrong response: {other:?}"),
        }
        assert!(Response::decode(b"{\"type\":\"trace_dump\",\"trace\":[]}").is_err());
        assert!(Response::decode(b"{\"type\":\"trace_dump\"}").is_err());
    }

    #[test]
    fn v3_replicate_frames_decode_with_positional_trace_base() {
        // A v3 leader ships no trace_base; the follower derives the
        // positional numbering (trace = WAL position + 1) instead of
        // losing lineage.
        let v3 = b"{\"type\":\"replicate_frames\",\"fencing_epoch\":2,\
            \"start_seq\":40,\"durable_seq\":44,\
            \"frames\":[{\"type\":\"departure\",\"id\":3}]}";
        match Response::decode(v3).unwrap() {
            Response::ReplicateFrames {
                trace_base,
                start_seq,
                ..
            } => {
                assert_eq!(start_seq, 40);
                assert_eq!(trace_base, 41);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn allocation_payload_is_bit_exact() {
        // The equivalence contract extends over the wire: floats decode
        // to the same bits they were encoded from.
        let snap = AllocationSnapshot {
            epoch: 1,
            kappa: 1,
            lambda: 0.1 + 0.2, // a value with no short decimal form
            ads: vec![AdSnapshot {
                id: 1,
                budget: 1.0 / 3.0,
                cpe: 2.0 / 7.0,
                seeds: vec![42],
                revenue_est: 0.123_456_789_012_345_67,
            }],
            regret_estimate: std::f64::consts::PI,
            total_rr_sets: 0,
            engine_memory_bytes: 0,
            stats: Default::default(),
        };
        let text = Response::Allocation(snap.clone()).encode();
        match Response::decode(text.as_bytes()).unwrap() {
            Response::Allocation(back) => {
                assert!(back.same_allocation(&snap), "wire round trip drifted");
                assert_eq!(back.lambda.to_bits(), snap.lambda.to_bits());
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Oversized announced length is refused before allocation.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());

        // Truncation mid-frame is an error, not silence.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"hello").unwrap();
        truncated.truncate(6);
        let mut r = &truncated[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let opts = ClientOptions::reconnecting(8);
        assert_eq!(opts.backoff(0), Duration::from_millis(50));
        assert_eq!(opts.backoff(1), Duration::from_millis(100));
        assert_eq!(opts.backoff(2), Duration::from_millis(200));
        assert_eq!(opts.backoff(10), opts.backoff_max, "capped");
        assert_eq!(opts.backoff(40), opts.backoff_max, "no shift overflow");
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_declusters() {
        let a = ClientOptions::reconnecting_jittered(8, 0xa11ce);
        let b = ClientOptions::reconnecting_jittered(8, 0xb0b);
        let plain = ClientOptions::reconnecting(8);
        for attempt in 0..12 {
            let full = plain.backoff(attempt);
            for opts in [&a, &b] {
                let j = opts.backoff(attempt);
                assert!(j <= full, "jitter never lengthens the backoff");
                assert!(
                    j >= full.mul_f64(0.5),
                    "jitter keeps at least half the backoff"
                );
                // Derived from (seed, attempt) only: same inputs, same
                // schedule.
                assert_eq!(j, opts.backoff(attempt));
            }
        }
        // Distinct client seeds de-cluster: the schedules must differ
        // somewhere (lockstep re-dials are the bug this fixes).
        assert!(
            (0..12).any(|i| a.backoff(i) != b.backoff(i)),
            "two seeds produced identical schedules"
        );
    }

    #[test]
    fn v1_hello_and_stats_decode_leniently_as_a_leader() {
        // A v1 peer's frames carry neither role nor fencing fields.
        let hello = b"{\"type\":\"hello\",\"version\":1,\"epoch\":4,\"wal_seq\":7}";
        match Response::decode(hello).unwrap() {
            Response::Hello {
                role,
                fencing_epoch,
                wal_seq,
                ..
            } => {
                assert_eq!(role, Role::Leader);
                assert_eq!(fencing_epoch, 0);
                assert_eq!(wal_seq, 7);
            }
            other => panic!("wrong response: {other:?}"),
        }
        let stats = b"{\"type\":\"stats\",\"epoch\":4,\"wal_seq\":7,\"live_ads\":1,\
            \"total_seeds\":2,\"total_rr_sets\":3,\"engine_memory_bytes\":4,\
            \"queue_depth\":0,\"max_queue_depth\":1,\"accepted\":5,\"shed\":0,\
            \"rejected\":0,\"bad_requests\":0,\"connections\":1}";
        match Response::decode(stats).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.role, Role::Leader);
                assert_eq!(s.fencing_epoch, 0);
                assert_eq!(s.leader_seq, s.wal_seq, "own frontier is the leader's");
                assert_eq!(s.lag(), 0);
            }
            other => panic!("wrong response: {other:?}"),
        }
        // An unknown role is a decode error, not a silent default.
        let bad = b"{\"type\":\"hello\",\"version\":2,\"epoch\":0,\"wal_seq\":0,\
            \"role\":\"observer\"}";
        assert!(Response::decode(bad).is_err());
    }

    #[test]
    fn follower_lag_is_leader_minus_local_frontier() {
        let s = StatsView {
            wal_seq: 90,
            leader_seq: 100,
            role: Role::Follower,
            ..StatsView::default()
        };
        assert_eq!(s.lag(), 10);
        let caught_up = StatsView {
            wal_seq: 100,
            leader_seq: 90, // stale leader observation
            ..StatsView::default()
        };
        assert_eq!(caught_up.lag(), 0, "saturates, never underflows");
    }

    #[test]
    fn replicate_frames_bodies_decode_as_events() {
        // The stream payload is the event vocabulary verbatim: each
        // frame body decodes through the shared codec.
        let resp = Response::ReplicateFrames {
            fencing_epoch: 1,
            start_seq: 5,
            durable_seq: 7,
            trace_base: 6,
            frames: vec![
                format!("{{{}}}", event_json_fields(&arrival())),
                "{\"type\":\"departure\",\"id\":7}".to_string(),
            ],
        };
        let text = resp.encode();
        match Response::decode(text.as_bytes()).unwrap() {
            Response::ReplicateFrames { frames, .. } => {
                assert_eq!(frames.len(), 2);
                let ev = Request::decode(frames[0].as_bytes()).unwrap();
                assert_eq!(ev, Request::Mutate(arrival()));
                let ev = Request::decode(frames[1].as_bytes()).unwrap();
                assert_eq!(ev, Request::Mutate(OnlineEvent::AdDeparture { id: 7 }));
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(hex_decode(&hex).unwrap(), bytes);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "bad digit");
    }

    #[test]
    fn roles_round_trip_names() {
        for role in [Role::Leader, Role::Follower] {
            assert_eq!(Role::parse(role.name()), Some(role));
        }
        assert_eq!(Role::parse("observer"), None);
        assert_eq!(Role::default(), Role::Leader);
    }
}
