//! Ad topic distributions `γ_i` over the latent topic space.

/// Errors from constructing a [`TopicDist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopicError {
    /// The weight vector was empty.
    Empty,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// Weights do not sum to 1 within tolerance.
    NotNormalized,
}

impl std::fmt::Display for TopicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopicError::Empty => write!(f, "topic distribution must have at least one topic"),
            TopicError::InvalidWeight => write!(f, "topic weights must be finite and >= 0"),
            TopicError::NotNormalized => write!(f, "topic weights must sum to 1"),
        }
    }
}

impl std::error::Error for TopicError {}

/// A probability distribution over `K` latent topics: `γ^z_i = Pr(Z=z | i)`
/// with `Σ_z γ^z_i = 1` (§3 of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct TopicDist {
    weights: Vec<f32>,
}

impl TopicDist {
    /// Validates and wraps a weight vector. Weights must be non-negative,
    /// finite and sum to 1 within `1e-4`.
    pub fn new(weights: Vec<f32>) -> Result<Self, TopicError> {
        if weights.is_empty() {
            return Err(TopicError::Empty);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(TopicError::InvalidWeight);
        }
        let sum: f32 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-4 {
            return Err(TopicError::NotNormalized);
        }
        Ok(TopicDist { weights })
    }

    /// Uniform distribution over `k` topics.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0);
        TopicDist {
            weights: vec![1.0 / k as f32; k],
        }
    }

    /// Point mass on a single topic (`k = 1` collapses TIC to plain IC).
    pub fn single(k: usize, topic: usize) -> Self {
        assert!(topic < k);
        let mut weights = vec![0.0; k];
        weights[topic] = 1.0;
        TopicDist { weights }
    }

    /// The paper's §6 shape: mass `main_mass` on `main_topic`, the remainder
    /// spread evenly over the other topics (0.91 / 0.01 with `K = 10`).
    pub fn concentrated(k: usize, main_topic: usize, main_mass: f32) -> Self {
        assert!(k >= 1 && main_topic < k);
        assert!((0.0..=1.0).contains(&main_mass));
        if k == 1 {
            return TopicDist::single(1, 0);
        }
        let rest = (1.0 - main_mass) / (k as f32 - 1.0);
        let mut weights = vec![rest; k];
        weights[main_topic] = main_mass;
        TopicDist { weights }
    }

    /// Number of topics `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Weight `γ^z` of topic `z`.
    #[inline]
    pub fn weight(&self, z: usize) -> f32 {
        self.weights[z]
    }

    /// Raw weight slice.
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The topic carrying the largest mass.
    pub fn dominant_topic(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(z, _)| z)
            .unwrap()
    }

    /// Cosine similarity between two distributions — used by workloads to
    /// reason about ad competition in topic space (§1: "ads which are close
    /// in a topic space will naturally compete").
    pub fn cosine_similarity(&self, other: &TopicDist) -> f32 {
        assert_eq!(self.k(), other.k(), "topic spaces must match");
        let dot: f32 = self
            .weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| a * b)
            .sum();
        let na: f32 = self.weights.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = other.weights.iter().map(|b| b * b).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(TopicDist::new(vec![]), Err(TopicError::Empty));
        assert_eq!(
            TopicDist::new(vec![-0.5, 1.5]),
            Err(TopicError::InvalidWeight)
        );
        assert_eq!(
            TopicDist::new(vec![0.3, 0.3]),
            Err(TopicError::NotNormalized)
        );
        assert_eq!(
            TopicDist::new(vec![f32::NAN, 1.0]),
            Err(TopicError::InvalidWeight)
        );
    }

    #[test]
    fn paper_concentration_shape() {
        let d = TopicDist::concentrated(10, 3, 0.91);
        assert_eq!(d.k(), 10);
        assert!((d.weight(3) - 0.91).abs() < 1e-6);
        assert!((d.weight(0) - 0.01).abs() < 1e-6);
        assert!((d.weights().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(d.dominant_topic(), 3);
    }

    #[test]
    fn uniform_and_single() {
        let u = TopicDist::uniform(4);
        assert!((u.weight(2) - 0.25).abs() < 1e-7);
        let s = TopicDist::single(5, 4);
        assert_eq!(s.weight(4), 1.0);
        assert_eq!(s.weight(0), 0.0);
        assert_eq!(s.dominant_topic(), 4);
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = TopicDist::single(3, 0);
        let b = TopicDist::single(3, 1);
        assert!(a.cosine_similarity(&b).abs() < 1e-7);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-6);
        let c = TopicDist::concentrated(3, 0, 0.9);
        assert!(a.cosine_similarity(&c) > 0.9);
    }
}
