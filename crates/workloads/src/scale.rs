//! Environment-driven experiment scaling.
//!
//! The paper ran on a 65 GB Xeon server; this harness must also run on a
//! laptop-class container. Every dataset has a *default* scale chosen so
//! the full table/figure sweep completes in minutes; setting `TIRM_SCALE`
//! (a multiplier, e.g. `5.0` to approach paper-sized graphs) raises it.

/// Scaling configuration resolved from the environment once per process.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Multiplier applied to each dataset's default node count.
    pub scale: f64,
    /// Monte-Carlo cascades per evaluation (paper: 10 000).
    pub eval_runs: usize,
    /// Worker threads for evaluation.
    pub threads: usize,
}

impl ScaleConfig {
    /// Reads `TIRM_SCALE`, `TIRM_EVAL_RUNS`, `TIRM_THREADS` with defaults
    /// `1.0`, `10_000`, available parallelism.
    pub fn from_env() -> Self {
        ScaleConfig {
            scale: env_f64("TIRM_SCALE", 1.0).max(0.001),
            eval_runs: env_usize("TIRM_EVAL_RUNS", 10_000).max(10),
            threads: env_usize("TIRM_THREADS", default_threads()).max(1),
        }
    }

    /// Applies the multiplier to a default node count, clamping to ≥ 64.
    pub fn nodes(&self, default_nodes: usize) -> usize {
        ((default_nodes as f64 * self.scale) as usize).max(64)
    }
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            scale: 1.0,
            eval_runs: 10_000,
            threads: default_threads(),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ScaleConfig::default();
        assert_eq!(c.eval_runs, 10_000);
        assert!(c.threads >= 1);
        assert_eq!(c.nodes(1000), 1000);
    }

    #[test]
    fn nodes_scaling_clamps() {
        let c = ScaleConfig {
            scale: 0.001,
            eval_runs: 100,
            threads: 1,
        };
        assert_eq!(c.nodes(10_000), 64);
        let big = ScaleConfig { scale: 2.0, ..c };
        assert_eq!(big.nodes(10_000), 20_000);
    }
}
