//! The durability layer: a segmented write-ahead log of admitted
//! mutations plus allocator checkpoints, and the recovery scan that
//! rebuilds a server from "newest usable checkpoint + log tail".
//!
//! # Log format
//!
//! The log lives in one directory (the server's `state_dir`) holding
//! two kinds of files:
//!
//! * **Segments** `wal-{start_seq:020}.seg` — a 20-byte header (magic
//!   `TIRMWAL0`, format version, the sequence number of the segment's
//!   first frame) followed by frames: a 4-byte little-endian length
//!   prefix and that many bytes of event JSON — exactly the object
//!   [`tirm_workloads::events::event_json_fields`] produces, i.e. the
//!   same codec as wire mutations and event-log lines. Frame *n* of a
//!   segment starting at `s` has sequence number `s + n`; sequence
//!   numbers are positional, never stored per frame.
//! * **Checkpoints** `ckpt-{wal_seq:020}.ck` — a full
//!   [`OnlineAllocator`] image through the checksummed word container
//!   ([`tirm_online::CHECKPOINT_MAGIC`]), covering every mutation with
//!   sequence number `< wal_seq`.
//!
//! The **WAL sequence number** counts *admitted* mutations — everything
//! the writer dequeues, in admission order, including mutations the
//! allocator will reject (`DuplicateAd` etc.): rejection is
//! deterministic, so logging before applying keeps replay exact without
//! the writer having to know the outcome first. Read requests are never
//! logged.
//!
//! # Write path (group commit)
//!
//! The writer appends a batch of frames with [`Wal::append`], calls
//! [`Wal::sync`] **once** (flush + `fdatasync`), and only then applies
//! the batch to the allocator. A crash can therefore lose un-acked
//! tail work but never applied work: anything the allocator saw is on
//! disk first. Segments rotate after `segment_events` frames; sealed
//! segments are immutable and become deletable once a checkpoint
//! covers them ([`Wal::prune`]).
//!
//! # Recovery
//!
//! [`recover`] picks the newest checkpoint that passes its checksum
//! (falling back to the previous one — two are retained — with a typed
//! [`RecoveryWarning::BadCheckpoint`], and to a cold allocator when
//! none is usable), then replays every frame with sequence number at
//! or past the checkpoint's cover point. A torn final frame — the
//! signature of a crash mid-append — ends the log with a
//! [`RecoveryWarning::TornFrame`], never a panic; the restarted server
//! opens a fresh segment at the recovered sequence number, so the torn
//! bytes are shadowed by construction (the next segment's start equals
//! the recovery cursor and the scan continues through it).
//!
//! # Replication reads and fencing
//!
//! [`read_frames`] is the leader-side read path of WAL shipping: it
//! serves frame bodies at or past a follower's subscription anchor
//! straight from the segment files, clamped to the caller-supplied
//! durable frontier (the write path fsyncs before the frontier
//! advances, so everything below it is stable on disk even in the open
//! segment). An anchor inside a pruned segment is the typed
//! [`ReplicaBatch::Pruned`] outcome — the follower bootstraps from the
//! newest checkpoint instead; it is **not** the gap error, which stays
//! reserved for a segment missing from the middle of the retained
//! range. The **fencing epoch** ([`read_fencing_epoch`] /
//! [`bump_fencing_epoch`]) is a monotonic counter stored next to the
//! log; promotion bumps it, every replication response carries it, and
//! followers drop frames from any epoch older than the newest they
//! have seen — a deposed leader's stale segments can never be applied.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use tirm_graph::DiGraph;
use tirm_obs::flight::{self, Stage};
use tirm_online::{OnlineAllocator, OnlineConfig, OnlineEvent};
use tirm_topics::TopicEdgeProbs;
use tirm_workloads::events::{event_from_value, event_json_fields};

/// First 8 bytes of every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"TIRMWAL0";
/// Segment format version (bumped on any layout change).
pub const WAL_VERSION: u32 = 1;
/// Segment header: magic (8) + version (4) + start sequence number (8).
const WAL_HEADER_BYTES: usize = 20;
/// Hard cap on one frame's body — a length prefix beyond this is
/// corruption, not an allocation request (mirrors the wire cap).
const MAX_WAL_FRAME_BYTES: u32 = 16 << 20;
/// Checkpoints retained on disk: the newest plus one fallback, so a
/// checkpoint that fails its checksum on restart costs a longer replay,
/// not the state.
pub const KEEP_CHECKPOINTS: usize = 2;

fn segment_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("wal-{start_seq:020}.seg"))
}

fn checkpoint_path(dir: &Path, wal_seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{wal_seq:020}.ck"))
}

/// Parses `name` as one of our durable files; `prefix`/`suffix` select
/// the kind. The zero-padded fixed-width numbers make lexicographic
/// directory order equal numeric order, but we parse and sort
/// explicitly anyway.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse::<u64>()
        .ok()
}

/// All files of one kind in `dir`, sorted ascending by sequence number.
fn list_numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(seq) = entry
            .file_name()
            .to_str()
            .and_then(|n| parse_numbered(n, prefix, suffix))
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Segments in `dir`, ascending by start sequence.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_numbered(dir, "wal-", ".seg")
}

/// Checkpoints in `dir`, ascending by covered sequence.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_numbered(dir, "ckpt-", ".ck")
}

/// Makes `dir`'s entry list durable — called after creating or renaming
/// files whose *existence* recovery depends on. Directory fsync is a
/// no-op error on filesystems that don't support it; that's fine, those
/// also don't need it.
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => {
            let _ = d.sync_all();
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// The append side of the write-ahead log: owned by the writer thread,
/// one open segment at a time.
pub struct Wal {
    dir: PathBuf,
    segment_events: u64,
    file: BufWriter<File>,
    /// Next sequence number to assign.
    seq: u64,
    /// First sequence number of the open segment.
    segment_start: u64,
    /// Frames appended since the last [`sync`](Self::sync).
    unsynced: u64,
}

impl Wal {
    /// Opens the log for appending at `start_seq` — always a **new**
    /// segment, never an append to an old one (recovery may have
    /// dropped a torn tail; reopening the old segment could interleave
    /// fresh frames with garbage). If a segment file with this exact
    /// start exists it contributed zero frames to recovery (empty or
    /// fully torn) and is truncated.
    pub fn open(dir: impl Into<PathBuf>, start_seq: u64, segment_events: u64) -> io::Result<Wal> {
        assert!(segment_events >= 1, "segments must hold at least a frame");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let file = Self::create_segment(&dir, start_seq)?;
        Ok(Wal {
            dir,
            segment_events,
            file,
            seq: start_seq,
            segment_start: start_seq,
            unsynced: 0,
        })
    }

    fn create_segment(dir: &Path, start_seq: u64) -> io::Result<BufWriter<File>> {
        let mut file =
            BufWriter::with_capacity(1 << 16, File::create(segment_path(dir, start_seq))?);
        file.write_all(WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.write_all(&start_seq.to_le_bytes())?;
        // The header (and the dirent) must be durable before any frame
        // in this segment is acked, and before the predecessor segment
        // becomes prunable.
        file.flush()?;
        file.get_ref().sync_all()?;
        sync_dir(dir)?;
        Ok(file)
    }

    /// Next sequence number to be assigned (equivalently: frames logged
    /// so far over the log's whole life).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Appends one mutation frame, rotating to a new segment when the
    /// open one is full. Returns the frame's sequence number. The frame
    /// is buffered — it is *not* durable until [`sync`](Self::sync).
    pub fn append(&mut self, ev: &OnlineEvent) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        let start_ns = flight::now_ns();
        if self.seq - self.segment_start >= self.segment_events {
            self.rotate()?;
        }
        let body = format!("{{{}}}", event_json_fields(ev));
        debug_assert!(body.len() <= MAX_WAL_FRAME_BYTES as usize);
        self.file.write_all(&(body.len() as u32).to_le_bytes())?;
        self.file.write_all(body.as_bytes())?;
        let assigned = self.seq;
        self.seq += 1;
        self.unsynced += 1;
        // The append names the frame's position, so the trace id
        // (position + 1) is known here without any plumbing.
        let trace = assigned + 1;
        flight::record_since(trace, Stage::WalAppend, start_ns);
        tirm_obs::registry::WAL_APPEND_LATENCY_NS
            .record_traced(t0.elapsed().as_nanos() as u64, trace);
        Ok(assigned)
    }

    /// Group commit: one flush + `fdatasync` covering every frame
    /// appended since the last call. The writer calls this once per
    /// drained batch, *before* applying the batch to the allocator.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let batch = self.unsynced;
        let t0 = std::time::Instant::now();
        let start_ns = flight::now_ns();
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.unsynced = 0;
        let elapsed = t0.elapsed();
        let end_ns = flight::now_ns();
        // One group commit covers frames at positions
        // [seq - batch, seq): each of their timelines gets the shared
        // fsync span. The exemplar is pinned to the newest frame.
        for trace in (self.seq - batch + 1)..=self.seq {
            flight::record(trace, Stage::Fsync, start_ns, end_ns);
        }
        tirm_obs::registry::WAL_FSYNC_LATENCY_NS.record_traced(elapsed.as_nanos() as u64, self.seq);
        tirm_obs::registry::WAL_BATCH_EVENTS.record(batch);
        tirm_obs::registry::SLOW_TRACE.record("wal_fsync", 0, elapsed.as_nanos() as u64);
        Ok(())
    }

    /// Seals the open segment (making its tail durable) and starts the
    /// next one at the current sequence number.
    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        self.file = Self::create_segment(&self.dir, self.seq)?;
        self.segment_start = self.seq;
        Ok(())
    }

    /// Deletes sealed segments every frame of which is covered by a
    /// checkpoint at `covered_seq` (i.e. the *next* segment starts at
    /// or below it). The open segment is never deleted. Returns how
    /// many segments were removed.
    pub fn prune(&mut self, covered_seq: u64) -> io::Result<usize> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segments.windows(2) {
            let (start, ref path) = window[0];
            let (next_start, _) = window[1];
            if start < self.segment_start && next_start <= covered_seq {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

/// File holding the fencing epoch (ASCII decimal). Lives next to the
/// segments so promotion and the log travel together.
const FENCING_EPOCH_FILE: &str = "fencing.epoch";

/// Reads the fencing epoch persisted in `dir` (0 when none was ever
/// written — a log that has never seen a hand-off).
pub fn read_fencing_epoch(dir: &Path) -> io::Result<u64> {
    match fs::read_to_string(dir.join(FENCING_EPOCH_FILE)) {
        Ok(text) => text.trim().parse::<u64>().map_err(|_| {
            io::Error::new(
                ErrorKind::InvalidData,
                format!("corrupt fencing epoch file in {}", dir.display()),
            )
        }),
        Err(e) if e.kind() == ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

/// Persists `epoch` as the fencing epoch of `dir` (tmp → fsync →
/// rename, like checkpoints — a crash mid-write leaves the old epoch).
pub fn write_fencing_epoch(dir: &Path, epoch: u64) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("fencing.tmp.{}", std::process::id()));
    let result = (|| -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(format!("{epoch}\n").as_bytes())?;
        f.sync_all()
    })();
    if let Err(e) = result {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    fs::rename(&tmp, dir.join(FENCING_EPOCH_FILE))?;
    sync_dir(dir)
}

/// Atomically advances the fencing epoch in `dir` by one and returns
/// the new value — the promotion step that fences out a deposed
/// leader: its replication responses now carry an older epoch and
/// followers refuse them.
pub fn bump_fencing_epoch(dir: &Path) -> io::Result<u64> {
    let next = read_fencing_epoch(dir)? + 1;
    write_fencing_epoch(dir, next)?;
    Ok(next)
}

/// The newest checkpoint on disk, if any — what a pruned-anchor
/// bootstrap serves (its cover point always falls inside the retained
/// segment range, because prune only deletes what a checkpoint
/// covers).
pub fn newest_checkpoint(dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    Ok(list_checkpoints(dir)?.pop())
}

/// Installs a checkpoint downloaded from a leader: the bytes land
/// under the canonical `ckpt-{wal_seq}.ck` name via the same
/// tmp-write → fsync → rename → dir-fsync dance [`write_checkpoint`]
/// uses, so a crash mid-install leaves either the old state or the new
/// checkpoint — never a half-written file under a valid name. The
/// payload is validated by [`recover`]'s checksummed restore, not
/// here.
pub fn install_checkpoint(dir: &Path, wal_seq: u64, bytes: &[u8]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = checkpoint_path(dir, wal_seq);
    let tmp = dir.join(format!("ckpt.tmp.{}", std::process::id()));
    let result = (|| -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, &path)?;
        sync_dir(dir)
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// One answer from the leader-side replication read path.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplicaBatch {
    /// Frame bodies for sequence numbers `from_seq ..
    /// from_seq + bodies.len()`, in order. Empty ⇒ the follower is
    /// caught up to the frontier.
    Frames {
        /// Raw event-JSON bodies (the wire/WAL codec).
        bodies: Vec<String>,
    },
    /// The anchor precedes the oldest retained segment: those frames
    /// were pruned after a checkpoint, so the caller must bootstrap
    /// from a checkpoint instead. Not a gap error — pruning is the
    /// log working as designed.
    Pruned {
        /// Start sequence of the oldest segment still on disk.
        oldest_start: u64,
    },
}

/// Reads up to `max_frames` frame bodies with sequence numbers in
/// `[from_seq, frontier)` from the segments in `dir` — the leader-side
/// replication read. Safe concurrently with the writer appending:
/// every frame below the durable `frontier` was fsynced before the
/// frontier advanced, sealed segments are immutable, and the open
/// segment is append-only; a torn or unsynced tail simply ends the
/// scan early (those frames are past the frontier by the write-path
/// invariant, and the next poll re-reads them once durable).
pub fn read_frames(
    dir: &Path,
    from_seq: u64,
    max_frames: usize,
    frontier: u64,
) -> io::Result<ReplicaBatch> {
    let segments = list_segments(dir)?;
    if from_seq >= frontier || max_frames == 0 {
        return Ok(ReplicaBatch::Frames { bodies: Vec::new() });
    }
    // The segment holding `from_seq`: greatest start at or below it.
    let Some(first) = segments.iter().rposition(|&(start, _)| start <= from_seq) else {
        // Every retained segment starts past the anchor (or there are
        // none while the frontier says frames exist): pruned.
        let oldest_start = segments.first().map_or(frontier, |&(s, _)| s);
        return Ok(ReplicaBatch::Pruned { oldest_start });
    };

    let mut bodies = Vec::new();
    let mut cursor = from_seq;
    for (i, (start, path)) in segments.iter().enumerate().skip(first) {
        if *start > cursor {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "gap in the write-ahead log: segment {} starts at seq {start} \
                     but the replication scan reached only seq {cursor}",
                    path.display()
                ),
            ));
        }
        // A sealed predecessor of a live successor may end in a torn
        // tail (crash artifact): its missing frames were re-logged at
        // the successor's start, which recovery guarantees equals the
        // cursor — so only take this segment's frames up to where the
        // next segment takes over.
        let takeover = segments.get(i + 1).map(|&(s, _)| s);
        collect_segment_frames(
            path,
            *start,
            &mut cursor,
            takeover,
            frontier,
            max_frames,
            &mut bodies,
        )?;
        if bodies.len() >= max_frames || cursor >= frontier {
            break;
        }
    }
    Ok(ReplicaBatch::Frames { bodies })
}

/// Scans one segment, pushing bodies for `seq >= *cursor` (bounded by
/// `takeover`, `frontier` and `max_frames`) and advancing the cursor.
/// Torn/corrupt tails end the scan silently — replication only serves
/// durable frames, and below the frontier those artifacts cannot
/// exist.
fn collect_segment_frames(
    path: &Path,
    start: u64,
    cursor: &mut u64,
    takeover: Option<u64>,
    frontier: u64,
    max_frames: usize,
    bodies: &mut Vec<String>,
) -> io::Result<()> {
    let mut r = BufReader::with_capacity(1 << 16, File::open(path)?);
    let mut header = [0u8; WAL_HEADER_BYTES];
    if !read_exact_or_eof(&mut r, &mut header).unwrap_or(false) {
        return Ok(()); // header never synced: zero durable frames here
    }
    if &header[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("{} is not a WAL segment (bad magic)", path.display()),
        ));
    }
    let mut seq = start;
    loop {
        if bodies.len() >= max_frames || *cursor >= frontier {
            return Ok(());
        }
        if takeover.is_some_and(|t| seq >= t) {
            return Ok(()); // the successor segment owns it from here
        }
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut r, &mut len_buf) {
            Ok(true) => {}
            Ok(false) | Err(_) => return Ok(()), // clean end or torn tail
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_WAL_FRAME_BYTES {
            return Ok(()); // corrupt tail: nothing durable past it
        }
        let mut body = vec![0u8; len as usize];
        match read_exact_or_eof(&mut r, &mut body) {
            Ok(true) => {}
            Ok(false) | Err(_) => return Ok(()),
        }
        if seq >= *cursor {
            debug_assert_eq!(seq, *cursor, "frames are positionally dense");
            let text = String::from_utf8(body).map_err(|_| {
                io::Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "non-UTF-8 frame below the durable frontier in {}",
                        path.display()
                    ),
                )
            })?;
            bodies.push(text);
            *cursor = seq + 1;
        }
        seq += 1;
    }
}

/// Writes a checkpoint covering sequence numbers `< wal_seq` and
/// retires all but the newest [`KEEP_CHECKPOINTS`] checkpoint files.
/// The image is written to a temp file, fsynced, and renamed into
/// place — a crash mid-checkpoint leaves the previous one intact.
pub fn write_checkpoint(
    dir: &Path,
    allocator: &mut OnlineAllocator<'_>,
    wal_seq: u64,
) -> io::Result<PathBuf> {
    let t0 = std::time::Instant::now();
    fs::create_dir_all(dir)?;
    let path = checkpoint_path(dir, wal_seq);
    let tmp = dir.join(format!("ckpt.tmp.{}", std::process::id()));
    let result = (|| -> io::Result<()> {
        let mut w = BufWriter::with_capacity(1 << 20, File::create(&tmp)?);
        allocator.checkpoint(wal_seq, &mut w)?;
        w.flush()?;
        w.get_ref().sync_all()
    })();
    if let Err(e) = result {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    let checkpoints = list_checkpoints(dir)?;
    if checkpoints.len() > KEEP_CHECKPOINTS {
        for (_, old) in &checkpoints[..checkpoints.len() - KEEP_CHECKPOINTS] {
            fs::remove_file(old)?;
        }
        sync_dir(dir)?;
    }
    let elapsed = t0.elapsed();
    tirm_obs::registry::CHECKPOINT_WALL_NS.record_duration(elapsed);
    tirm_obs::registry::SLOW_TRACE.record("checkpoint", 0, elapsed.as_nanos() as u64);
    Ok(path)
}

/// A non-fatal condition recovery handled by design: each variant names
/// what was found and what recovery did about it.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryWarning {
    /// The final frame of `segment` was cut short — a crash during an
    /// unsynced append. The frame was never acked as durable; recovery
    /// ends the log there.
    TornFrame {
        segment: PathBuf,
        /// Byte offset of the torn frame's length prefix.
        offset: u64,
    },
    /// A frame was present in full but didn't decode as an event — bit
    /// rot or a foreign file. Replay stops at the frame before it.
    CorruptFrame {
        segment: PathBuf,
        seq: u64,
        why: String,
    },
    /// A checkpoint failed to load (checksum mismatch, truncation,
    /// config skew); recovery fell back to an older checkpoint or a
    /// cold start, at the cost of a longer replay.
    BadCheckpoint { path: PathBuf, why: String },
    /// No checkpoint and no segments: a first boot, served cold.
    NothingToRecover,
}

impl fmt::Display for RecoveryWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryWarning::TornFrame { segment, offset } => write!(
                f,
                "torn final frame in {} at byte {offset} (crash mid-append); log ends there",
                segment.display()
            ),
            RecoveryWarning::CorruptFrame { segment, seq, why } => write!(
                f,
                "corrupt frame (seq {seq}) in {}: {why}; replay stops before it",
                segment.display()
            ),
            RecoveryWarning::BadCheckpoint { path, why } => write!(
                f,
                "unusable checkpoint {}: {why}; falling back (longer replay)",
                path.display()
            ),
            RecoveryWarning::NothingToRecover => {
                write!(f, "no checkpoint and no WAL segments; cold start")
            }
        }
    }
}

/// What [`recover`] found and rebuilt.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The recovered sequence number — the restarted WAL opens here.
    pub wal_seq: u64,
    /// Cover point of the checkpoint used (`None` ⇒ cold start).
    pub checkpoint_seq: Option<u64>,
    /// Frames replayed through the allocator (past the checkpoint).
    pub replayed: u64,
    /// Replayed frames the allocator rejected — mutations that were
    /// logged and deterministically re-rejected, exactly as live.
    pub rejected_on_replay: u64,
    /// Everything non-fatal the scan encountered, in order.
    pub warnings: Vec<RecoveryWarning>,
}

/// Reads `buf.len()` bytes; `Ok(false)` on clean EOF at the first byte,
/// `Err(UnexpectedEof)` when the file ends mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Rebuilds an allocator from the durable state in `dir`: newest usable
/// checkpoint, then a replay of every frame with sequence number at or
/// past its cover point. Infallible against the crash artifacts the
/// write path can produce (torn tails, a half-written checkpoint) —
/// those become [`RecoveryWarning`]s; an `Err` means the directory
/// itself is unreadable or the log has a *gap* (a segment missing from
/// the middle), which no replay can paper over.
pub fn recover<'g>(
    dir: &Path,
    graph: &'g DiGraph,
    topic_probs: &'g TopicEdgeProbs,
    cfg: &OnlineConfig,
) -> io::Result<(OnlineAllocator<'g>, RecoveryReport)> {
    let mut report = RecoveryReport::default();

    // Newest checkpoint that loads; older ones are the fallback.
    let mut allocator = None;
    for (seq, path) in list_checkpoints(dir)?.into_iter().rev() {
        let mut r = BufReader::with_capacity(1 << 20, File::open(&path)?);
        match OnlineAllocator::restore(graph, topic_probs, cfg.clone(), &mut r) {
            Ok((a, ckpt_seq)) => {
                debug_assert_eq!(ckpt_seq, seq, "checkpoint file name vs payload");
                report.checkpoint_seq = Some(ckpt_seq);
                allocator = Some(a);
                break;
            }
            Err(e) => report.warnings.push(RecoveryWarning::BadCheckpoint {
                path,
                why: e.to_string(),
            }),
        }
    }
    let mut allocator =
        allocator.unwrap_or_else(|| OnlineAllocator::new(graph, topic_probs, cfg.clone()));
    let mut cursor = report.checkpoint_seq.unwrap_or(0);

    let segments = list_segments(dir)?;
    if report.checkpoint_seq.is_none() && segments.is_empty() {
        report.warnings.push(RecoveryWarning::NothingToRecover);
    }
    for (start, path) in &segments {
        // Segments wholly covered by the checkpoint: skip without
        // opening (prune may simply not have run yet).
        let next_start = segments
            .iter()
            .map(|&(s, _)| s)
            .filter(|&s| s > *start)
            .min();
        if next_start.is_some_and(|s| s <= cursor) {
            continue;
        }
        if *start > cursor {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "gap in the write-ahead log: segment {} starts at seq {start} \
                     but recovery reached only seq {cursor}",
                    path.display()
                ),
            ));
        }
        let torn = replay_segment(path, *start, &mut cursor, &mut allocator, &mut report)?;
        if torn {
            // A torn tail ends this segment; a successor segment is
            // only consistent if it starts exactly at the cursor (the
            // restart-after-crash shape) — the gap check above enforces
            // that on the next iteration.
        }
    }

    report.wal_seq = cursor;
    Ok((allocator, report))
}

/// Replays one segment's frames with sequence numbers `>= cursor`
/// through the allocator, advancing `cursor` per frame. Returns whether
/// the segment ended in a torn/corrupt frame (logged into `report`).
fn replay_segment(
    path: &Path,
    start: u64,
    cursor: &mut u64,
    allocator: &mut OnlineAllocator<'_>,
    report: &mut RecoveryReport,
) -> io::Result<bool> {
    let mut r = BufReader::with_capacity(1 << 16, File::open(path)?);
    let mut header = [0u8; WAL_HEADER_BYTES];
    if !read_exact_or_eof(&mut r, &mut header).unwrap_or(false) {
        // Not even a full header: a crash between segment creation and
        // its first sync. Zero frames, same handling as a torn tail.
        report.warnings.push(RecoveryWarning::TornFrame {
            segment: path.to_path_buf(),
            offset: 0,
        });
        return Ok(true);
    }
    if &header[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("{} is not a WAL segment (bad magic)", path.display()),
        ));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "{}: unsupported WAL version {version} (this build reads {WAL_VERSION})",
                path.display()
            ),
        ));
    }
    let header_start = u64::from_le_bytes(header[12..20].try_into().unwrap());
    if header_start != start {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "{}: header says start seq {header_start}, file name says {start}",
                path.display()
            ),
        ));
    }

    let mut offset = WAL_HEADER_BYTES as u64;
    let mut seq = start;
    loop {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut r, &mut len_buf) {
            Ok(false) => return Ok(false), // clean end of segment
            Ok(true) => {}
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                report.warnings.push(RecoveryWarning::TornFrame {
                    segment: path.to_path_buf(),
                    offset,
                });
                return Ok(true);
            }
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_WAL_FRAME_BYTES {
            report.warnings.push(RecoveryWarning::CorruptFrame {
                segment: path.to_path_buf(),
                seq,
                why: format!("frame length {len} out of range"),
            });
            return Ok(true);
        }
        let mut body = vec![0u8; len as usize];
        match read_exact_or_eof(&mut r, &mut body) {
            Ok(true) => {}
            Ok(false) | Err(_) => {
                report.warnings.push(RecoveryWarning::TornFrame {
                    segment: path.to_path_buf(),
                    offset,
                });
                return Ok(true);
            }
        }
        if seq >= *cursor {
            let ev = match decode_frame(&body) {
                Ok(ev) => ev,
                Err(why) => {
                    report.warnings.push(RecoveryWarning::CorruptFrame {
                        segment: path.to_path_buf(),
                        seq,
                        why,
                    });
                    return Ok(true);
                }
            };
            match allocator.process(&ev) {
                Ok(_) => {}
                Err(_) => report.rejected_on_replay += 1,
            }
            report.replayed += 1;
            *cursor = seq + 1;
        }
        offset += 4 + len as u64;
        seq += 1;
    }
}

pub(crate) fn decode_frame(body: &[u8]) -> Result<OnlineEvent, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("not UTF-8: {e}"))?;
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    event_from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use tirm_core::TirmOptions;
    use tirm_graph::generators;
    use tirm_topics::{genprob, TopicDist};

    fn setup(nodes: usize, seed: u64) -> (DiGraph, TopicEdgeProbs) {
        let graph = generators::preferential_attachment(nodes, 3, 0.3, seed);
        let probs = genprob::exponential_topic_probs(graph.num_edges(), 2, 8.0, seed ^ 0x77);
        (graph, probs)
    }

    fn config(seed: u64) -> OnlineConfig {
        OnlineConfig {
            tirm: TirmOptions {
                eps: 0.45,
                seed,
                max_theta_per_ad: Some(600),
                ..TirmOptions::default()
            },
            kappa: 2,
            ..OnlineConfig::default()
        }
    }

    fn arrival(id: u64, budget: f64, topic: usize) -> OnlineEvent {
        OnlineEvent::AdArrival {
            id,
            budget,
            cpe: 1.0,
            topics: TopicDist::single(2, topic),
            ctp: 0.5,
        }
    }

    fn events() -> Vec<OnlineEvent> {
        vec![
            arrival(1, 5.0, 0),
            arrival(2, 4.0, 1),
            OnlineEvent::BudgetTopUp { id: 1, amount: 2.0 },
            arrival(2, 9.0, 0), // duplicate: rejected, still logged
            arrival(3, 6.0, 1),
            OnlineEvent::AdDeparture { id: 2 },
        ]
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tirm_wal_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Oracle: the allocator an uninterrupted run would hold.
    fn oracle<'g>(
        graph: &'g DiGraph,
        probs: &'g TopicEdgeProbs,
        cfg: &OnlineConfig,
        events: &[OnlineEvent],
    ) -> OnlineAllocator<'g> {
        let mut a = OnlineAllocator::new(graph, probs, cfg.clone());
        for ev in events {
            let _ = a.process(ev);
        }
        a
    }

    #[test]
    fn log_then_recover_replays_everything_including_rejections() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("basic");
        let evs = events();

        // Tiny segments force rotation mid-stream.
        let mut wal = Wal::open(&dir, 0, 2).unwrap();
        for ev in &evs {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.seq(), evs.len() as u64);
        assert!(list_segments(&dir).unwrap().len() >= 3);
        drop(wal);

        let (recovered, report) = recover(&dir, &graph, &probs, &cfg).unwrap();
        assert_eq!(report.wal_seq, evs.len() as u64);
        assert_eq!(report.replayed, evs.len() as u64);
        assert_eq!(report.rejected_on_replay, 1);
        assert_eq!(report.checkpoint_seq, None);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);

        let want = oracle(&graph, &probs, &cfg, &evs);
        assert!(recovered.snapshot().same_allocation(&want.snapshot()));
    }

    #[test]
    fn torn_final_frame_is_a_typed_warning_not_a_panic() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("torn");
        let evs = events();

        let mut wal = Wal::open(&dir, 0, 1_000).unwrap();
        for ev in &evs {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Simulate a crash mid-append: a length prefix promising more
        // bytes than the file holds.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&1234u32.to_le_bytes()).unwrap();
        f.write_all(b"{\"type\":\"ad_arr").unwrap();
        drop(f);

        let (recovered, report) = recover(&dir, &graph, &probs, &cfg).unwrap();
        assert_eq!(report.replayed, evs.len() as u64);
        assert_eq!(report.wal_seq, evs.len() as u64);
        assert_eq!(
            report.warnings.len(),
            1,
            "exactly the torn-frame warning: {:?}",
            report.warnings
        );
        assert!(matches!(
            report.warnings[0],
            RecoveryWarning::TornFrame { .. }
        ));

        let want = oracle(&graph, &probs, &cfg, &evs);
        assert!(recovered.snapshot().same_allocation(&want.snapshot()));

        // The restarted WAL opens a fresh segment at the recovered seq;
        // appending there and recovering again walks straight through
        // the torn bytes (the successor segment starts at the cursor).
        let mut wal = Wal::open(&dir, report.wal_seq, 1_000).unwrap();
        let extra = arrival(9, 3.0, 0);
        wal.append(&extra).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (recovered2, report2) = recover(&dir, &graph, &probs, &cfg).unwrap();
        assert_eq!(report2.wal_seq, evs.len() as u64 + 1);
        let mut evs2 = evs.clone();
        evs2.push(extra);
        let want2 = oracle(&graph, &probs, &cfg, &evs2);
        assert!(recovered2.snapshot().same_allocation(&want2.snapshot()));
    }

    #[test]
    fn bad_checkpoint_checksum_falls_back_to_the_previous_one() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("ckptfall");
        let evs = events();

        let mut wal = Wal::open(&dir, 0, 1_000).unwrap();
        let mut live = OnlineAllocator::new(&graph, &probs, cfg.clone());
        for (i, ev) in evs.iter().enumerate() {
            wal.append(ev).unwrap();
            wal.sync().unwrap();
            let _ = live.process(ev);
            // Checkpoint after events 3 and 5 — two files on disk.
            if i == 2 || i == 4 {
                write_checkpoint(&dir, &mut live, (i + 1) as u64).unwrap();
            }
        }
        drop(wal);
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 2);

        // Flip a payload byte in the NEWEST checkpoint.
        let (_, newest) = list_checkpoints(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        let (recovered, report) = recover(&dir, &graph, &probs, &cfg).unwrap();
        // Fell back: older checkpoint covers 3 events, so 3 replayed
        // instead of 1.
        assert_eq!(report.checkpoint_seq, Some(3));
        assert_eq!(report.replayed, 3);
        assert_eq!(report.wal_seq, evs.len() as u64);
        assert!(
            matches!(&report.warnings[..], [RecoveryWarning::BadCheckpoint { path, .. }] if *path == newest),
            "{:?}",
            report.warnings
        );
        let want = oracle(&graph, &probs, &cfg, &evs);
        assert!(recovered.snapshot().same_allocation(&want.snapshot()));
    }

    #[test]
    fn both_checkpoints_bad_recovers_cold_from_the_full_log() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("ckptcold");
        let evs = events();

        let mut wal = Wal::open(&dir, 0, 1_000).unwrap();
        let mut live = OnlineAllocator::new(&graph, &probs, cfg.clone());
        for (i, ev) in evs.iter().enumerate() {
            wal.append(ev).unwrap();
            wal.sync().unwrap();
            let _ = live.process(ev);
            if i == 2 || i == 4 {
                write_checkpoint(&dir, &mut live, (i + 1) as u64).unwrap();
            }
        }
        drop(wal);
        for (_, path) in list_checkpoints(&dir).unwrap() {
            let mut bytes = fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            fs::write(&path, &bytes).unwrap();
        }

        let (recovered, report) = recover(&dir, &graph, &probs, &cfg).unwrap();
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(report.replayed, evs.len() as u64);
        assert_eq!(report.warnings.len(), 2);
        let want = oracle(&graph, &probs, &cfg, &evs);
        assert!(recovered.snapshot().same_allocation(&want.snapshot()));
    }

    #[test]
    fn empty_and_missing_state_dirs_recover_cold_with_a_typed_warning() {
        let (graph, probs) = setup(120, 5);
        let cfg = config(3);
        for dir in [fresh_dir("emptymissing"), {
            let d = fresh_dir("emptypresent");
            fs::create_dir_all(&d).unwrap();
            d
        }] {
            let (recovered, report) = recover(&dir, &graph, &probs, &cfg).unwrap();
            assert_eq!(report.wal_seq, 0);
            assert_eq!(report.replayed, 0);
            assert_eq!(report.warnings, vec![RecoveryWarning::NothingToRecover]);
            assert_eq!(recovered.snapshot().epoch, 0);
        }
    }

    #[test]
    fn checkpoint_plus_tail_equals_full_replay_and_prunes_covered_segments() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("tail");
        let evs = events();

        let mut wal = Wal::open(&dir, 0, 2).unwrap();
        let mut live = OnlineAllocator::new(&graph, &probs, cfg.clone());
        for (i, ev) in evs.iter().enumerate() {
            wal.append(ev).unwrap();
            wal.sync().unwrap();
            let _ = live.process(ev);
            if i == 3 {
                write_checkpoint(&dir, &mut live, (i + 1) as u64).unwrap();
                let removed = wal.prune((i + 1) as u64).unwrap();
                // Segment [0,2) is sealed and covered; [2,4) is also
                // covered but still the *open* segment (rotation is
                // lazy, at the next append), so it stays.
                assert_eq!(removed, 1);
            }
        }
        wal.sync().unwrap();
        drop(wal);

        let (recovered, report) = recover(&dir, &graph, &probs, &cfg).unwrap();
        assert_eq!(report.checkpoint_seq, Some(4));
        assert_eq!(report.replayed, 2);
        assert_eq!(report.wal_seq, evs.len() as u64);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        let want = oracle(&graph, &probs, &cfg, &evs);
        assert!(recovered.snapshot().same_allocation(&want.snapshot()));
        assert!(recovered.snapshot().same_allocation(&live.snapshot()));
    }

    /// Decodes a replication frame body back into an event.
    fn body_event(body: &str) -> OnlineEvent {
        decode_frame(body.as_bytes()).unwrap()
    }

    #[test]
    fn read_frames_serves_the_durable_range_and_respects_the_frontier() {
        let dir = fresh_dir("repl_read");
        let evs = events();

        // Tiny segments: the stream spans sealed segments and the open
        // one.
        let mut wal = Wal::open(&dir, 0, 2).unwrap();
        for ev in &evs {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();

        // Full range from seq 0.
        let batch = read_frames(&dir, 0, 100, wal.seq()).unwrap();
        let ReplicaBatch::Frames { bodies } = batch else {
            panic!("expected frames, got {batch:?}");
        };
        assert_eq!(bodies.len(), evs.len());
        for (body, want) in bodies.iter().zip(&evs) {
            assert_eq!(&body_event(body), want);
        }

        // Mid-log anchor.
        let ReplicaBatch::Frames { bodies } = read_frames(&dir, 3, 100, wal.seq()).unwrap() else {
            panic!("expected frames");
        };
        assert_eq!(bodies.len(), evs.len() - 3);
        assert_eq!(&body_event(&bodies[0]), &evs[3]);

        // max_frames clamps the page.
        let ReplicaBatch::Frames { bodies } = read_frames(&dir, 1, 2, wal.seq()).unwrap() else {
            panic!("expected frames");
        };
        assert_eq!(bodies.len(), 2);
        assert_eq!(&body_event(&bodies[0]), &evs[1]);

        // The frontier clamps what is served even though more frames
        // sit on disk (they are not yet acked durable to anyone).
        let ReplicaBatch::Frames { bodies } = read_frames(&dir, 0, 100, 4).unwrap() else {
            panic!("expected frames");
        };
        assert_eq!(bodies.len(), 4);

        // Caught up: empty page, not an error.
        let ReplicaBatch::Frames { bodies } = read_frames(&dir, wal.seq(), 100, wal.seq()).unwrap()
        else {
            panic!("expected frames");
        };
        assert!(bodies.is_empty());
    }

    #[test]
    fn read_frames_anchor_inside_a_pruned_segment_is_typed_not_a_gap_error() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("repl_pruned");
        let evs = events();

        let mut wal = Wal::open(&dir, 0, 2).unwrap();
        let mut live = OnlineAllocator::new(&graph, &probs, cfg.clone());
        for (i, ev) in evs.iter().enumerate() {
            wal.append(ev).unwrap();
            wal.sync().unwrap();
            let _ = live.process(ev);
            if i == 3 {
                write_checkpoint(&dir, &mut live, (i + 1) as u64).unwrap();
                assert_eq!(wal.prune((i + 1) as u64).unwrap(), 1);
            }
        }
        wal.sync().unwrap();

        // Anchor 0 now falls before the oldest retained segment: the
        // typed bootstrap outcome, with the newest checkpoint covering
        // the re-subscription point.
        match read_frames(&dir, 0, 100, wal.seq()).unwrap() {
            ReplicaBatch::Pruned { oldest_start } => {
                assert_eq!(oldest_start, 2);
                let (ckpt_seq, _) = newest_checkpoint(&dir).unwrap().unwrap();
                assert!(
                    ckpt_seq >= oldest_start,
                    "checkpoint covers the pruned range"
                );
                // Re-subscribing at the checkpoint's cover point works.
                let ReplicaBatch::Frames { bodies } =
                    read_frames(&dir, ckpt_seq, 100, wal.seq()).unwrap()
                else {
                    panic!("resubscription failed");
                };
                assert_eq!(bodies.len(), evs.len() - ckpt_seq as usize);
            }
            other => panic!("expected the pruned outcome, got {other:?}"),
        }
    }

    #[test]
    fn read_frames_stops_cleanly_at_a_torn_open_segment_tail() {
        let dir = fresh_dir("repl_torn");
        let evs = events();

        let mut wal = Wal::open(&dir, 0, 1_000).unwrap();
        for ev in &evs {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();
        let frontier = wal.seq();
        drop(wal);

        // A torn append mid-stream: length prefix promising more bytes
        // than the file holds (the crash-mid-append artifact), beyond
        // the durable frontier.
        let (_, seg) = list_segments(&dir).unwrap().pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&9999u32.to_le_bytes()).unwrap();
        f.write_all(b"{\"type\":\"arr").unwrap();
        drop(f);

        // Every durable frame is served; the torn tail neither errors
        // nor leaks partial bytes.
        let ReplicaBatch::Frames { bodies } = read_frames(&dir, 0, 100, frontier).unwrap() else {
            panic!("expected frames");
        };
        assert_eq!(bodies.len(), evs.len());
        for (body, want) in bodies.iter().zip(&evs) {
            assert_eq!(&body_event(body), want);
        }
        // Even with an (incorrectly) advanced frontier the torn frame
        // is not served — the scan ends at the last whole frame.
        let ReplicaBatch::Frames { bodies } = read_frames(&dir, 0, 100, frontier + 1).unwrap()
        else {
            panic!("expected frames");
        };
        assert_eq!(bodies.len(), evs.len());
    }

    #[test]
    fn read_frames_gap_in_retained_range_is_still_a_hard_error() {
        let dir = fresh_dir("repl_gap");
        let mut wal = Wal::open(&dir, 0, 2).unwrap();
        for ev in &events() {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();
        let frontier = wal.seq();
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        fs::remove_file(&segments[1].1).unwrap();
        let err = read_frames(&dir, 0, 100, frontier).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("gap"), "{err}");
    }

    #[test]
    fn fencing_epoch_reads_zero_then_bumps_monotonically() {
        let dir = fresh_dir("fencing");
        assert_eq!(read_fencing_epoch(&dir).unwrap(), 0, "missing dir ⇒ 0");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_fencing_epoch(&dir).unwrap(), 0, "missing file ⇒ 0");
        assert_eq!(bump_fencing_epoch(&dir).unwrap(), 1);
        assert_eq!(bump_fencing_epoch(&dir).unwrap(), 2);
        assert_eq!(read_fencing_epoch(&dir).unwrap(), 2);
        write_fencing_epoch(&dir, 40).unwrap();
        assert_eq!(bump_fencing_epoch(&dir).unwrap(), 41);
        // Corruption is a typed error, not a silent epoch reset (a
        // reset would un-fence a deposed leader).
        fs::write(dir.join("fencing.epoch"), b"not a number").unwrap();
        assert!(read_fencing_epoch(&dir).is_err());
    }

    #[test]
    fn a_missing_middle_segment_is_a_hard_error_not_silent_data_loss() {
        let (graph, probs) = setup(300, 11);
        let cfg = config(3);
        let dir = fresh_dir("gap");

        let mut wal = Wal::open(&dir, 0, 2).unwrap();
        for ev in &events() {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Delete a middle segment without a covering checkpoint.
        let segments = list_segments(&dir).unwrap();
        fs::remove_file(&segments[1].1).unwrap();

        match recover(&dir, &graph, &probs, &cfg) {
            Err(err) => {
                assert_eq!(err.kind(), ErrorKind::InvalidData);
                assert!(err.to_string().contains("gap"), "{err}");
            }
            Ok(_) => panic!("a log with a missing middle segment must not recover"),
        }
    }
}
