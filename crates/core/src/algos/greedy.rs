//! Algorithm 1 — the regret-greedy allocator, generic over a
//! [`SpreadOracle`].
//!
//! Each iteration finds the `(user, ad)` pair whose assignment maximally
//! decreases regret (requiring a strict decrease, per the paper's
//! footnote 5), subject to the user's attention bound, and commits it.
//! Instantiated with [`tirm_diffusion::McOracle`] this is the paper's
//! "Greedy with MC simulations" — accurate but prohibitively slow beyond
//! small graphs, which is exactly the scalability cliff §5 motivates TIRM
//! with. With [`tirm_diffusion::ExactOracle`] it is used by the tests that
//! verify the Theorem 2–4 regret bounds.

use crate::algos::DROP_TOL;
use crate::allocation::Allocation;
use crate::metrics::AlgoStats;
use crate::problem::ProblemInstance;
use crate::regret::ad_regret;
use std::time::Instant;
use tirm_diffusion::SpreadOracle;
use tirm_graph::NodeId;

/// Options for the greedy allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyOptions {
    /// Safety cap on total seeds (guards pathological oracles); `None`
    /// lets the regret criterion terminate alone.
    pub max_total_seeds: Option<usize>,
}

#[allow(clippy::needless_range_loop)] // parallel arrays indexed by ad id
/// Runs Algorithm 1 with the supplied spread oracle.
///
/// The oracle answers in *spread* (expected clicks); revenue scaling by
/// `cpe(i)` and the CTP gating of marginals are the oracle's contract:
/// `oracle.marginal(ad, S, base, x)` must already include `δ(x, ad)`
/// whenever the underlying model demands it (both [`tirm_diffusion::McOracle`]
/// and [`tirm_diffusion::ExactOracle`] simulate CTPs directly).
pub fn greedy_allocate<O: SpreadOracle>(
    problem: &ProblemInstance<'_>,
    oracle: &mut O,
    opts: GreedyOptions,
) -> (Allocation, AlgoStats) {
    assert_eq!(oracle.num_ads(), problem.num_ads());
    let start = Instant::now();
    let h = problem.num_ads();
    let n = problem.num_nodes();
    let mut alloc = Allocation::empty(h, n);
    let mut spread = vec![0.0f64; h];
    let mut oracle_calls = 0usize;

    loop {
        if let Some(cap) = opts.max_total_seeds {
            if alloc.total_seeds() >= cap {
                break;
            }
        }
        // Find the globally best (user, ad) pair by full scan — Algorithm 1
        // verbatim (line 3).
        let mut best: Option<(NodeId, usize, f64, f64)> = None; // (u, ad, drop, new_spread_gain)
        for ad in 0..h {
            let budget = problem.target_budget(ad);
            let cpe = problem.ads[ad].cpe;
            let seeds_len = alloc.seeds(ad).len();
            let current_regret = ad_regret(budget, cpe * spread[ad], problem.lambda, seeds_len);
            for u in 0..n as NodeId {
                if !alloc.can_assign(problem, u, ad) {
                    continue;
                }
                let mg = oracle.marginal(ad, alloc.seeds(ad), spread[ad], u);
                oracle_calls += 1;
                let new_regret = ad_regret(
                    budget,
                    cpe * (spread[ad] + mg),
                    problem.lambda,
                    seeds_len + 1,
                );
                let drop = current_regret - new_regret;
                if drop > DROP_TOL && best.is_none_or(|(_, _, d, _)| drop > d) {
                    best = Some((u, ad, drop, mg));
                }
            }
        }
        match best {
            Some((u, ad, _drop, mg)) => {
                alloc.assign(u, ad);
                spread[ad] += mg;
            }
            None => break,
        }
    }

    let stats = AlgoStats {
        runtime: start.elapsed(),
        seeds_per_ad: (0..h).map(|i| alloc.seeds(i).len()).collect(),
        estimated_revenue: (0..h).map(|i| problem.ads[i].cpe * spread[i]).collect(),
        memory_bytes: 0,
        rr_sets_per_ad: vec![],
        oracle_calls,
        ..AlgoStats::default()
    };
    (alloc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, Attention};
    use tirm_diffusion::ExactOracle;
    use tirm_graph::generators;
    use tirm_topics::{CtpTable, TopicDist};

    /// Star with hub + 9 leaves, p = 0.5, δ = 1, cpe = 1.
    /// Spreads: hub = 1 + 9·0.5 = 5.5, leaf = 1.
    fn star_problem(budget: f64, lambda: f64) -> (tirm_graph::DiGraph, f64) {
        let _ = lambda;
        (generators::star(10), budget)
    }

    #[test]
    fn fills_budget_without_overshoot_when_possible() {
        let (g, budget) = star_problem(3.0, 0.0);
        let ads = vec![Advertiser::new(budget, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.5f32; g.num_edges()]];
        let ctp = CtpTable::constant(10, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut oracle = ExactOracle::new(&g, &p.edge_probs, vec![Some(p.ctp.ad(0))]);
        let (alloc, stats) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
        // Hub alone gives 5.5 (overshoot regret 2.5); three leaves give 3.0
        // exactly (regret 0). Greedy's first pick is a leaf (drop 1 vs hub's
        // 3.0−|3−5.5| = 0.5 → leaf drop 1.0 beats... hub drop = 3−2.5 = 0.5).
        assert!(alloc.seeds(0).len() == 3, "{:?}", alloc.seeds(0));
        assert!(!alloc.seeds(0).contains(&0), "hub would overshoot");
        assert!((stats.estimated_revenue[0] - 3.0).abs() < 1e-9);
        alloc.validate(&p).unwrap();
    }

    #[test]
    fn takes_hub_when_budget_is_large() {
        let (g, budget) = star_problem(9.0, 0.0);
        let ads = vec![Advertiser::new(budget, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.5f32; g.num_edges()]];
        let ctp = CtpTable::constant(10, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut oracle = ExactOracle::new(&g, &p.edge_probs, vec![Some(p.ctp.ad(0))]);
        let (alloc, _) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
        assert!(alloc.seeds(0).contains(&0), "hub is the best first pick");
    }

    #[test]
    fn lambda_discourages_weak_seeds() {
        // With λ larger than any marginal revenue, nothing gets allocated.
        let g = generators::path(5);
        let ads = vec![Advertiser::new(3.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.0f32; g.num_edges()]];
        let ctp = CtpTable::constant(5, 1, 0.1);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.5);
        let mut oracle = ExactOracle::new(&g, &p.edge_probs, vec![Some(p.ctp.ad(0))]);
        let (alloc, _) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
        assert_eq!(alloc.total_seeds(), 0);
    }

    #[test]
    fn attention_bound_shared_across_ads() {
        // Two ads, one high-value user, κ = 1: only one ad gets her.
        let g = generators::path(2);
        let ads = vec![
            Advertiser::new(1.0, 1.0, TopicDist::single(1, 0)),
            Advertiser::new(1.0, 1.0, TopicDist::single(1, 0)),
        ];
        let probs = vec![vec![0.0f32; g.num_edges()]; 2];
        let ctp = CtpTable::direct(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut oracle = ExactOracle::new(
            &g,
            &p.edge_probs,
            vec![Some(p.ctp.ad(0)), Some(p.ctp.ad(1))],
        );
        let (alloc, _) = greedy_allocate(&p, &mut oracle, GreedyOptions::default());
        assert_eq!(alloc.total_seeds(), 1, "user 0 can serve only one ad");
        alloc.validate(&p).unwrap();
    }

    #[test]
    fn max_seed_cap_halts() {
        let g = generators::star(10);
        let ads = vec![Advertiser::new(8.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.1f32; g.num_edges()]];
        let ctp = CtpTable::constant(10, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut oracle = ExactOracle::new(&g, &p.edge_probs, vec![Some(p.ctp.ad(0))]);
        let (alloc, _) = greedy_allocate(
            &p,
            &mut oracle,
            GreedyOptions {
                max_total_seeds: Some(2),
            },
        );
        assert_eq!(alloc.total_seeds(), 2);
    }
}
