//! Fig. 6(a–d): scalability — running time of TIRM and GREEDY-IRIE on the
//! DBLP-like network (vs number of advertisers h, and vs per-advertiser
//! budget) and of TIRM on the LIVEJOURNAL-like network (same two sweeps).
//!
//! Setup follows §6.2: Weighted-Cascade probabilities, CPE = CTP = 1,
//! λ = 0, κ = 1, ε = 0.2, all ads identical (full competition).
//! GREEDY-IRIE is skipped on LIVEJOURNAL-like inputs exactly as in the
//! paper ("excluded due to its huge running time") unless
//! `TIRM_FIG6_IRIE_LJ=1`.
//!
//! Expected shape: TIRM scales ~linearly in h and stays roughly flat vs
//! budget; GREEDY-IRIE grows super-linearly vs budget and is an order of
//! magnitude slower at moderate h.

use std::time::Instant;
use tirm_bench::{banner, tirm_options, write_json, AlgoKind};
use tirm_core::report::{fnum, Table};
use tirm_core::{Attention, ProblemInstance};
use tirm_topics::CtpTable;
use tirm_workloads::{campaigns, Dataset, DatasetKind, ScaleConfig};

struct ScaleRow {
    dataset: &'static str,
    algo: &'static str,
    h: usize,
    budget: f64,
    seconds: f64,
    seeds: usize,
    memory_bytes: usize,
    rr_sets: usize,
}

fn run_cell(d: &Dataset, algo: AlgoKind, h: usize, budget: f64, rows: &mut Vec<ScaleRow>) -> f64 {
    let ads = campaigns::uniform_campaign(h, budget);
    let flat: Vec<f32> = (0..d.graph.num_edges() as u32)
        .map(|e| d.topic_probs.get(e, 0))
        .collect();
    let edge_probs = vec![flat; h];
    let ctp = CtpTable::constant(d.graph.num_nodes(), h, 1.0);
    let problem = ProblemInstance::new(&d.graph, ads, edge_probs, ctp, Attention::Uniform(1), 0.0);
    let t0 = Instant::now();
    let (alloc, stats) = match algo {
        AlgoKind::Tirm => tirm_core::tirm_allocate(&problem, tirm_options(false, 0x5ca1e)),
        AlgoKind::GreedyIrie => algo.run(&problem, false, 0x5ca1e),
        _ => unreachable!("fig6 compares TIRM and GREEDY-IRIE only"),
    };
    let secs = t0.elapsed().as_secs_f64();
    alloc.validate(&problem).expect("valid allocation");
    eprintln!(
        "  {} {} h={h} B={budget:.0}: {:.1}s, {} seeds, {:.2} GB, {} RR sets",
        d.kind.name(),
        algo.name(),
        secs,
        alloc.total_seeds(),
        stats.memory_bytes as f64 / 1e9,
        stats.rr_sets_per_ad.iter().sum::<usize>()
    );
    rows.push(ScaleRow {
        dataset: d.kind.name(),
        algo: algo.name(),
        h,
        budget,
        seconds: secs,
        seeds: alloc.total_seeds(),
        memory_bytes: stats.memory_bytes,
        rr_sets: stats.rr_sets_per_ad.iter().sum(),
    });
    secs
}

fn main() {
    let cfg = ScaleConfig::from_env();
    let mut rows: Vec<ScaleRow> = Vec::new();
    let irie_on_lj = std::env::var("TIRM_FIG6_IRIE_LJ").is_ok_and(|v| v == "1");

    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let d = Dataset::generate(kind, &cfg, 0x5ca1e + kind as u64);
        banner(
            &format!(
                "fig6: {} ({} nodes, {} edges)",
                kind.name(),
                d.graph.num_nodes(),
                d.graph.num_edges()
            ),
            &cfg,
        );
        // Per-advertiser budgets, scaled like the paper's (5K on DBLP,
        // 80K on LIVEJOURNAL, at their original sizes).
        let base_budget = match kind {
            DatasetKind::Dblp => 5_000.0 * d.size_ratio,
            _ => 80_000.0 * d.size_ratio,
        };
        let algos: &[AlgoKind] = match kind {
            DatasetKind::Dblp => &[AlgoKind::Tirm, AlgoKind::GreedyIrie],
            _ if irie_on_lj => &[AlgoKind::Tirm, AlgoKind::GreedyIrie],
            _ => &[AlgoKind::Tirm],
        };

        // (a)/(c): vary h with fixed budget.
        let mut t = Table::new(&["h", "TIRM (s)", "IRIE (s)"]);
        for h in [1usize, 5, 10, 15, 20] {
            let mut cells = vec![h.to_string()];
            for algo in [AlgoKind::Tirm, AlgoKind::GreedyIrie] {
                if algos.contains(&algo) {
                    let secs = run_cell(&d, algo, h, base_budget, &mut rows);
                    cells.push(fnum(secs));
                } else {
                    cells.push("-".into());
                }
            }
            t.row(cells);
        }
        println!(
            "\nFig. 6 — {}: running time vs number of advertisers (B = {:.0})",
            kind.name(),
            base_budget
        );
        println!("{}", t.render());

        // (b)/(d): vary budget with h = 5.
        let mut t = Table::new(&["budget", "TIRM (s)", "IRIE (s)"]);
        let sweep: Vec<f64> = match kind {
            DatasetKind::Dblp => [2_000.0, 5_000.0, 10_000.0, 20_000.0, 30_000.0]
                .iter()
                .map(|b| b * d.size_ratio)
                .collect(),
            _ => [50_000.0, 100_000.0, 150_000.0, 200_000.0, 250_000.0]
                .iter()
                .map(|b| b * d.size_ratio)
                .collect(),
        };
        for budget in sweep {
            let mut cells = vec![fnum(budget)];
            for algo in [AlgoKind::Tirm, AlgoKind::GreedyIrie] {
                if algos.contains(&algo) {
                    let secs = run_cell(&d, algo, 5, budget, &mut rows);
                    cells.push(fnum(secs));
                } else {
                    cells.push("-".into());
                }
            }
            t.row(cells);
        }
        println!(
            "\nFig. 6 — {}: running time vs per-advertiser budget (h = 5)",
            kind.name()
        );
        println!("{}", t.render());
    }

    let json: Vec<_> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "dataset": r.dataset, "algo": r.algo, "h": r.h,
                "budget": r.budget, "seconds": r.seconds, "seeds": r.seeds,
                "memory_bytes": r.memory_bytes, "rr_sets": r.rr_sets,
            })
        })
        .collect();
    write_json("fig6", &json);
}
