//! # tirm — Viral Marketing Meets Social Advertising
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *"Viral Marketing Meets Social Advertising: Ad Allocation
//! with Minimum Regret"* (Aslay, Lu, Bonchi, Goyal, Lakshmanan — VLDB 2015).
//!
//! The workspace implements:
//! * the TIC-CTP propagation model on a CSR social graph,
//! * the REGRET-MINIMIZATION problem (budgets, CPEs, attention bounds,
//!   seed-size penalty λ),
//! * the paper's algorithms — MYOPIC, MYOPIC+, GREEDY (Alg. 1),
//!   GREEDY-IRIE and the scalable **TIRM** (Alg. 2) built on
//!   reverse-reachable set sampling,
//! * Monte-Carlo and exact evaluation, plus the full experiment harness
//!   regenerating every table and figure of the paper's §6.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use tirm_core as core;
pub use tirm_diffusion as diffusion;
pub use tirm_graph as graph;
pub use tirm_irie as irie;
pub use tirm_obs as obs;
pub use tirm_online as online;
pub use tirm_rrset as rrset;
pub use tirm_server as server;
pub use tirm_topics as topics;
pub use tirm_workloads as workloads;

pub use tirm_core::prelude::*;
