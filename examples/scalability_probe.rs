//! Scalability probe: TIRM on a DBLP-shaped co-authorship network under
//! the §6.2 stress setup (Weighted-Cascade, CPE = CTP = 1, κ = 1, full
//! competition), sweeping the number of advertisers.
//!
//! ```sh
//! TIRM_SCALE=2 cargo run --release --example scalability_probe
//! ```

use std::time::Instant;
use tirm::core::report::{fnum, Table};
use tirm::{tirm_allocate, Attention, ProblemInstance, TirmOptions};
use tirm_topics::CtpTable;
use tirm_workloads::{campaigns, Dataset, DatasetKind, ScaleConfig};

fn main() {
    if std::env::var("TIRM_SCALE").is_err() {
        std::env::set_var("TIRM_SCALE", "0.5");
    }
    let cfg = ScaleConfig::from_env();
    let d = Dataset::generate(DatasetKind::Dblp, &cfg, 31);
    let budget = 5_000.0 * d.size_ratio;
    println!(
        "DBLP-like: {} nodes, {} arcs; per-advertiser budget {:.0}",
        d.graph.num_nodes(),
        d.graph.num_edges(),
        budget
    );

    let flat: Vec<f32> = (0..d.graph.num_edges() as u32)
        .map(|e| d.topic_probs.get(e, 0))
        .collect();

    let mut t = Table::new(&["h", "seconds", "seeds", "RR sets", "memory MB"]);
    for h in [1usize, 2, 4, 8] {
        let ads = campaigns::uniform_campaign(h, budget);
        let edge_probs = vec![flat.clone(); h];
        let ctp = CtpTable::constant(d.graph.num_nodes(), h, 1.0);
        let problem =
            ProblemInstance::new(&d.graph, ads, edge_probs, ctp, Attention::Uniform(1), 0.0);
        let t0 = Instant::now();
        let (alloc, stats) = tirm_allocate(
            &problem,
            TirmOptions {
                eps: 0.2,
                seed: 8,
                max_theta_per_ad: Some(400_000),
                ..TirmOptions::default()
            },
        );
        let secs = t0.elapsed().as_secs_f64();
        t.row(vec![
            h.to_string(),
            fnum(secs),
            alloc.total_seeds().to_string(),
            stats.rr_sets_per_ad.iter().sum::<usize>().to_string(),
            fnum(stats.memory_bytes as f64 / 1e6),
        ]);
        println!("h={h}: {secs:.1}s, {} seeds", alloc.total_seeds());
    }
    println!("\n{}", t.render());
    println!("expected shape (paper Fig. 6): near-linear growth in h");
}
