//! Compressed-sparse-row digraph with forward and reverse adjacency.

/// Node identifier. `u32` keeps adjacency arrays compact (the paper's largest
/// graph, LIVEJOURNAL, has 4.8M nodes — far below `u32::MAX`).
pub type NodeId = u32;

/// Canonical edge identifier: the position of the arc in the forward
/// (out-adjacency) CSR ordering. Reverse adjacency stores, for every
/// in-neighbour position, the canonical id of the corresponding arc so that
/// per-edge attribute vectors (e.g. per-ad influence probabilities) can be
/// shared between forward simulation and reverse-reachable sampling.
pub type EdgeId = u32;

/// Borrowed views of the five raw CSR arrays, in snapshot serialization
/// order: `(out_offsets, out_targets, in_offsets, in_sources,
/// in_edge_ids)`. See [`DiGraph::csr_parts`].
pub type CsrParts<'a> = (
    &'a [u32],
    &'a [NodeId],
    &'a [u32],
    &'a [NodeId],
    &'a [EdgeId],
);

/// An immutable directed graph in CSR form.
///
/// Both directions are materialised:
/// * `out_offsets`/`out_targets` — forward adjacency, defining edge ids;
/// * `in_offsets`/`in_sources`/`in_edge_ids` — reverse adjacency, each entry
///   carrying the canonical [`EdgeId`] of the arc it mirrors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) in_edge_ids: Vec<EdgeId>,
}

impl DiGraph {
    /// Builds a graph from an arc list. Arcs are deduplicated and self-loops
    /// removed; see [`crate::GraphBuilder`] for the full pipeline.
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = crate::GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Builds a graph from a finished forward CSR whose per-node target
    /// runs are already sorted, deduplicated and self-loop-free — the
    /// reverse adjacency is derived by counting sort. This is the single
    /// finalisation step shared by [`crate::GraphBuilder::build`] and the
    /// streaming [`crate::build_from_stream`] path.
    pub(crate) fn from_out_csr(out_offsets: Vec<u32>, out_targets: Vec<NodeId>) -> Self {
        let n = out_offsets.len() - 1;
        let m = out_targets.len();
        debug_assert_eq!(*out_offsets.last().unwrap() as usize, m);

        let mut in_offsets = vec![0u32; n + 1];
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_edge_ids = vec![0 as EdgeId; m];
        for u in 0..n {
            let lo = out_offsets[u] as usize;
            let hi = out_offsets[u + 1] as usize;
            for (i, &target) in out_targets[lo..hi].iter().enumerate() {
                let v = target as usize;
                let slot = cursor[v] as usize;
                in_sources[slot] = u as NodeId;
                in_edge_ids[slot] = (lo + i) as EdgeId;
                cursor[v] += 1;
            }
        }

        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_edge_ids,
        }
    }

    /// Reassembles a graph from its five raw CSR arrays (no re-sorting,
    /// no reverse-adjacency rebuild). Structural invariants are checked —
    /// lengths, offset monotonicity, tail sums, `O(m)` id-range scans,
    /// and that every out-adjacency run is strictly increasing (sorted,
    /// duplicate- and self-loop-consistent — `edge_id`/`has_edge` binary
    /// search those runs). Full forward/reverse mirror consistency is the
    /// responsibility of the producer. The snapshot loader uses the
    /// crate-internal trusted variant instead, where the file checksum
    /// already proves the arrays are what a valid graph wrote.
    pub fn from_csr_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<u32>,
        in_sources: Vec<NodeId>,
        in_edge_ids: Vec<EdgeId>,
    ) -> Result<Self, String> {
        let g = Self::from_csr_parts_trusted(
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_edge_ids,
        )?;
        let n = g.num_nodes();
        let m = g.num_edges();
        if g.out_targets.iter().any(|&v| v as usize >= n)
            || g.in_sources.iter().any(|&u| u as usize >= n)
        {
            return Err("node id out of range".into());
        }
        if g.in_edge_ids.iter().any(|&e| e as usize >= m) {
            return Err("edge id out of range".into());
        }
        for u in 0..n {
            let run = g.out_neighbors(u as NodeId);
            if run.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("out-adjacency of node {u} not strictly increasing"));
            }
        }
        Ok(g)
    }

    /// [`Self::from_csr_parts`] minus the `O(m)` id-range scans — for
    /// callers whose arrays carry their own integrity proof (the snapshot
    /// loader verifies a whole-file checksum first). Cheap `O(n)` checks
    /// (lengths, offset monotonicity, tail sums) still run.
    pub(crate) fn from_csr_parts_trusted(
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<u32>,
        in_sources: Vec<NodeId>,
        in_edge_ids: Vec<EdgeId>,
    ) -> Result<Self, String> {
        if out_offsets.is_empty() || in_offsets.len() != out_offsets.len() {
            return Err("offset array length mismatch".into());
        }
        let m = out_targets.len();
        if in_sources.len() != m || in_edge_ids.len() != m {
            return Err("edge array length mismatch".into());
        }
        for offs in [&out_offsets, &in_offsets] {
            if offs[0] != 0 {
                return Err("offsets must start at 0".into());
            }
            if offs.windows(2).any(|w| w[0] > w[1]) {
                return Err("offsets not monotone".into());
            }
            if *offs.last().unwrap() as usize != m {
                return Err("offsets tail does not match edge count".into());
            }
        }
        Ok(DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_edge_ids,
        })
    }

    /// The five raw CSR arrays, in snapshot serialization order:
    /// `(out_offsets, out_targets, in_offsets, in_sources, in_edge_ids)`.
    pub fn csr_parts(&self) -> CsrParts<'_> {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.in_offsets,
            &self.in_sources,
            &self.in_edge_ids,
        )
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `u` (number of followers that see `u`'s posts).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as usize
    }

    /// In-degree of `v` (number of users `v` follows).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Iterates over `u`'s out-arcs as `(edge_id, target)` pairs.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        (lo..hi).map(move |i| (i as EdgeId, self.out_targets[i]))
    }

    /// Iterates over `v`'s in-arcs as `(edge_id, source)` pairs, where
    /// `edge_id` is the canonical (forward) id of the arc `source → v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.in_edge_ids[i], self.in_sources[i]))
    }

    /// Position range of `v`'s in-run inside the raw reverse-CSR arrays
    /// ([`in_sources_raw`](Self::in_sources_raw) /
    /// [`in_edge_ids_raw`](Self::in_edge_ids_raw)). Lets hot loops walk an
    /// in-run as contiguous slices instead of through the `in_edges`
    /// iterator, and lets per-arc side tables (e.g. precomputed sampling
    /// thresholds) be indexed by reverse-CSR position.
    #[inline]
    pub fn in_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.in_offsets[v as usize] as usize..self.in_offsets[v as usize + 1] as usize
    }

    /// Raw reverse-CSR source array; positions come from
    /// [`in_range`](Self::in_range). Within one in-run, entries are
    /// ordered by ascending source id (the reverse build's counting sort
    /// guarantees it) — hot paths rely on that order being stable.
    #[inline]
    pub fn in_sources_raw(&self) -> &[NodeId] {
        &self.in_sources
    }

    /// Raw reverse-CSR canonical-edge-id array; positions come from
    /// [`in_range`](Self::in_range).
    #[inline]
    pub fn in_edge_ids_raw(&self) -> &[EdgeId] {
        &self.in_edge_ids
    }

    /// Out-neighbour slice of `u` (targets only).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbour slice of `v` (sources only).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Returns the canonical id of arc `(u, v)` if present (binary search on
    /// the sorted out-adjacency of `u`).
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        self.out_targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|p| (lo + p) as EdgeId)
    }

    /// True iff arc `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Source and target of a canonical edge id. `O(log n)` (binary search on
    /// the offset array for the source); intended for diagnostics, not hot
    /// loops — hot loops already know the endpoint they iterate from.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let v = self.out_targets[e as usize];
        // Find u: the largest u with out_offsets[u] <= e.
        let u = match self.out_offsets.binary_search(&e) {
            Ok(mut i) => {
                // Skip empty adjacency runs mapping to the same offset.
                while i + 1 < self.out_offsets.len() && self.out_offsets[i + 1] == e {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (u as NodeId, v)
    }

    /// Iterates over all arcs as `(edge_id, source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |u| self.out_edges(u).map(move |(e, v)| (e, u, v)))
    }

    /// Total bytes held by the adjacency arrays (used for memory reporting).
    pub fn memory_bytes(&self) -> usize {
        4 * (self.out_offsets.len()
            + self.out_targets.len()
            + self.in_offsets.len()
            + self.in_sources.len()
            + self.in_edge_ids.len())
    }

    /// Reverses the graph: arc `(u,v)` becomes `(v,u)`. Useful for tests and
    /// for treating an undirected edge list as bidirectional flow.
    pub fn reversed(&self) -> DiGraph {
        let edges: Vec<(NodeId, NodeId)> = self.edges().map(|(_, u, v)| (v, u)).collect();
        DiGraph::from_edges(self.num_nodes(), edges)
    }

    /// Internal consistency check: offsets monotone, reverse adjacency
    /// mirrors forward adjacency exactly. Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.in_offsets.len() != n + 1 {
            return Err("in_offsets length mismatch".into());
        }
        for w in self.out_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("out_offsets not monotone".into());
            }
        }
        for w in self.in_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("in_offsets not monotone".into());
            }
        }
        if *self.out_offsets.last().unwrap() as usize != self.out_targets.len() {
            return Err("out_offsets tail mismatch".into());
        }
        if *self.in_offsets.last().unwrap() as usize != self.in_sources.len() {
            return Err("in_offsets tail mismatch".into());
        }
        if self.in_sources.len() != self.out_targets.len() {
            return Err("edge count mismatch between directions".into());
        }
        if self.in_edge_ids.len() != self.in_sources.len() {
            return Err("in_edge_ids length mismatch".into());
        }
        // Every reverse entry must name a real forward arc.
        for v in 0..n as NodeId {
            for (e, u) in self.in_edges(v) {
                if self.out_targets[e as usize] != v {
                    return Err(format!("in-edge id {e} of node {v} maps to wrong target"));
                }
                let lo = self.out_offsets[u as usize];
                let hi = self.out_offsets[u as usize + 1];
                if e < lo || e >= hi {
                    return Err(format!("in-edge id {e} not within source {u}'s range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn edge_id_round_trip() {
        let g = diamond();
        for (e, u, v) in g.edges().collect::<Vec<_>>() {
            assert_eq!(g.edge_id(u, v), Some(e));
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
        assert_eq!(g.edge_id(3, 0), None);
        assert!(!g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn in_edges_carry_canonical_ids() {
        let g = diamond();
        let mut seen: Vec<(EdgeId, NodeId)> = g.in_edges(3).collect();
        seen.sort_unstable();
        let e13 = g.edge_id(1, 3).unwrap();
        let e23 = g.edge_id(2, 3).unwrap();
        let mut want = vec![(e13, 1), (e23, 2)];
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn validate_accepts_well_formed() {
        diamond().validate().unwrap();
    }

    #[test]
    fn from_csr_parts_round_trips_and_rejects_garbage() {
        let g = diamond();
        let (oo, ot, io, is_, ie) = g.csr_parts();
        let rebuilt = DiGraph::from_csr_parts(
            oo.to_vec(),
            ot.to_vec(),
            io.to_vec(),
            is_.to_vec(),
            ie.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, g);

        // Unsorted out-run: passes every length/offset check, but
        // edge_id()/has_edge() binary-search the runs — must be rejected.
        let mut bad = ot.to_vec();
        bad.swap(0, 1); // node 0's run becomes [2, 1]
        assert!(
            DiGraph::from_csr_parts(oo.to_vec(), bad, io.to_vec(), is_.to_vec(), ie.to_vec())
                .unwrap_err()
                .contains("strictly increasing")
        );

        // Out-of-range target id.
        let mut bad = ot.to_vec();
        bad[0] = 99;
        assert!(
            DiGraph::from_csr_parts(oo.to_vec(), bad, io.to_vec(), is_.to_vec(), ie.to_vec())
                .is_err()
        );

        // Offsets tail not matching the edge count.
        let mut bad = oo.to_vec();
        *bad.last_mut().unwrap() += 1;
        assert!(
            DiGraph::from_csr_parts(bad, ot.to_vec(), io.to_vec(), is_.to_vec(), ie.to_vec())
                .is_err()
        );
    }

    #[test]
    fn reversed_flips_arcs() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(3, 2));
        assert!(!r.has_edge(0, 1));
        r.validate().unwrap();
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = DiGraph::from_edges(3, Vec::<(NodeId, NodeId)>::new());
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(1), 0);
        g.validate().unwrap();
    }

    #[test]
    fn edge_endpoints_with_empty_runs() {
        // Node 1 has no out-edges; make sure the offset binary search still
        // attributes edges correctly around it.
        let g = DiGraph::from_edges(4, vec![(0, 2), (2, 3), (3, 0)]);
        for (e, u, v) in g.edges().collect::<Vec<_>>() {
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
    }
}
