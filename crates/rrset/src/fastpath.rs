//! The sampling hot path: integer coin thresholds, block-drawn RNG words
//! and the cache-local (degree-relabeled) mark layout.
//!
//! Everything in this module is **bit-stream preserving**: a sampler run
//! through [`FastPath`] draws exactly the same RNG words and emits exactly
//! the same sets as the plain [`crate::RrSampler`] walk, so deterministic
//! baselines do not move. Three transformations stack:
//!
//! * **Thresholds.** The per-arc coin `rng.gen::<f32>() < p` costs a
//!   gather (`probs[in_edge_ids[pos]]`), an int→float convert and a float
//!   compare per arc. The vendored rand draws `gen::<f32>()` as
//!   `(next_u32() >> 8) as f32 · 2⁻²⁴` with `next_u32 = (next_u64() >> 32)`,
//!   i.e. the float is `x · 2⁻²⁴` for the 24-bit integer
//!   `x = (w >> 40)` of the raw word `w`. Since every such float is
//!   exactly representable, `x·2⁻²⁴ < p  ⇔  x < ⌈p·2²⁴⌉` — so
//!   [`coin_threshold`] precomputes `t = ⌈p·2²⁴⌉` per *in-CSR position*
//!   (sequential access, no gather) and the inner loop compares integers:
//!   `(w >> 40) < t`. `t == 0 ⇔ p ≤ 0`, which mirrors the slow path's
//!   `p > 0.0 &&` short-circuit: dead arcs skip the coin *without*
//!   consuming RNG state in both paths.
//! * **Block RNG (kept off the hot path).** [`BlockRng`] refills a
//!   64-word buffer from the inner generator wholesale; word order is
//!   untouched — `next_u64` pops the same sequence, and `next_u32` keeps
//!   the vendored convention of the word's high half. Measurement
//!   (`sampler_inner_loop` microbench) put the buffered wrapper ~2×
//!   behind the bare generator in the BFS loop — per-draw buffer loads
//!   and stores lose to xoshiro state the compiler keeps in registers —
//!   so production shards drive `SmallRng` directly and `BlockRng`
//!   remains as the stream-equivalence witness.
//! * **Relabeled marks.** [`SamplingLayout::degree_ordered`] carries a
//!   degree-ordered permutation (via [`tirm_graph::Relabeling`]): the BFS
//!   still walks the *original* CSR in original arc order — same RNG
//!   stream, same emitted (original) node ids — but indexes its mark
//!   array through precomputed new ids (`in_sources_new[pos]`), so the
//!   hottest rows of the O(n) mark table concentrate in a cache-resident
//!   prefix. User-facing ids never change; the permutation exists only
//!   inside the mark indexing.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;
use tirm_graph::{DiGraph, NodeId, Relabeling};

/// `⌈p·2²⁴⌉` clamped to `[0, 2²⁴]` — the integer coin threshold with
/// `x < t ⇔ x·2⁻²⁴ < p` for every 24-bit `x` (see module docs for why
/// this is exact). `t == 0` iff `p ≤ 0` (skip without drawing);
/// `t == 2²⁴` iff `p ≥ 1` (always-true coin that still consumes a word,
/// exactly like `gen::<f32>() < 1.0`).
#[inline]
pub fn coin_threshold(p: f32) -> u32 {
    if p <= 0.0 {
        return 0;
    }
    // All in f32: multiplying by 2²⁴ only shifts the exponent (exact for
    // every finite f32, including subnormals) and `ceil` is exact, so
    // this equals the same computation routed through f64 — but the
    // O(m)-per-ad table build skips the widen/narrow.
    ((p * 16_777_216.0).ceil() as u64).min(1 << 24) as u32
}

/// Optional degree-ordered mark indexing, shared across every ad of a run.
#[derive(Clone, Debug)]
struct RelabelArrays {
    /// `new_of_old[old] = new` — used once per sample for the root.
    new_of_old: Vec<NodeId>,
    /// Per in-CSR position: the *new* id of that arc's source — the
    /// position-ordered gather of `new_of_old[in_sources[pos]]`.
    in_sources_new: Vec<NodeId>,
}

/// Mark-array layout for sampling: identity, or degree-ordered so hub
/// rows share cache lines. Build once per `(graph, mode)` and share via
/// `Arc` — it is read-only and `Sync`.
#[derive(Clone, Debug)]
pub struct SamplingLayout {
    relabel: Option<RelabelArrays>,
}

impl SamplingLayout {
    /// Identity layout: marks indexed by original node ids.
    pub fn identity() -> Self {
        SamplingLayout { relabel: None }
    }

    /// Degree-ordered layout: marks indexed by in-degree rank (hubs
    /// first). O(n log n + m) to build; sampling output is bit-identical
    /// to the identity layout by construction.
    pub fn degree_ordered(g: &DiGraph) -> Self {
        let r = Relabeling::by_in_degree(g);
        let new_of_old = r.new_of_old().to_vec();
        let in_sources_new = g
            .in_sources_raw()
            .iter()
            .map(|&s| new_of_old[s as usize])
            .collect();
        SamplingLayout {
            relabel: Some(RelabelArrays {
                new_of_old,
                in_sources_new,
            }),
        }
    }

    /// True when this layout permutes mark indices.
    pub fn is_relabeled(&self) -> bool {
        self.relabel.is_some()
    }

    /// Bytes held by the permutation tables.
    pub fn memory_bytes(&self) -> usize {
        self.relabel
            .as_ref()
            .map(|r| (r.new_of_old.capacity() + r.in_sources_new.capacity()) * 4)
            .unwrap_or(0)
    }
}

/// Per-ad fast sampling state: position-ordered coin thresholds plus a
/// shared [`SamplingLayout`]. Cheap to build (O(m) gather), read-only
/// and `Sync` — workers of the parallel engine share one per batch.
#[derive(Clone, Debug)]
pub struct FastPath {
    layout: Arc<SamplingLayout>,
    /// `th[pos] = coin_threshold(probs[in_edge_ids[pos]])`.
    th: Vec<u32>,
}

impl FastPath {
    /// Gathers `probs` (indexed by edge id) into in-CSR position order
    /// under `layout`.
    pub fn new(layout: Arc<SamplingLayout>, g: &DiGraph, probs: &[f32]) -> Self {
        assert_eq!(probs.len(), g.num_edges());
        let th = g
            .in_edge_ids_raw()
            .iter()
            .map(|&e| coin_threshold(probs[e as usize]))
            .collect();
        FastPath { layout, th }
    }

    /// Position-ordered thresholds.
    #[inline]
    pub fn thresholds(&self) -> &[u32] {
        &self.th
    }

    /// New id of `old` under the layout (identity when not relabeled).
    #[inline]
    pub fn mark_of(&self, old: NodeId) -> NodeId {
        match &self.layout.relabel {
            Some(r) => r.new_of_old[old as usize],
            None => old,
        }
    }

    /// Per-position mark indices when relabeled, `None` for identity.
    #[inline]
    pub(crate) fn in_sources_new(&self) -> Option<&[NodeId]> {
        self.layout.relabel.as_ref().map(|r| &r.in_sources_new[..])
    }

    /// The shared layout.
    pub fn layout(&self) -> &Arc<SamplingLayout> {
        &self.layout
    }

    /// Bytes held by the threshold table (the layout is shared and
    /// counted once by its owner).
    pub fn memory_bytes(&self) -> usize {
        self.th.capacity() * 4
    }
}

/// Block-buffered RNG: refills 64 words at a time from the inner
/// generator and serves them in order — the word stream (and the
/// vendored-rand `u32`/float derivations from it) is bit-identical to
/// driving the inner generator directly.
#[derive(Clone, Debug)]
pub struct BlockRng {
    inner: SmallRng,
    buf: [u64; 64],
    pos: usize,
}

impl BlockRng {
    /// Wraps a generator; the buffer starts empty.
    pub fn new(inner: SmallRng) -> Self {
        BlockRng {
            inner,
            buf: [0; 64],
            pos: 64,
        }
    }

    /// Bytes held by the buffer (for long-lived owners' accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<[u64; 64]>()
    }
}

impl SeedableRng for BlockRng {
    fn seed_from_u64(state: u64) -> Self {
        BlockRng::new(SmallRng::seed_from_u64(state))
    }
}

impl RngCore for BlockRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == 64 {
            for w in &mut self.buf {
                *w = self.inner.next_u64();
            }
            self.pos = 0;
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn threshold_matches_float_coin_exactly() {
        // Every 24-bit draw x maps to the float x·2⁻²⁴; the integer
        // comparison must agree with the float comparison for all
        // representative probabilities, including the degenerate ones.
        let probs = [
            0.0f32,
            -1.0,
            1.0,
            1.5,
            0.5,
            0.25,
            1.0 / 16_777_216.0,
            0.999_999_94, // largest f32 below 1
            2.0f32.powi(-24),
            2.0f32.powi(-25),
            0.1,
            0.3,
            0.7,
            f32::MIN_POSITIVE,
        ];
        let xs: Vec<u32> = (0..=24)
            .flat_map(|k| {
                let v = 1u32 << k;
                [v.saturating_sub(1), v.min((1 << 24) - 1)]
            })
            .chain((0..1000).map(|i| (i * 16_777) % (1 << 24)))
            .collect();
        for &p in &probs {
            let t = coin_threshold(p);
            assert!(t <= 1 << 24);
            assert_eq!(t == 0, p <= 0.0, "p={p}");
            for &x in &xs {
                let f = x as f32 * (1.0 / 16_777_216.0);
                assert_eq!(f < p, x < t, "p={p} x={x}");
            }
        }
    }

    #[test]
    fn block_rng_preserves_the_word_stream() {
        let mut plain = SmallRng::seed_from_u64(99);
        let mut block = BlockRng::seed_from_u64(99);
        for i in 0..1000 {
            // Mix call types: u32s come from the same words in both.
            if i % 3 == 0 {
                assert_eq!(plain.next_u32(), block.next_u32(), "draw {i}");
            } else {
                assert_eq!(plain.next_u64(), block.next_u64(), "draw {i}");
            }
        }
        // Float and range derivations ride on the same words.
        let a: f32 = plain.gen();
        let b: f32 = block.gen();
        assert_eq!(a, b);
        assert_eq!(plain.gen_range(0..1000usize), block.gen_range(0..1000usize));
    }

    #[test]
    fn degree_layout_is_a_bijection_over_marks() {
        let g = tirm_graph::generators::preferential_attachment(200, 3, 0.2, 8);
        let layout = SamplingLayout::degree_ordered(&g);
        let r = layout.relabel.as_ref().unwrap();
        let mut seen = [false; 200];
        for &nv in &r.new_of_old {
            assert!(!seen[nv as usize], "duplicate new id");
            seen[nv as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Position table is the gather of the node table.
        for (pos, &src) in g.in_sources_raw().iter().enumerate() {
            assert_eq!(r.in_sources_new[pos], r.new_of_old[src as usize]);
        }
        assert!(layout.is_relabeled());
        assert!(!SamplingLayout::identity().is_relabeled());
        assert!(layout.memory_bytes() > 0);
    }
}
