//! Influence-probability generators from §6 of the paper.
//!
//! * **Weighted-Cascade** — `p_{u,v} = 1 / indeg(v)` (Chen et al. \[7\]),
//!   used by the scalability experiments for all ads.
//! * **Exponential inverse-transform** — the EPINIONS setup: per-topic
//!   probabilities drawn from an exponential distribution via the inverse
//!   transform applied to `U(0,1)` samples. Arc probabilities must lie in
//!   `[0,1]`, so we interpret the paper's "mean 30" as rate 30 (mean 1/30 ≈
//!   0.033, matching realistic influence strengths) and clamp the tail.
//! * **Trivalency** — probabilities picked uniformly from
//!   `{0.1, 0.01, 0.001}` (a standard IC benchmark; used in ablations).
//! * **Topic-concentrated** — the FLIXSTER stand-in: each arc is "active"
//!   in a small random subset of topics with exponential magnitudes and
//!   near-zero elsewhere, mimicking probabilities learned by MLE for TIC.

use crate::edge_probs::TopicEdgeProbs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tirm_graph::{DiGraph, NodeId};

/// Weighted-Cascade probabilities: `p_{u,v} = 1/indeg(v)` for every arc.
pub fn weighted_cascade(g: &DiGraph) -> Vec<f32> {
    let mut out = vec![0.0f32; g.num_edges()];
    for v in 0..g.num_nodes() as NodeId {
        let d = g.in_degree(v);
        if d == 0 {
            continue;
        }
        let p = 1.0 / d as f32;
        for (e, _) in g.in_edges(v) {
            out[e as usize] = p;
        }
    }
    out
}

/// Single draw from `Exp(rate)` by inverse transform, clamped to `[0, 1]`.
#[inline]
pub fn exp_inverse_transform(uniform: f64, rate: f64) -> f32 {
    debug_assert!((0.0..1.0).contains(&uniform));
    ((-(1.0 - uniform).ln()) / rate).min(1.0) as f32
}

/// Exponential probabilities for `m` arcs (single topic).
pub fn exponential_probs(m: usize, rate: f64, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .map(|_| exp_inverse_transform(rng.gen::<f64>(), rate))
        .collect()
}

/// Per-topic exponential probabilities (the EPINIONS setup, §6.1):
/// every `(arc, topic)` entry drawn i.i.d. `Exp(rate)` clamped to `[0,1]`.
pub fn exponential_topic_probs(m: usize, k: usize, rate: f64, seed: u64) -> TopicEdgeProbs {
    let mut rng = SmallRng::seed_from_u64(seed);
    TopicEdgeProbs::from_fn(m, k, |_, _| exp_inverse_transform(rng.gen::<f64>(), rate))
}

/// Trivalency probabilities: uniform choice from `{0.1, 0.01, 0.001}`.
pub fn trivalency_probs(m: usize, seed: u64) -> Vec<f32> {
    const LEVELS: [f32; 3] = [0.1, 0.01, 0.001];
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m).map(|_| LEVELS[rng.gen_range(0..3)]).collect()
}

/// Topic-concentrated probabilities (the FLIXSTER stand-in, see DESIGN.md):
/// each arc gets `active_topics` randomly chosen "strong" topics with
/// `Exp(strong_rate)` magnitudes; the remaining topics receive a small
/// background probability `Exp(weak_rate)` (weak_rate ≫ strong_rate).
pub fn topic_concentrated_probs(
    m: usize,
    k: usize,
    active_topics: usize,
    strong_rate: f64,
    weak_rate: f64,
    seed: u64,
) -> TopicEdgeProbs {
    assert!(active_topics >= 1 && active_topics <= k);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = TopicEdgeProbs::new(m, k);
    let mut actives: Vec<usize> = Vec::with_capacity(active_topics);
    for e in 0..m {
        actives.clear();
        while actives.len() < active_topics {
            let z = rng.gen_range(0..k);
            if !actives.contains(&z) {
                actives.push(z);
            }
        }
        for z in 0..k {
            let rate = if actives.contains(&z) {
                strong_rate
            } else {
                weak_rate
            };
            t.set(e as u32, z, exp_inverse_transform(rng.gen::<f64>(), rate));
        }
    }
    t
}

/// Replicates a flat per-arc probability vector across `k` topics — all ads
/// see the same probabilities, which is exactly the scalability setup
/// ("`p^i_{u,v} = 1/|N_in(v)|` for all ads i", §6.2).
pub fn replicate_across_topics(flat: &[f32], k: usize) -> TopicEdgeProbs {
    TopicEdgeProbs::from_fn(flat.len(), k, |e, _| flat[e as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_graph::generators;

    #[test]
    fn weighted_cascade_sums_to_one_per_node() {
        let g = generators::erdos_renyi(60, 300, 3);
        let p = weighted_cascade(&g);
        for v in 0..60 as NodeId {
            if g.in_degree(v) == 0 {
                continue;
            }
            let sum: f32 = g.in_edges(v).map(|(e, _)| p[e as usize]).sum();
            assert!((sum - 1.0).abs() < 1e-4, "node {v} sums to {sum}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let p = exponential_probs(200_000, 30.0, 11);
        let mean: f64 = p.iter().map(|&x| x as f64).sum::<f64>() / p.len() as f64;
        assert!(
            (mean - 1.0 / 30.0).abs() < 2e-3,
            "sample mean {mean} far from 1/30"
        );
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn inverse_transform_monotone_and_clamped() {
        assert!(exp_inverse_transform(0.0, 5.0) == 0.0);
        assert!(exp_inverse_transform(0.9, 5.0) > exp_inverse_transform(0.5, 5.0));
        // Tiny rate pushes values above 1 → clamped.
        assert_eq!(exp_inverse_transform(0.999999, 0.001), 1.0);
    }

    #[test]
    fn trivalency_levels_only() {
        let p = trivalency_probs(1000, 5);
        for &x in &p {
            assert!((x - 0.1).abs() < 1e-9 || (x - 0.01).abs() < 1e-9 || (x - 0.001).abs() < 1e-9);
        }
    }

    #[test]
    fn topic_concentration_contrast() {
        let t = topic_concentrated_probs(2000, 10, 2, 8.0, 400.0, 9);
        // Strong topics should dominate: average of the two largest entries
        // per arc ≫ average of the rest.
        let mut strong_sum = 0.0f64;
        let mut weak_sum = 0.0f64;
        for e in 0..2000u32 {
            let mut row: Vec<f32> = t.edge(e).to_vec();
            row.sort_by(|a, b| b.partial_cmp(a).unwrap());
            strong_sum += (row[0] + row[1]) as f64 / 2.0;
            weak_sum += row[2..].iter().map(|&x| x as f64).sum::<f64>() / 8.0;
        }
        assert!(
            strong_sum > 10.0 * weak_sum,
            "strong {strong_sum} vs weak {weak_sum}"
        );
    }

    #[test]
    fn replicate_is_topic_invariant() {
        let flat = vec![0.1, 0.2, 0.3];
        let t = replicate_across_topics(&flat, 4);
        for z in 0..4 {
            assert_eq!(t.get(1, z), 0.2);
        }
        let ad = crate::TopicDist::uniform(4);
        let back = t.project(&ad);
        for (a, b) in back.iter().zip(&flat) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
