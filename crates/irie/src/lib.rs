//! # tirm-irie
//!
//! A from-scratch reimplementation of the **IRIE** heuristic (Jung, Heo,
//! Chen — ICDM 2012), the spread estimator behind the paper's strongest
//! baseline GREEDY-IRIE (§5, §6).
//!
//! IRIE combines two iterated linear systems:
//!
//! * **Influence Rank (IR)** — a PageRank-like global rank
//!   `r(u) = 1 + α · Σ_{(u,v) ∈ E} p_{u,v} · r(v)` whose fixpoint
//!   estimates the expected spread of seeding `u` alone; `α` is a damping
//!   factor (the paper tunes α = 0.7/0.8).
//! * **Influence Estimation (IE)** — once seeds exist, an
//!   activation-probability pass `ap(v, S)` discounts the rank so already
//!   covered regions stop contributing:
//!   `r_S(u) = (1 − ap(u,S)) · (1 + α · Σ p_{u,v} · (1 − ap(v,S)) · r_S(v))`.
//!
//! `ap` is computed by an iterated independent-arrival approximation
//! (`ap(v) = 1 − (1 − base(v)) · Π_{(u,v)} (1 − ap(u)·p_{u,v})`), the same
//! tree-style independence assumption the paper's Fig. 1 arithmetic uses.
//! This keeps the known IRIE artefact — systematic over/under-estimation
//! on graphs with many shared ancestors — which §6.1 of the paper reports
//! (GREEDY-IRIE overshoots on FLIXSTER, undershoots on EPINIONS).

mod rank;

pub use rank::{Irie, IrieConfig};
