//! Property tests for the diffusion engines: estimator consistency,
//! probability-monotonicity and CTP scaling laws.

use proptest::prelude::*;
use tirm_diffusion::{exact_spread, mc_spread};
use tirm_graph::DiGraph;

fn arb_small_graph() -> impl Strategy<Value = (DiGraph, Vec<f32>)> {
    proptest::collection::vec((0u32..6, 0u32..6, 0.0f32..1.0), 1..10).prop_map(|triples| {
        let edges: Vec<(u32, u32)> = triples
            .iter()
            .filter(|(u, v, _)| u != v)
            .map(|&(u, v, _)| (u, v))
            .collect();
        let g = DiGraph::from_edges(6, edges);
        // Probabilities re-derived per canonical edge id for determinism.
        let probs = (0..g.num_edges())
            .map(|e| 0.05 + 0.9 * ((e * 53 % 89) as f32 / 89.0))
            .collect();
        (g, probs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spread_bounded_by_node_count((g, probs) in arb_small_graph()) {
        let s = exact_spread(&g, &probs, &[0, 1], None);
        prop_assert!(s >= 0.0 && s <= g.num_nodes() as f64 + 1e-9);
        // Seeds with CTP 1 always click: spread ≥ #distinct seeds.
        prop_assert!(s >= 2.0 - 1e-9);
    }

    #[test]
    fn raising_probabilities_raises_spread((g, probs) in arb_small_graph()) {
        let lower = exact_spread(&g, &probs, &[0], None);
        let raised: Vec<f32> = probs.iter().map(|p| (p + 0.05).min(1.0)).collect();
        let higher = exact_spread(&g, &raised, &[0], None);
        prop_assert!(higher >= lower - 1e-9, "{higher} < {lower}");
    }

    #[test]
    fn uniform_ctp_scales_single_seed_spread(
        (g, probs) in arb_small_graph(),
        d in 0.1f32..0.9,
    ) {
        // With a single seed, scaling its CTP scales the whole spread
        // (Lemma 1 with S = ∅).
        let full = exact_spread(&g, &probs, &[0], None);
        let ctp = vec![d; 6];
        let scaled = exact_spread(&g, &probs, &[0], Some(&ctp));
        prop_assert!((scaled - d as f64 * full).abs() < 1e-9);
    }

    #[test]
    fn mc_converges_to_exact((g, probs) in arb_small_graph(), seed in 0u64..16) {
        let truth = exact_spread(&g, &probs, &[0, 2], None);
        let est = mc_spread(&g, &probs, &[0, 2], None, 30_000, seed);
        // 30k runs on ≤ 6 nodes: 5σ ≈ 0.07 at worst-case variance.
        prop_assert!((est - truth).abs() < 0.12, "MC {est} vs exact {truth}");
    }
}
