//! Mutable edge-list accumulator that finalises into a [`DiGraph`].

use crate::csr::{DiGraph, NodeId};

/// Collects arcs, then sorts, deduplicates, strips self-loops and builds the
/// dual-direction CSR in one pass.
///
/// Duplicate arcs are merged (the propagation models treat an arc as a single
/// influence channel; multiplicity would silently square probabilities).
/// Self-loops carry no influence semantics in the IC family and are dropped.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes
    /// (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes < u32::MAX as usize,
            "node count exceeds u32 id space"
        );
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Pre-reserves capacity for `m` arcs.
    pub fn with_capacity(num_nodes: usize, m: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.edges.reserve(m);
        b
    }

    /// Number of arcs currently buffered (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no arcs are buffered.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds arc `u → v` (information flows from `u` to follower `v`).
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes, "source {u} out of range");
        debug_assert!((v as usize) < self.num_nodes, "target {v} out of range");
        self.edges.push((u, v));
    }

    /// Adds both `u → v` and `v → u` (used when directing undirected data
    /// sets such as DBLP, per §6.1 of the paper).
    #[inline]
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Grows the node count (ids are dense; this only moves the upper bound).
    pub fn ensure_nodes(&mut self, n: usize) {
        assert!(n < u32::MAX as usize);
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Finalises into an immutable [`DiGraph`].
    pub fn build(mut self) -> DiGraph {
        let n = self.num_nodes;
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        assert!(m <= u32::MAX as usize, "edge count exceeds u32 id space");

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        // Sorted edge list *is* the out-CSR payload; the reverse direction
        // is derived by the shared finalisation step.
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();
        DiGraph::from_out_csr(out_offsets, out_targets)
    }
}

/// Streaming two-pass CSR construction: `stream` is invoked twice with an
/// edge sink — pass one counts per-node out-degrees, pass two fills the
/// target array in place — so peak memory stays within a few percent of
/// the *final* CSR instead of holding a `Vec<(u, v)>` edge list (8 bytes
/// per raw arc plus sort working space) next to it. Per-node target runs
/// are then sorted, deduplicated and compacted in place, which yields a
/// graph bit-identical to routing the same arc stream through
/// [`GraphBuilder`] (global sort + dedup commute with per-node sort +
/// dedup once arcs are bucketed by source).
///
/// `stream` must emit the identical arc sequence on both invocations —
/// true for every seeded generator in [`crate::generators`]. Self-loops
/// are dropped at the sink, duplicates during compaction.
pub fn build_from_stream<F>(num_nodes: usize, mut stream: F) -> DiGraph
where
    F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
{
    assert!(
        num_nodes < u32::MAX as usize,
        "node count exceeds u32 id space"
    );
    let n = num_nodes;

    // Pass 1: raw out-degrees (self-loops excluded, duplicates included —
    // dedup needs the neighbourhood materialised).
    let mut out_offsets = vec![0u32; n + 1];
    let mut raw_m = 0u64;
    stream(&mut |u, v| {
        debug_assert!((u as usize) < n, "source {u} out of range");
        debug_assert!((v as usize) < n, "target {v} out of range");
        if u != v {
            out_offsets[u as usize + 1] += 1;
            raw_m += 1;
        }
    });
    assert!(raw_m <= u32::MAX as u64, "edge count exceeds u32 id space");
    for i in 0..n {
        out_offsets[i + 1] += out_offsets[i];
    }

    // Pass 2: fill targets into the pre-sized array.
    let mut cursor: Vec<u32> = out_offsets[..n].to_vec();
    let mut out_targets = vec![0 as NodeId; raw_m as usize];
    stream(&mut |u, v| {
        if u != v {
            let slot = cursor[u as usize] as usize;
            out_targets[slot] = v;
            cursor[u as usize] += 1;
        }
    });
    drop(cursor);

    // Sort + dedup each node's run, compacting forward in place (the
    // write head never passes a node's read window).
    let mut write = 0usize;
    let mut read_lo = 0usize;
    for u in 0..n {
        let read_hi = out_offsets[u + 1] as usize;
        out_targets[read_lo..read_hi].sort_unstable();
        let mut prev: Option<NodeId> = None;
        for i in read_lo..read_hi {
            let v = out_targets[i];
            if prev != Some(v) {
                out_targets[write] = v;
                write += 1;
                prev = Some(v);
            }
        }
        out_offsets[u + 1] = write as u32;
        read_lo = read_hi;
    }
    out_targets.truncate(write);
    out_targets.shrink_to_fit();

    DiGraph::from_out_csr(out_offsets, out_targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1); // duplicate
        b.add_edge(1, 1); // self-loop
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 1));
        g.validate().unwrap();
    }

    #[test]
    fn undirected_inserts_both_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn streaming_build_matches_vec_build() {
        let edges: &[(NodeId, NodeId)] = &[(0, 1), (0, 1), (2, 2), (2, 0), (1, 2), (1, 0), (3, 1)];
        let mut b = GraphBuilder::new(4);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        let via_vec = b.build();
        let via_stream = build_from_stream(4, |sink| {
            for &(u, v) in edges {
                sink(u, v);
            }
        });
        assert_eq!(via_vec, via_stream);
        via_stream.validate().unwrap();
    }

    #[test]
    fn streaming_build_empty_and_isolated() {
        let g = build_from_stream(3, |_| {});
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn ensure_nodes_extends_id_space() {
        let mut b = GraphBuilder::new(1);
        b.ensure_nodes(5);
        b.add_edge(4, 0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.has_edge(4, 0));
    }
}
