//! Replication frontier introspection — the three sequence numbers
//! that describe where a replica stands relative to its leader, and
//! the lag arithmetic every layer above (serving stats, load-generator
//! routing, soak assertions) shares instead of re-deriving.
//!
//! Sequence numbers count *mutations* ([`crate::OnlineEvent`]s with
//! [`is_mutation`](crate::OnlineEvent::is_mutation) true) since the
//! birth of the state-dir lineage; reads never advance them. On a
//! leader all three coincide once the write queue drains; on a
//! follower they trail the leader by the replication lag.

/// Where a replica stands: what it has applied, what it has made
/// durable, and the newest durable frontier it has observed on its
/// leader. A snapshot in time — capture once and interrogate, so the
/// numbers are mutually consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationFrontier {
    /// Mutations applied to the in-memory allocator (what reads see).
    pub applied_seq: u64,
    /// Mutations appended to the local WAL *and* fsynced — the
    /// replica's durable frontier, and the anchor it would resubscribe
    /// from after a restart.
    pub durable_seq: u64,
    /// The leader's durable frontier as last observed (equal to
    /// `durable_seq` on the leader itself).
    pub leader_seq: u64,
    /// The fencing epoch the replica serves under — bumped by each
    /// promotion; frames announcing an older epoch come from a deposed
    /// leader and must be rejected.
    pub fencing_epoch: u64,
}

impl ReplicationFrontier {
    /// Replication lag: durable mutations the leader has that this
    /// replica has not yet made durable. Saturating — a frontier read
    /// mid-promotion (local log ahead of a freshly promoted leader)
    /// reads as caught up, not as an underflow panic.
    pub fn lag(&self) -> u64 {
        self.leader_seq.saturating_sub(self.durable_seq)
    }

    /// Locally durable mutations not yet applied to the in-memory
    /// allocator (non-zero only inside an apply batch).
    pub fn apply_backlog(&self) -> u64 {
        self.durable_seq.saturating_sub(self.applied_seq)
    }

    /// Whether reads served here reflect everything the leader has
    /// made durable (as of this observation).
    pub fn caught_up(&self) -> bool {
        self.lag() == 0 && self.apply_backlog() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_is_leader_minus_durable_and_saturates() {
        let f = ReplicationFrontier {
            applied_seq: 40,
            durable_seq: 42,
            leader_seq: 50,
            fencing_epoch: 1,
        };
        assert_eq!(f.lag(), 8);
        assert_eq!(f.apply_backlog(), 2);
        assert!(!f.caught_up());

        let ahead = ReplicationFrontier {
            applied_seq: 50,
            durable_seq: 50,
            leader_seq: 42,
            fencing_epoch: 2,
        };
        assert_eq!(ahead.lag(), 0, "a post-promotion read must not underflow");
        assert!(ahead.caught_up());
    }

    #[test]
    fn default_is_a_caught_up_cold_start() {
        let f = ReplicationFrontier::default();
        assert_eq!((f.lag(), f.apply_backlog()), (0, 0));
        assert!(f.caught_up());
    }
}
