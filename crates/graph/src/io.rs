//! Plain-text edge-list IO in the SNAP style used by the paper's data sets:
//! one `source target` pair per line, `#`-prefixed comment lines ignored.

use crate::builder::GraphBuilder;
use crate::csr::{DiGraph, NodeId};
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Malformed { line_no: usize, content: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line_no, content } => {
                write!(f, "malformed edge on line {line_no}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses an edge list from any reader. Node ids may be sparse in the input;
/// they are remapped to a dense `0..n` range in first-appearance order.
/// Returns the graph and the original ids indexed by dense id.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    undirected: bool,
) -> Result<(DiGraph, Vec<u64>), ParseError> {
    let mut remap: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
    let mut original: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut intern = |raw: u64, original: &mut Vec<u64>| -> NodeId {
        *remap.entry(raw).or_insert_with(|| {
            let id = original.len() as NodeId;
            original.push(raw);
            id
        })
    };
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ParseError::Malformed {
                    line_no: line_no + 1,
                    content: t.to_string(),
                })
            }
        };
        let pa: u64 = a.parse().map_err(|_| ParseError::Malformed {
            line_no: line_no + 1,
            content: t.to_string(),
        })?;
        let pb: u64 = b.parse().map_err(|_| ParseError::Malformed {
            line_no: line_no + 1,
            content: t.to_string(),
        })?;
        let u = intern(pa, &mut original);
        let v = intern(pb, &mut original);
        edges.push((u, v));
        if undirected {
            edges.push((v, u));
        }
    }
    let mut b = GraphBuilder::with_capacity(original.len(), edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok((b.build(), original))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    undirected: bool,
) -> Result<(DiGraph, Vec<u64>), ParseError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(f), undirected)
}

/// Writes the graph as a `u v` edge list with a stats header comment.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "# nodes: {} edges: {}", g.num_nodes(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = crate::generators::erdos_renyi(30, 100, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, original) = read_edge_list(&buf[..], false).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        // Ids are remapped by first appearance; map back and compare sets.
        let mut e1: Vec<(u64, u64)> = g.edges().map(|(_, u, v)| (u as u64, v as u64)).collect();
        let mut e2: Vec<(u64, u64)> = g2
            .edges()
            .map(|(_, u, v)| (original[u as usize], original[v as usize]))
            .collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n% other comment\n0 1\n1 2\n";
        let (g, _) = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_flag_doubles_arcs() {
        let text = "5 9\n";
        let (g, orig) = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(orig, vec![5, 9]);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), false).unwrap_err();
        match err {
            ParseError::Malformed { line_no, .. } => assert_eq!(line_no, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sparse_ids_remapped_densely() {
        let text = "100 200\n200 300\n";
        let (g, orig) = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(orig, vec![100, 200, 300]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }
}
