//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], `prop_assert*`, [`ProptestConfig`], and
//! `collection::{vec, btree_set}`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (derived from the test name), and there is **no
//! shrinking** — a failing case panics with the ordinary assert message.

pub mod collection;
pub mod strategy;

pub use strategy::{FlatMap, Just, Map, Strategy, TupleStrategy};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng {
    pub(crate) rng: SmallRng,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name` (FNV-1a of the
    /// name xor-mixed with the case index — stable across runs).
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// The proptest entry macro: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursive expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Asserts inside a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
