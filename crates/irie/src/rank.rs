//! Influence-rank and activation-probability iterations.

use tirm_graph::{DiGraph, NodeId};

/// Tuning knobs for the IRIE iterations.
#[derive(Clone, Copy, Debug)]
pub struct IrieConfig {
    /// Damping factor `α`; Jung et al. report 0.7 works best on their data,
    /// the paper tunes 0.8 for its quality experiments (§6).
    pub alpha: f64,
    /// Rank-iteration count (20 suffices for convergence at these α).
    pub rank_iterations: usize,
    /// Activation-probability propagation rounds per seed update.
    pub ap_rounds: usize,
}

impl Default for IrieConfig {
    fn default() -> Self {
        IrieConfig {
            alpha: 0.7,
            rank_iterations: 20,
            ap_rounds: 5,
        }
    }
}

/// IRIE state for one ad: seed set so far, activation probabilities and
/// seed-discounted influence ranks.
pub struct Irie<'a> {
    g: &'a DiGraph,
    probs: &'a [f32],
    cfg: IrieConfig,
    /// Seeds added so far with their CTPs.
    seeds: Vec<(NodeId, f32)>,
    /// `ap[v]` — estimated probability that `v` is already activated by the
    /// current seed set.
    ap: Vec<f64>,
    /// `rank[u]` — seed-discounted marginal spread estimate of `u`.
    rank: Vec<f64>,
}

impl<'a> Irie<'a> {
    /// Builds the state and runs the initial (seedless) rank iteration.
    pub fn new(g: &'a DiGraph, probs: &'a [f32], cfg: IrieConfig) -> Self {
        assert_eq!(probs.len(), g.num_edges());
        let n = g.num_nodes();
        let mut s = Irie {
            g,
            probs,
            cfg,
            seeds: Vec::new(),
            ap: vec![0.0; n],
            rank: vec![0.0; n],
        };
        s.recompute_rank();
        s
    }

    /// Current marginal-spread estimate of seeding `u` (before CTP scaling).
    #[inline]
    pub fn rank(&self, u: NodeId) -> f64 {
        self.rank[u as usize]
    }

    /// Full rank vector.
    pub fn ranks(&self) -> &[f64] {
        &self.rank
    }

    /// Estimated probability that `u` is already activated by current seeds.
    #[inline]
    pub fn activation_prob(&self, u: NodeId) -> f64 {
        self.ap[u as usize]
    }

    /// Registers `u` as a seed with click-through probability `ctp`, then
    /// refreshes the activation probabilities and ranks.
    pub fn add_seed(&mut self, u: NodeId, ctp: f32) {
        self.seeds.push((u, ctp));
        self.recompute_ap();
        self.recompute_rank();
    }

    /// Marginal spread estimate for seeding `u` with click probability
    /// `ctp`: the CTP gates the whole cascade (Lemma 1 of the paper).
    #[inline]
    pub fn marginal(&self, u: NodeId, ctp: f32) -> f64 {
        ctp as f64 * self.rank[u as usize]
    }

    /// Recomputes `ap` from the current seed set via iterated
    /// independent-arrival propagation.
    fn recompute_ap(&mut self) {
        let n = self.g.num_nodes();
        let mut base = vec![0.0f64; n];
        for &(s, ctp) in &self.seeds {
            // Multiple ads never seed the same node twice for the same ad;
            // combine defensively anyway.
            let b = &mut base[s as usize];
            *b = 1.0 - (1.0 - *b) * (1.0 - ctp as f64);
        }
        self.ap.copy_from_slice(&base);
        let mut next = vec![0.0f64; n];
        for _ in 0..self.cfg.ap_rounds {
            for v in 0..n as NodeId {
                let mut fail = 1.0f64;
                for (e, u) in self.g.in_edges(v) {
                    let pe = self.probs[e as usize] as f64;
                    if pe > 0.0 {
                        fail *= 1.0 - self.ap[u as usize] * pe;
                    }
                }
                next[v as usize] = 1.0 - (1.0 - base[v as usize]) * fail;
            }
            std::mem::swap(&mut self.ap, &mut next);
        }
    }

    /// Recomputes the seed-discounted influence rank.
    fn recompute_rank(&mut self) {
        let n = self.g.num_nodes();
        self.rank.iter_mut().for_each(|r| *r = 1.0);
        let mut next = vec![0.0f64; n];
        for _ in 0..self.cfg.rank_iterations {
            for u in 0..n as NodeId {
                let mut acc = 0.0f64;
                for (e, v) in self.g.out_edges(u) {
                    let pe = self.probs[e as usize] as f64;
                    if pe > 0.0 {
                        acc += pe * (1.0 - self.ap[v as usize]) * self.rank[v as usize];
                    }
                }
                next[u as usize] = (1.0 - self.ap[u as usize]) * (1.0 + self.cfg.alpha * acc);
            }
            std::mem::swap(&mut self.rank, &mut next);
        }
    }

    /// Number of seeds registered.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Approximate resident bytes (Table 4 comparison: IRIE's footprint is
    /// just a handful of node-length vectors).
    pub fn memory_bytes(&self) -> usize {
        self.ap.len() * 8 + self.rank.len() * 8 + self.seeds.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tirm_graph::generators;

    #[test]
    fn rank_orders_hub_first_on_star() {
        let g = generators::star(50);
        let probs = vec![0.2f32; g.num_edges()];
        let irie = Irie::new(&g, &probs, IrieConfig::default());
        let hub = irie.rank(0);
        for v in 1..50 {
            assert!(hub > irie.rank(v), "hub must outrank leaves");
        }
        // Hub rank ≈ 1 + α·49·0.2 (leaves have rank 1).
        let expect = 1.0 + 0.7 * 49.0 * 0.2;
        assert!((hub - expect).abs() < 1e-6, "hub {hub} vs {expect}");
    }

    #[test]
    fn rank_approximates_path_spread_with_alpha_one() {
        // On a path with p = 0.5 the exact spread of node 0 is
        // 1 + 0.5 + 0.25 + … ; with α = 1 IRIE reproduces it exactly.
        let g = generators::path(6);
        let probs = vec![0.5f32; g.num_edges()];
        let cfg = IrieConfig {
            alpha: 1.0,
            rank_iterations: 30,
            ap_rounds: 5,
        };
        let irie = Irie::new(&g, &probs, cfg);
        let want: f64 = (0..6).map(|i| 0.5f64.powi(i)).sum();
        assert!((irie.rank(0) - want).abs() < 1e-6);
    }

    #[test]
    fn adding_seed_discounts_neighbourhood() {
        let g = generators::star(30);
        let probs = vec![0.5f32; g.num_edges()];
        let mut irie = Irie::new(&g, &probs, IrieConfig::default());
        let before = irie.rank(0);
        irie.add_seed(0, 1.0);
        // The hub is now fully activated: its own rank collapses.
        assert!(
            irie.rank(0) < 1e-9,
            "seeded node keeps rank {}",
            irie.rank(0)
        );
        // Leaves are half-activated; their ranks shrink too.
        for v in 1..30 {
            assert!(irie.activation_prob(v) > 0.49);
            assert!(irie.rank(v) < 0.51);
        }
        assert!(before > 1.0);
        assert_eq!(irie.num_seeds(), 1);
    }

    #[test]
    fn ctp_scales_seed_impact() {
        let g = generators::star(30);
        let probs = vec![0.5f32; g.num_edges()];
        let mut low = Irie::new(&g, &probs, IrieConfig::default());
        let mut high = Irie::new(&g, &probs, IrieConfig::default());
        low.add_seed(0, 0.1);
        high.add_seed(0, 0.9);
        assert!(low.activation_prob(1) < high.activation_prob(1));
        assert!(low.rank(1) > high.rank(1), "weak seed leaves more to gain");
        // Marginal helper gates by CTP.
        let fresh = Irie::new(&g, &probs, IrieConfig::default());
        assert!(fresh.marginal(0, 0.5) < fresh.marginal(0, 1.0));
    }

    #[test]
    fn memory_footprint_is_node_linear() {
        let g = generators::erdos_renyi(1000, 5000, 1);
        let probs = vec![0.1f32; g.num_edges()];
        let irie = Irie::new(&g, &probs, IrieConfig::default());
        assert!(irie.memory_bytes() < 64 * 1000);
    }
}
