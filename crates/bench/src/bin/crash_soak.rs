//! Crash soak for the durable serving stack: SIGKILL a real
//! `tirm_server` child mid-stream — repeatedly — restart it over the
//! same state dir, finish the log through the reconnecting load
//! generator, and require the final allocation to be **bit-identical**
//! (assignments *and* revenue-estimate bits) to an uninterrupted
//! in-process replay of the same log.
//!
//! ```text
//! cargo build --release -p tirm_server -p tirm_bench
//! cargo run --release -p tirm_bench --bin crash_soak -- \
//!     --dataset EPINIONS --events 240 --kills 2
//! ```
//!
//! The soak also measures the two recovery regimes through the same
//! [`tirm_server::wal::recover`] scan the server boots with:
//!
//! * **warm** — the soak's final state dir: newest checkpoint + WAL
//!   tail (≤ `--checkpoint-interval` events to replay);
//! * **cold** — a synthetic state dir holding the full log as WAL
//!   frames and no checkpoint (replay everything from seq 0).
//!
//! Acceptance floor: warm recovery is ≥ `--min-speedup` (default 5×)
//! faster than the cold replay. Everything — per-restart
//! time-to-serving, driver counters, recovery timings — lands in
//! `target/experiments/crash_soak.json`.
//!
//! Flags: `--dataset NAME` (default EPINIONS), `--events N` (default
//! 240), `--kills K` (default 2), `--seed N`, `--readers N` (default
//! 2), `--queue-depth N` (default 32), `--shard-writers S` (default 2),
//! `--checkpoint-interval N` (default 16), `--segment-events N`
//! (default 64), `--min-speedup X` (0 disables the floor),
//! `--ready-timeout-s S` (default 240), `--keep-state`.
//!
//! `TIRM_SCALE` / `TIRM_THREADS` size the run as usual. If
//! `TIRM_SNAPSHOT_DIR` is unset, a scratch snapshot cache is used so
//! the child's restarts warm-load the dataset instead of regenerating
//! it — time-to-serving then measures recovery, not generation.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};
use tirm_bench::loadgen::{drive, LoadgenConfig};
use tirm_bench::{scrape_metrics, write_json};
use tirm_online::{AllocationSnapshot, OnlineAllocator};
use tirm_server::wal::{recover, Wal};
use tirm_server::{Client, ClientOptions};
use tirm_workloads::events::{scale_budgets, LogEvent};
use tirm_workloads::{Dataset, DatasetKind, EventStreamSpec, ProbModel, ScaleConfig};

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: crash_soak [--dataset NAME] [--events N] [--kills K] [--seed N] \
         [--readers N] [--queue-depth N] [--shard-writers S] [--checkpoint-interval N] \
         [--segment-events N] [--min-speedup X] [--ready-timeout-s S] [--keep-state]"
    );
    ExitCode::from(2)
}

#[derive(serde::Serialize)]
struct RestartRow {
    /// Durable frontier observed when the SIGKILL was sent.
    killed_at_wal_seq: u64,
    /// Wall seconds from respawn to the first successful `hello`.
    ready_s: f64,
    /// The frontier the restarted server recovered to (its `hello`).
    recovered_wal_seq: u64,
}

#[derive(serde::Serialize)]
struct SoakSummary {
    dataset: String,
    scale: f64,
    events: usize,
    mutations: u64,
    kills: usize,
    shard_writers: usize,
    checkpoint_interval: u64,
    segment_events: u64,
    first_ready_s: f64,
    restarts: Vec<RestartRow>,
    offered: u64,
    accepted: u64,
    shed: u64,
    drive_wall_s: f64,
    final_epoch: u64,
    bit_identical: bool,
    warm_recover_s: f64,
    cold_replay_s: f64,
    recovery_speedup: f64,
    min_speedup: f64,
}

/// Polls until the server at `addr` answers a `hello`, or `deadline`.
fn wait_ready(addr: SocketAddr, deadline: Duration) -> io::Result<Client> {
    let t0 = Instant::now();
    loop {
        match Client::connect_with(addr, &ClientOptions::default()) {
            Ok(client) => return Ok(client),
            Err(e) if t0.elapsed() >= deadline => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("server not ready after {:.0?}: {e}", deadline),
                ))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The uninterrupted oracle: the log replayed in-process (reads are
/// served off-writer by the server, so only mutations touch the
/// allocator).
fn replay_oracle(
    dataset: &Dataset,
    cfg: tirm_online::OnlineConfig,
    log: &[LogEvent],
) -> std::sync::Arc<AllocationSnapshot> {
    let mut allocator = OnlineAllocator::new(&dataset.graph, &dataset.topic_probs, cfg);
    for e in log {
        if e.event.is_mutation() {
            let _ = allocator.process(&e.event);
        }
    }
    allocator.snapshot()
}

struct ServerSpawner {
    bin: PathBuf,
    args: Vec<String>,
}

impl ServerSpawner {
    fn spawn(&self) -> io::Result<Child> {
        Command::new(&self.bin)
            .args(&self.args)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut dataset = DatasetKind::Epinions;
    let mut events = 240usize;
    let mut kills = 2usize;
    let mut seed = 0xc4a5_0c4au64;
    let mut readers = 2usize;
    let mut queue_depth = 32usize;
    let mut shard_writers = 2usize;
    let mut checkpoint_interval = 16u64;
    let mut segment_events = 64u64;
    let mut min_speedup = 5.0f64;
    let mut ready_timeout = Duration::from_secs(240);
    let mut keep_state = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => match args.next().as_deref().and_then(DatasetKind::parse) {
                Some(d) => dataset = d,
                None => return usage("--dataset expects FLIXSTER|EPINIONS|DBLP|LIVEJOURNAL"),
            },
            "--events" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => events = n,
                _ => return usage("--events expects a positive count"),
            },
            "--kills" => match args.next().and_then(|s| s.parse().ok()) {
                Some(k) => kills = k,
                None => return usage("--kills expects a count"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--readers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => readers = n,
                None => return usage("--readers expects a count"),
            },
            "--queue-depth" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => queue_depth = n,
                _ => return usage("--queue-depth expects a positive integer"),
            },
            "--shard-writers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => shard_writers = n,
                _ => return usage("--shard-writers expects a positive integer"),
            },
            "--checkpoint-interval" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => checkpoint_interval = n,
                _ => return usage("--checkpoint-interval expects a positive integer"),
            },
            "--segment-events" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => segment_events = n,
                _ => return usage("--segment-events expects a positive integer"),
            },
            "--min-speedup" => match args.next().and_then(|s| s.parse().ok()) {
                Some(x) if x >= 0.0 => min_speedup = x,
                _ => return usage("--min-speedup expects a non-negative float"),
            },
            "--ready-timeout-s" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => ready_timeout = Duration::from_secs(s),
                None => return usage("--ready-timeout-s expects seconds"),
            },
            "--keep-state" => keep_state = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let base = std::env::temp_dir().join(format!("tirm_crash_soak_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let state_dir = base.join("state");
    if std::env::var_os("TIRM_SNAPSHOT_DIR").is_none() {
        // Restarts then warm-load the dataset instead of regenerating:
        // time-to-serving measures recovery, not generation.
        std::env::set_var("TIRM_SNAPSHOT_DIR", base.join("snapshots"));
    }

    let server_bin = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.join("tirm_server")))
        .filter(|p| p.is_file());
    let Some(server_bin) = server_bin else {
        return fail(
            "tirm_server binary not found next to crash_soak — \
             build it first: cargo build --release -p tirm_server --bin tirm_server",
        );
    };

    let cfg = ScaleConfig::from_env();
    let model = ProbModel::canonical(dataset);
    eprintln!(
        "== crash_soak {} / {} | {} events, {} kill(s), {} shard writer(s), ckpt every {} | \
         scale={} threads={} ==",
        dataset.name(),
        model.name(),
        events,
        kills,
        shard_writers,
        checkpoint_interval,
        cfg.scale,
        cfg.threads
    );

    let mut log = EventStreamSpec::for_dataset(dataset, events, seed).generate(1.0);
    scale_budgets(&mut log, dataset.size_ratio_at(&cfg));
    let mutations = log.iter().filter(|e| e.event.is_mutation()).count() as u64;

    // Generate (and snapshot-cache) the dataset before the child boots,
    // so every server life warm-loads it.
    let (dataset_data, timing) = Dataset::load_or_generate_env(dataset, model, &cfg, seed);
    eprintln!(
        "dataset ready in {:.3}s ({} nodes); in-process oracle replaying {} mutations",
        timing.warm_s + timing.cold_s,
        dataset_data.graph.num_nodes(),
        mutations
    );
    let online_cfg = tirm_server::serving_online_config(dataset, &cfg, 2, 0.0, seed);
    let want = replay_oracle(&dataset_data, online_cfg.clone(), &log);

    // A concrete port the child can bind and every reconnect can reuse.
    let port = match TcpListener::bind("127.0.0.1:0").and_then(|l| l.local_addr()) {
        Ok(a) => a.port(),
        Err(e) => return fail(&format!("no free port: {e}")),
    };
    let addr: SocketAddr = ([127, 0, 0, 1], port).into();
    // A second fixed port for the child's metrics endpoint, so every
    // life of the server exposes its registry at the same address and
    // the soak can scrape right before each SIGKILL.
    let metrics_port = match TcpListener::bind("127.0.0.1:0").and_then(|l| l.local_addr()) {
        Ok(a) => a.port(),
        Err(e) => return fail(&format!("no free metrics port: {e}")),
    };
    let metrics_addr: SocketAddr = ([127, 0, 0, 1], metrics_port).into();

    let spawner = ServerSpawner {
        bin: server_bin,
        args: vec![
            "--dataset".into(),
            dataset.name().into(),
            "--seed".into(),
            seed.to_string(),
            "--bind".into(),
            addr.to_string(),
            "--queue-depth".into(),
            queue_depth.to_string(),
            "--state-dir".into(),
            state_dir.display().to_string(),
            "--checkpoint-interval".into(),
            checkpoint_interval.to_string(),
            "--segment-events".into(),
            segment_events.to_string(),
            "--shard-writers".into(),
            shard_writers.to_string(),
            "--metrics-addr".into(),
            metrics_addr.to_string(),
        ],
    };

    // First life.
    let t0 = Instant::now();
    let mut child = match spawner.spawn() {
        Ok(c) => c,
        Err(e) => return fail(&format!("spawning tirm_server: {e}")),
    };
    let mut monitor = match wait_ready(addr, ready_timeout) {
        Ok(c) => c,
        Err(e) => return fail(&format!("first life: {e}")),
    };
    let first_ready_s = t0.elapsed().as_secs_f64();
    if let Some(h) = monitor.hello() {
        if h.wal_seq != 0 {
            return fail(&format!("fresh state dir but hello wal_seq {}", h.wal_seq));
        }
    }
    eprintln!("serving on {addr} after {first_ready_s:.3}s — driving the log");

    // The driver: deterministic delivery with a reconnect budget that
    // rides out every restart.
    let driver = {
        let log = log.clone();
        std::thread::spawn(move || {
            drive(
                addr,
                &log,
                &LoadgenConfig {
                    readers,
                    rate: None,
                    retry: true,
                    seed,
                    drain: true,
                    read_pause: Duration::from_micros(200),
                    reconnect: ClientOptions::reconnecting(240),
                    ..LoadgenConfig::default()
                },
            )
        })
    };

    // Kill schedule: evenly spaced durable-frontier thresholds, so the
    // kills land mid-stream wherever the throughput ends up.
    let mut restarts = Vec::new();
    for k in 0..kills {
        let target = (k + 1) as u64 * mutations / (kills as u64 + 1);
        let killed_at = loop {
            match monitor.stats() {
                Ok(s) if s.wal_seq >= target => break s.wal_seq,
                Ok(_) => std::thread::sleep(Duration::from_millis(2)),
                // The monitor connection can be a casualty of a prior
                // kill racing shutdown-vs-accept; just re-dial.
                Err(_) => match wait_ready(addr, ready_timeout) {
                    Ok(c) => monitor = c,
                    Err(e) => return fail(&format!("monitor lost the server: {e}")),
                },
            }
        };
        // Last-breath scrapes: the registry and the flight-recorder
        // timeline the crash is about to erase, preserved as CI
        // artifacts (the WAL protects state, not telemetry — these
        // dumps are the only record of this life). The kill-window
        // check: the lineage scraped moments before a SIGKILL must
        // still reconstruct complete durable lifecycles for the
        // mutations that ran up to the kill.
        scrape_metrics(metrics_addr, &format!("crash_soak_kill{k}"));
        if let Some(trace) = tirm_bench::scrape_trace(metrics_addr, &format!("crash_soak_kill{k}"))
        {
            let complete = tirm_bench::traces_covering_stages(
                &trace,
                &["admit", "queue", "wal_append", "fsync", "apply", "publish"],
            );
            if complete == 0 {
                return fail(&format!(
                    "kill {k}: pre-kill /trace.json holds no complete durable lifecycle"
                ));
            }
            eprintln!("kill {k}: {complete} complete lifecycles in the kill window");
        }
        // SIGKILL: no drain, no checkpoint, no fsync of anything
        // in-flight — the hard crash the WAL exists for.
        child.kill().ok();
        child.wait().ok();
        let t = Instant::now();
        child = match spawner.spawn() {
            Ok(c) => c,
            Err(e) => return fail(&format!("respawning tirm_server: {e}")),
        };
        monitor = match wait_ready(addr, ready_timeout) {
            Ok(c) => c,
            Err(e) => return fail(&format!("restart {k}: {e}")),
        };
        let ready_s = t.elapsed().as_secs_f64();
        let recovered = monitor.hello().map(|h| h.wal_seq).unwrap_or(0);
        eprintln!(
            "kill {k}: SIGKILL at wal_seq {killed_at} → serving again in {ready_s:.3}s \
             (recovered to {recovered})"
        );
        if recovered > killed_at {
            return fail(&format!(
                "kill {k}: recovered frontier {recovered} is ahead of the last \
                 observed durable frontier {killed_at}"
            ));
        }
        restarts.push(RestartRow {
            killed_at_wal_seq: killed_at,
            ready_s,
            recovered_wal_seq: recovered,
        });
    }

    let report = match driver.join() {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => return fail(&format!("load driver failed: {e}")),
        Err(_) => return fail("load driver panicked"),
    };

    // Everything admitted must become durable: ride the frontier home.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match monitor.stats() {
            Ok(s) if s.wal_seq >= mutations => break,
            Ok(s) if Instant::now() >= deadline => {
                return fail(&format!("wal_seq stuck at {} of {mutations}", s.wal_seq))
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => return fail(&format!("polling the durable frontier: {e}")),
        }
    }

    let served = match monitor.allocation() {
        Ok(s) => s,
        Err(e) => return fail(&format!("fetching the final allocation: {e}")),
    };
    scrape_metrics(metrics_addr, "crash_soak_final");
    tirm_bench::scrape_trace(metrics_addr, "crash_soak_final");
    monitor.shutdown_server().ok();
    child.wait().ok();

    let bit_identical = served.same_allocation(&want);
    if !bit_identical {
        eprintln!(
            "MISMATCH: served epoch {} ({} ads, {} seeds, regret {:.6}) vs oracle epoch {} \
             ({} ads, {} seeds, regret {:.6})",
            served.epoch,
            served.num_ads(),
            served.total_seeds(),
            served.regret_estimate,
            want.epoch,
            want.num_ads(),
            want.total_seeds(),
            want.regret_estimate,
        );
    }

    // Recovery regimes, through the exact scan the server boots with.
    let t_warm = Instant::now();
    let warm = recover(
        &state_dir,
        &dataset_data.graph,
        &dataset_data.topic_probs,
        &online_cfg,
    );
    let warm_s = t_warm.elapsed().as_secs_f64();
    let warm_ok = match warm {
        Ok((a, rep)) => rep.wal_seq == mutations && a.snapshot().same_allocation(&want),
        Err(_) => false,
    };
    if !warm_ok {
        return fail("warm recovery of the final state dir diverged from the oracle");
    }

    let cold_dir = base.join("cold_wal");
    {
        let mut wal = match Wal::open(&cold_dir, 0, mutations.max(1)) {
            Ok(w) => w,
            Err(e) => return fail(&format!("building the cold-replay WAL: {e}")),
        };
        for e in &log {
            if e.event.is_mutation() {
                if let Err(e) = wal.append(&e.event) {
                    return fail(&format!("building the cold-replay WAL: {e}"));
                }
            }
        }
        if let Err(e) = wal.sync() {
            return fail(&format!("building the cold-replay WAL: {e}"));
        }
    }
    let t_cold = Instant::now();
    let cold = recover(
        &cold_dir,
        &dataset_data.graph,
        &dataset_data.topic_probs,
        &online_cfg,
    );
    let cold_s = t_cold.elapsed().as_secs_f64();
    let cold_ok = match cold {
        Ok((a, rep)) => rep.wal_seq == mutations && a.snapshot().same_allocation(&want),
        Err(_) => false,
    };
    if !cold_ok {
        return fail("cold full-log replay diverged from the oracle");
    }
    let speedup = cold_s / warm_s.max(1e-9);

    println!(
        "crash_soak: {} kills over {} mutations — bit_identical={} | warm recovery {:.3}s vs \
         cold replay {:.3}s = {:.1}× | restarts to serving {:?}",
        kills,
        mutations,
        bit_identical,
        warm_s,
        cold_s,
        speedup,
        restarts.iter().map(|r| r.ready_s).collect::<Vec<_>>(),
    );

    write_json(
        "crash_soak",
        &SoakSummary {
            dataset: dataset.name().to_string(),
            scale: cfg.scale,
            events: log.len(),
            mutations,
            kills,
            shard_writers,
            checkpoint_interval,
            segment_events,
            first_ready_s,
            restarts,
            offered: report.offered,
            accepted: report.accepted,
            shed: report.shed,
            drive_wall_s: report.wall_s,
            final_epoch: report.final_stats.epoch,
            bit_identical,
            warm_recover_s: warm_s,
            cold_replay_s: cold_s,
            recovery_speedup: speedup,
            min_speedup,
        },
    );

    if !keep_state {
        std::fs::remove_dir_all(&base).ok();
    } else {
        eprintln!("state kept under {}", base.display());
    }

    if !bit_identical {
        return fail("kill/restart run diverged from the uninterrupted replay");
    }
    if min_speedup > 0.0 && speedup < min_speedup {
        return fail(&format!(
            "warm-checkpoint recovery is only {speedup:.1}× faster than cold replay \
             (floor {min_speedup:.1}×)"
        ));
    }
    ExitCode::SUCCESS
}
