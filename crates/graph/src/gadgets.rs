//! Hand-constructed graphs from the paper: the Fig. 1 toy network and the
//! 3-PARTITION reduction gadget from the proof of Theorem 1.

use crate::builder::GraphBuilder;
use crate::csr::{DiGraph, NodeId};

/// The six-node toy network of Fig. 1 together with its edge influence
/// probabilities (identical across all four ads in the example).
///
/// Arcs: `v1→v3 (0.2)`, `v2→v3 (0.2)`, `v3→v4 (0.5)`, `v3→v5 (0.5)`,
/// `v4→v6 (0.1)`, `v5→v6 (0.1)`. Nodes are zero-indexed (`v1 = 0`).
pub fn fig1_toy() -> (DiGraph, Vec<f32>) {
    let mut b = GraphBuilder::new(6);
    // (source, target, probability)
    let arcs: [(NodeId, NodeId, f32); 6] = [
        (0, 2, 0.2),
        (1, 2, 0.2),
        (2, 3, 0.5),
        (2, 4, 0.5),
        (3, 5, 0.1),
        (4, 5, 0.1),
    ];
    for &(u, v, _) in &arcs {
        b.add_edge(u, v);
    }
    let g = b.build();
    let mut probs = vec![0.0f32; g.num_edges()];
    for &(u, v, p) in &arcs {
        let e = g.edge_id(u, v).expect("arc present");
        probs[e as usize] = p;
    }
    (g, probs)
}

/// Output of [`three_partition_gadget`]: the reduction instance of Thm. 1.
#[derive(Clone, Debug)]
pub struct ThreePartitionInstance {
    /// Bipartite digraph: "U" node `i` fans out to `x_i − 1` private "V"
    /// leaves with influence probability 1 on every arc.
    pub graph: DiGraph,
    /// Dense node ids of the "U" nodes, aligned with the input numbers.
    pub u_nodes: Vec<NodeId>,
    /// Common advertiser budget `C/m` (CPE 1, attention bound 1).
    pub budget: f64,
    /// Number of advertisers `m`.
    pub num_advertisers: usize,
}

/// Builds the REGRET-MINIMIZATION instance from the Theorem 1 reduction for
/// a 3-PARTITION input `xs` (|xs| = 3m, Σxs = C, each `x ∈ (C/4m, C/2m)`).
///
/// The instance has a zero-regret allocation iff `xs` is a YES instance;
/// tests use it to probe greedy behaviour on (in)feasible instances.
///
/// # Panics
/// If `xs.len()` is not a positive multiple of 3 or any `x < 1`.
pub fn three_partition_gadget(xs: &[u64]) -> ThreePartitionInstance {
    assert!(!xs.is_empty() && xs.len() % 3 == 0, "need 3m numbers");
    assert!(xs.iter().all(|&x| x >= 1), "numbers must be positive");
    let m = xs.len() / 3;
    let c: u64 = xs.iter().sum();
    let total_nodes: u64 = xs.iter().sum(); // each x_i contributes 1 U node + (x_i −1) leaves
    let mut b = GraphBuilder::new(total_nodes as usize);
    let mut u_nodes = Vec::with_capacity(xs.len());
    let mut next: NodeId = 0;
    for &x in xs {
        let u = next;
        u_nodes.push(u);
        next += 1;
        for _ in 0..(x - 1) {
            b.add_edge(u, next);
            next += 1;
        }
    }
    ThreePartitionInstance {
        graph: b.build(),
        u_nodes,
        budget: c as f64 / m as f64,
        num_advertisers: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let (g, probs) = fig1_toy();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.in_degree(2), 2); // v3 has two parents
        assert_eq!(g.in_degree(5), 2); // v6 has two parents
        let e = g.edge_id(2, 3).unwrap();
        assert!((probs[e as usize] - 0.5).abs() < 1e-7);
        g.validate().unwrap();
    }

    #[test]
    fn gadget_structure() {
        // YES instance: {1,2,3, 2,2,2} m=2, C=12, per-advertiser budget 6.
        let inst = three_partition_gadget(&[1, 2, 3, 2, 2, 2]);
        assert_eq!(inst.num_advertisers, 2);
        assert!((inst.budget - 6.0).abs() < 1e-12);
        assert_eq!(inst.graph.num_nodes(), 12);
        // U node for x=1 has no leaves; x=3 has two.
        assert_eq!(inst.graph.out_degree(inst.u_nodes[0]), 0);
        assert_eq!(inst.graph.out_degree(inst.u_nodes[2]), 2);
        // Leaves have no out-edges: total edges = Σ(x_i − 1) = C − 3m.
        assert_eq!(inst.graph.num_edges(), 12 - 6);
    }

    #[test]
    #[should_panic(expected = "need 3m numbers")]
    fn gadget_rejects_bad_arity() {
        three_partition_gadget(&[1, 2]);
    }
}
