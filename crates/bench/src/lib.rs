//! Shared plumbing for the experiment binaries: algorithm registry,
//! problem construction from workloads, and result output (aligned text
//! tables on stdout + JSON rows under `target/experiments/`).
//!
//! The measurement backbone lives in four submodules: [`schema`] (the
//! versioned `BENCH_*.json` artifact every experiment emits), [`suite`]
//! (the deterministic scenario-matrix runner behind `perf_suite`),
//! [`diff`] (the noise-aware baseline comparison behind `bench_diff`)
//! and [`loadgen`] (the open-loop wire-protocol driver behind the
//! `loadgen` bin and the `SERVING/…` cells).

pub mod diff;
pub mod loadgen;
pub mod schema;
pub mod suite;

use serde::Serialize;
use std::path::PathBuf;
use tirm_core::{
    evaluate, greedy_irie_allocate, myopic_allocate, myopic_plus_allocate, tirm_allocate,
    AlgoStats, Allocation, Attention, Evaluation, GreedyIrieOptions, ProblemInstance, TirmOptions,
};
use tirm_irie::IrieConfig;
use tirm_topics::CtpTable;
use tirm_workloads::{campaigns, Dataset, DatasetKind, ScaleConfig};

/// The four algorithms compared throughout §6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// MYOPIC baseline.
    Myopic,
    /// MYOPIC+ baseline.
    MyopicPlus,
    /// GREEDY-IRIE (the paper labels it "IRIE" in figures).
    GreedyIrie,
    /// TIRM (Algorithm 2).
    Tirm,
}

impl AlgoKind {
    /// All four, in the paper's legend order.
    pub const ALL: [AlgoKind; 4] = [
        AlgoKind::Myopic,
        AlgoKind::MyopicPlus,
        AlgoKind::GreedyIrie,
        AlgoKind::Tirm,
    ];

    /// Figure-legend name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Myopic => "Myopic",
            AlgoKind::MyopicPlus => "Myopic+",
            AlgoKind::GreedyIrie => "IRIE",
            AlgoKind::Tirm => "TIRM",
        }
    }

    /// Runs the algorithm on `problem`.
    pub fn run(
        self,
        problem: &ProblemInstance<'_>,
        quality: bool,
        seed: u64,
    ) -> (Allocation, AlgoStats) {
        match self {
            AlgoKind::Myopic => myopic_allocate(problem),
            AlgoKind::MyopicPlus => myopic_plus_allocate(problem),
            AlgoKind::GreedyIrie => greedy_irie_allocate(
                problem,
                GreedyIrieOptions {
                    irie: IrieConfig {
                        // §6: α = 0.8 gave the best spread estimates on the
                        // quality data sets; 0.7 on the scalability ones.
                        alpha: if quality { 0.8 } else { 0.7 },
                        ..IrieConfig::default()
                    },
                    max_total_seeds: None,
                },
            ),
            AlgoKind::Tirm => tirm_allocate(problem, tirm_options(quality, seed)),
        }
    }
}

/// TIRM options per experiment family: ε = 0.1 for quality runs, 0.2 for
/// scalability runs (§6), with per-ad sample caps keeping the harness
/// inside laptop memory (documented in DESIGN.md; the cap only reduces
/// estimation accuracy, never correctness).
pub fn tirm_options(quality: bool, seed: u64) -> TirmOptions {
    TirmOptions {
        eps: if quality { 0.1 } else { 0.2 },
        seed,
        max_theta_per_ad: Some(if quality { 1_000_000 } else { 400_000 }),
        ..TirmOptions::default()
    }
}

/// Owns everything a quality-experiment problem instance borrows.
pub struct QualityWorkload {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Advertisers (budgets already scaled by the dataset's size ratio).
    pub ads: Vec<tirm_core::Advertiser>,
    /// CTPs `U[0.01, 0.03]`.
    pub ctp: CtpTable,
    /// Scale configuration in effect.
    pub cfg: ScaleConfig,
}

impl QualityWorkload {
    /// Builds the §6.1 setup for FLIXSTER or EPINIONS.
    pub fn new(kind: DatasetKind, seed: u64) -> Self {
        let cfg = ScaleConfig::from_env();
        let dataset = Dataset::generate(kind, &cfg, seed);
        let spec = campaigns::CampaignSpec::quality(kind);
        // Budgets scale with graph size; `TIRM_BUDGET_FACTOR` applies an
        // extra multiplier so the §4.1 working assumptions (p_i < 1 and
        // seeds ≪ n) can be kept when running far below paper scale.
        let factor: f64 = std::env::var("TIRM_BUDGET_FACTOR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let ads = campaigns::campaign(&spec, dataset.size_ratio * factor, seed ^ 0xada);
        let ctp = CtpTable::uniform_random(
            dataset.graph.num_nodes(),
            ads.len(),
            0.01,
            0.03,
            seed ^ 0xc7b,
        );
        QualityWorkload {
            dataset,
            ads,
            ctp,
            cfg,
        }
    }

    /// Instantiates the problem at the given κ and λ.
    pub fn problem(&self, kappa: u32, lambda: f64) -> ProblemInstance<'_> {
        ProblemInstance::from_topic_model(
            &self.dataset.graph,
            &self.dataset.topic_probs,
            self.ads.clone(),
            self.ctp.clone(),
            Attention::Uniform(kappa),
            lambda,
        )
    }

    /// Ground-truth MC evaluation at the configured run count.
    pub fn evaluate(&self, problem: &ProblemInstance<'_>, alloc: &Allocation) -> Evaluation {
        evaluate(problem, alloc, self.cfg.eval_runs, 0xe7a1, self.cfg.threads)
    }
}

/// One output row of a quality experiment.
#[derive(Clone, Debug, Serialize)]
pub struct QualityRow {
    /// Data set name.
    pub dataset: String,
    /// Algorithm name.
    pub algo: String,
    /// Attention bound κ.
    pub kappa: u32,
    /// Penalty λ.
    pub lambda: f64,
    /// MC-evaluated total regret (Eq. 4).
    pub total_regret: f64,
    /// Regret / total budget.
    pub relative_regret: f64,
    /// Distinct users targeted (Table 3 metric).
    pub distinct_targeted: usize,
    /// Total seeds allocated.
    pub total_seeds: usize,
    /// Allocation wall-clock seconds.
    pub runtime_s: f64,
    /// Algorithm memory bytes (Table 4 metric).
    pub memory_bytes: usize,
    /// Per-ad signed slack `Π_i − B_i` (Fig. 5 metric).
    pub slack_per_ad: Vec<f64>,
}

/// Runs one (algorithm, κ, λ) cell and evaluates it.
pub fn run_quality_cell(
    w: &QualityWorkload,
    algo: AlgoKind,
    kappa: u32,
    lambda: f64,
    seed: u64,
) -> QualityRow {
    let problem = w.problem(kappa, lambda);
    let (alloc, stats) = algo.run(&problem, true, seed);
    alloc
        .validate(&problem)
        .expect("algorithm produced an invalid allocation");
    let ev = w.evaluate(&problem, &alloc);
    QualityRow {
        dataset: w.dataset.kind.name().to_string(),
        algo: algo.name().to_string(),
        kappa,
        lambda,
        total_regret: ev.regret.total(),
        relative_regret: ev.regret.relative_regret(),
        distinct_targeted: alloc.distinct_targeted(),
        total_seeds: alloc.total_seeds(),
        runtime_s: stats.runtime.as_secs_f64(),
        memory_bytes: stats.memory_bytes,
        slack_per_ad: ev.regret.per_ad.iter().map(|a| a.signed_slack()).collect(),
    }
}

/// Root directory for experiment JSON output. Overridable via
/// `TIRM_EXPERIMENTS_DIR`; defaults to `target/experiments` so results are
/// cleaned together with build artefacts.
pub fn experiments_dir() -> PathBuf {
    std::env::var_os("TIRM_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Writes experiment rows as pretty-printed JSON under
/// [`experiments_dir()`]`/<name>.json`, creating the directory if missing.
/// Returns the written path; IO failures are surfaced as errors. Commits
/// through the atomic temp+rename writer so an interrupted run never
/// leaves a truncated artifact.
pub fn try_write_json<T: Serialize>(name: &str, rows: &T) -> std::io::Result<PathBuf> {
    let path = experiments_dir().join(format!("{name}.json"));
    let s = serde_json::to_string_pretty(rows)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    tirm_graph::snapshot::write_atomic(&path, s.as_bytes())?;
    Ok(path)
}

/// [`try_write_json`] for the experiment binaries: logs the written path,
/// or the error with a non-fatal warning (a figure harness should still
/// print its table when the filesystem is read-only).
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    match try_write_json(name, rows) {
        Ok(path) => eprintln!("[json] {}", path.display()),
        Err(e) => eprintln!("warn: writing {name}.json failed: {e}"),
    }
}

/// Scrapes a server's `--metrics-addr` endpoint and preserves the
/// Prometheus text under [`experiments_dir()`]`/<name>.prom` — how the
/// soak harnesses capture a child's registry right before a SIGKILL
/// erases it. Best-effort and non-fatal: the scrape is evidence, not a
/// gate, and a soak mid-crash must not fail on a telemetry hiccup; the
/// text is still parse-checked so a malformed exposition is surfaced
/// loudly in the log.
pub fn scrape_metrics(addr: std::net::SocketAddr, name: &str) {
    let text = match tirm_obs::http::fetch(addr, "/metrics", std::time::Duration::from_secs(5)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("warn: metrics scrape from {addr} failed: {e}");
            return;
        }
    };
    if let Err(e) = tirm_obs::prom::parse(&text) {
        eprintln!("warn: metrics scrape from {addr} does not parse: {e}");
    }
    let path = experiments_dir().join(format!("{name}.prom"));
    match tirm_graph::snapshot::write_atomic(&path, text.as_bytes()) {
        Ok(()) => eprintln!("[prom] {}", path.display()),
        Err(e) => eprintln!("warn: writing {name}.prom failed: {e}"),
    }
}

/// Scrapes a server's `/trace.json` flight-recorder dump and preserves
/// it under [`experiments_dir()`]`/<name>.trace.json` — the soak
/// harnesses' last-breath lineage capture right before a SIGKILL (which
/// leaves no `--trace-json` dump behind). Best-effort and non-fatal
/// like [`scrape_metrics`], but the JSON is still parse-checked so a
/// malformed dump is loud in the log. Returns the dump when it was
/// fetched and parsed, so callers can assert kill-window coverage.
pub fn scrape_trace(addr: std::net::SocketAddr, name: &str) -> Option<String> {
    let json = match tirm_obs::http::fetch(addr, "/trace.json", std::time::Duration::from_secs(5)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("warn: trace scrape from {addr} failed: {e}");
            return None;
        }
    };
    if let Err(e) = serde_json::from_str(&json) {
        eprintln!("warn: trace scrape from {addr} does not parse: {e}");
        return None;
    }
    let path = experiments_dir().join(format!("{name}.trace.json"));
    match tirm_graph::snapshot::write_atomic(&path, json.as_bytes()) {
        Ok(()) => eprintln!("[trace] {}", path.display()),
        Err(e) => eprintln!("warn: writing {name}.trace.json failed: {e}"),
    }
    Some(json)
}

/// How many distinct trace ids in a Chrome trace-event dump cover every
/// stage in `stages` — the soak harnesses' kill-window check: a scrape
/// taken right before a SIGKILL must still hold complete lifecycles for
/// the mutations that ran in the window before it.
pub fn traces_covering_stages(chrome_json: &str, stages: &[&str]) -> usize {
    let Ok(v) = serde_json::from_str(chrome_json) else {
        return 0;
    };
    let field = |v: &serde_json::Value, key: &str| {
        v.as_object().and_then(|o| {
            o.iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| v.clone())
        })
    };
    let Some(events) = field(&v, "traceEvents").and_then(|e| e.as_array().map(<[_]>::to_vec))
    else {
        return 0;
    };
    let mut seen: std::collections::HashMap<u64, std::collections::HashSet<String>> =
        std::collections::HashMap::new();
    for e in &events {
        let trace = field(e, "args")
            .and_then(|a| field(&a, "trace"))
            .and_then(|t| t.as_u64())
            .unwrap_or(0);
        if trace == 0 {
            continue;
        }
        if let Some(name) = field(e, "name").and_then(|n| n.as_str().map(str::to_owned)) {
            if stages.contains(&name.as_str()) {
                seen.entry(trace).or_default().insert(name);
            }
        }
    }
    seen.values().filter(|s| s.len() == stages.len()).count()
}

/// Writes a [`schema::BenchReport`] under [`experiments_dir()`]`/<name>.json`
/// with the same log-or-warn behaviour as [`write_json`] — the standard
/// sink for every experiment binary's artifact.
pub fn write_report(name: &str, report: &schema::BenchReport) {
    let path = experiments_dir().join(format!("{name}.json"));
    match report.save(&path) {
        Ok(()) => eprintln!("[json] {}", path.display()),
        Err(e) => eprintln!("warn: writing {name}.json failed: {e}"),
    }
}

/// Standard run header so logs are self-describing.
pub fn banner(name: &str, cfg: &ScaleConfig) {
    eprintln!(
        "== {name} | scale={} eval_runs={} threads={} ==",
        cfg.scale, cfg.eval_runs, cfg.threads
    );
}
