//! `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! exactly what this workspace needs: non-generic structs with named fields
//! and the `#[serde(serialize_with = "path")]` field attribute. Anything
//! else produces a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    serialize_with: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments included) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => i += 1,
            Some(TokenTree::Group(_)) => i += 1, // pub(crate) etc.
            _ => break,
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => {
            return Err(format!(
                "derive(Serialize) shim: expected struct, got {other:?}"
            ))
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => {
            return Err(format!(
                "derive(Serialize) shim: expected name, got {other:?}"
            ))
        }
    };
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "derive(Serialize) shim: generic struct {name} not supported"
                ))
            }
            Some(_) => i += 1,
            None => {
                return Err(format!(
                    "derive(Serialize) shim: struct {name} has no named-field body"
                ))
            }
        }
    };

    let fields = parse_fields(body)?;
    Ok(render(&name, &fields).parse().unwrap())
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut serialize_with = None;
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(sw) = parse_serde_attr(g.stream()) {
                    serialize_with = Some(sw);
                }
            }
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    i += 1; // pub(crate)
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            None => break,
            other => {
                return Err(format!(
                    "derive(Serialize) shim: expected field, got {other:?}"
                ))
            }
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "derive(Serialize) shim: expected ':' after {name}, got {other:?}"
                ))
            }
        }
        // Type: everything until a comma outside angle brackets.
        let mut depth = 0i32;
        let mut ty = String::new();
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tok.to_string());
            i += 1;
        }
        i += 1; // consume the comma (or run past the end)
        fields.push(Field {
            name,
            ty,
            serialize_with,
        });
    }
    Ok(fields)
}

/// Extracts `serialize_with = "path"` from a `[serde(...)]` attribute body.
fn parse_serde_attr(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        if let TokenTree::Ident(id) = &inner[i] {
            if id.to_string() == "serialize_with" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(i + 1), inner.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        return Some(lit.to_string().trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

fn render(name: &str, fields: &[Field]) -> String {
    let mut out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         let mut __map = ::serde::Serializer::serialize_map(\
         __serializer, ::core::option::Option::Some({}))?;\n",
        fields.len()
    );
    for f in fields {
        let fname = &f.name;
        match &f.serialize_with {
            Some(path) => {
                let ty = &f.ty;
                out.push_str(&format!(
                    "{{\n\
                     struct __SerializeWith<'__a>(&'__a {ty});\n\
                     impl<'__a> ::serde::Serialize for __SerializeWith<'__a> {{\n\
                     fn serialize<__S2: ::serde::Serializer>(&self, __s: __S2) \
                     -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                     {path}(self.0, __s)\n\
                     }}\n\
                     }}\n\
                     ::serde::ser::SerializeMap::serialize_entry(\
                     &mut __map, \"{fname}\", &__SerializeWith(&self.{fname}))?;\n\
                     }}\n"
                ));
            }
            None => {
                out.push_str(&format!(
                    "::serde::ser::SerializeMap::serialize_entry(\
                     &mut __map, \"{fname}\", &self.{fname})?;\n"
                ));
            }
        }
    }
    out.push_str("::serde::ser::SerializeMap::end(__map)\n}\n}\n");
    out
}
