//! Table 4: memory usage (GB) of TIRM and GREEDY-IRIE vs number of
//! advertisers h, on the scalability data sets (§6.2 setup).
//!
//! Expected shape: TIRM's RR-set collections dominate and grow steadily
//! with h (the paper reports 2.59 → 60.8 GB on DBLP at full scale);
//! GREEDY-IRIE needs only a few node-length vectors (0.16 → 0.84 GB).
//! Absolute numbers here scale with the generated graph sizes and the
//! configured per-ad θ cap; the TIRM ≫ IRIE gap and the near-linear
//! growth in h are the reproduced claims.

use tirm_bench::{banner, tirm_options, write_json, AlgoKind};
use tirm_core::report::Table;
use tirm_core::{Attention, ProblemInstance};
use tirm_topics::CtpTable;
use tirm_workloads::{campaigns, Dataset, DatasetKind, ScaleConfig};

fn measure(d: &Dataset, algo: AlgoKind, h: usize, budget: f64) -> usize {
    let ads = campaigns::uniform_campaign(h, budget);
    let flat: Vec<f32> = (0..d.graph.num_edges() as u32)
        .map(|e| d.topic_probs.get(e, 0))
        .collect();
    let edge_probs = vec![flat; h];
    let ctp = CtpTable::constant(d.graph.num_nodes(), h, 1.0);
    let problem = ProblemInstance::new(&d.graph, ads, edge_probs, ctp, Attention::Uniform(1), 0.0);
    let (_, stats) = match algo {
        AlgoKind::Tirm => tirm_core::tirm_allocate(&problem, tirm_options(false, 0x7ab4)),
        _ => algo.run(&problem, false, 0x7ab4),
    };
    stats.memory_bytes
}

fn main() {
    let cfg = ScaleConfig::from_env();
    let mut json = Vec::new();
    for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
        let d = Dataset::generate(kind, &cfg, 0x5ca1e + kind as u64);
        banner(&format!("table4: {}", kind.name()), &cfg);
        let base_budget = match kind {
            DatasetKind::Dblp => 5_000.0 * d.size_ratio,
            _ => 80_000.0 * d.size_ratio,
        };
        let mut t = Table::new(&["h", "TIRM (GB)", "IRIE (GB)"]);
        for h in [1usize, 5, 10, 15, 20] {
            let tirm_b = measure(&d, AlgoKind::Tirm, h, base_budget);
            // The paper skips GREEDY-IRIE on LIVEJOURNAL (too slow); its
            // memory is the IRIE state alone, which we can still measure
            // on DBLP-like inputs.
            let irie_b = if kind == DatasetKind::Dblp {
                Some(measure(&d, AlgoKind::GreedyIrie, h, base_budget))
            } else {
                None
            };
            eprintln!(
                "  {} h={h}: TIRM {:.3} GB{}",
                kind.name(),
                tirm_b as f64 / 1e9,
                irie_b
                    .map(|b| format!(", IRIE {:.4} GB", b as f64 / 1e9))
                    .unwrap_or_default()
            );
            t.row(vec![
                h.to_string(),
                format!("{:.3}", tirm_b as f64 / 1e9),
                irie_b
                    .map(|b| format!("{:.4}", b as f64 / 1e9))
                    .unwrap_or_else(|| "-".into()),
            ]);
            json.push(serde_json::json!({
                "dataset": kind.name(), "h": h,
                "tirm_bytes": tirm_b, "irie_bytes": irie_b,
            }));
        }
        println!("\nTable 4 — {}: memory usage vs h", kind.name());
        println!("{}", t.render());
    }
    write_json("table4", &json);
}
