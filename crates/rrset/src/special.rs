//! Small special-function helpers for the TIM sample-size bounds:
//! `ln Γ` (Lanczos approximation) and `ln C(n, s)`.

/// Lanczos coefficients (g = 7, n = 9) — classic double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// Accuracy ~1e-12 relative across the range used here (arguments up to
/// ~1e9, i.e. `ln n!` for the largest graphs we generate).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain error: {x}");
    if x < 0.5 {
        // Reflection formula keeps precision for tiny x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, s)` — log binomial coefficient, 0 when `s > n` is nonsensical
/// (we clamp `s` to `n`; callers ask for "at most s seeds").
pub fn ln_choose(n: u64, s: u64) -> f64 {
    if s == 0 || s >= n {
        if s == n {
            return 0.0;
        }
        if s == 0 {
            return 0.0;
        }
        // s > n: treat as C(n, n).
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(s) - ln_factorial(n - s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..=n).map(|k| k as f64).product();
            assert!((ln_factorial(n) - fact.ln()).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn gamma_half_integer() {
        // Γ(1/2) = √π.
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-10);
    }

    #[test]
    fn choose_small_cases() {
        assert!((ln_choose(5, 2) - (10.0f64).ln()).abs() < 1e-9);
        assert!((ln_choose(10, 5) - (252.0f64).ln()).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
        assert_eq!(ln_choose(3, 9), 0.0);
    }

    #[test]
    fn choose_large_arguments_finite_and_monotone() {
        let a = ln_choose(1_000_000, 10);
        let b = ln_choose(1_000_000, 100);
        let c = ln_choose(1_000_000, 1000);
        assert!(a.is_finite() && b.is_finite() && c.is_finite());
        assert!(a < b && b < c);
        // ln C(n, s) ≈ s ln(n/s) + s for s ≪ n.
        let approx = 10.0 * (1_000_000.0f64 / 10.0).ln() + 10.0;
        assert!((a - approx).abs() / approx < 0.05);
    }

    #[test]
    fn symmetry() {
        assert!((ln_choose(30, 12) - ln_choose(30, 18)).abs() < 1e-9);
    }
}
