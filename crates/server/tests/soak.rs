//! Overload soak (nightly; run with `-- --ignored server_soak`):
//! calibrate the server's sustainable mutation rate, then drive it
//! **open-loop at 2× that rate** for `TIRM_SOAK_SECS` (default 60)
//! while readers poll. Asserts the pillars of the overload story:
//!
//! * the write queue stays **bounded** (≤ depth + 1 in-flight) — load
//!   is shed, never buffered without limit;
//! * **zero panics / protocol failures** — every offered request gets
//!   a typed response, `serve` returns cleanly;
//! * the ledger balances: offered = accepted + shed, and every
//!   accepted mutation was applied (epoch + allocator-rejected =
//!   accepted) — the drain guarantee under an hour of abuse is the
//!   same one the quick tests pin for six events;
//! * the **shed rate is reported** (stderr + asserted > 0: a server
//!   driven at 2× sustainable that never sheds is buffering
//!   somewhere).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use tirm_core::TirmOptions;
use tirm_online::OnlineConfig;
use tirm_server::{serve, Client, Response, ServerConfig};
use tirm_workloads::events::EventStreamSpec;
use tirm_workloads::{Dataset, DatasetKind, ProbModel, ScaleConfig};

const QUEUE_DEPTH: usize = 16;

fn soak_secs() -> f64 {
    std::env::var("TIRM_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0)
}

#[test]
#[ignore = "long-running overload soak; nightly runs it with --ignored"]
fn server_soak() {
    let scale = ScaleConfig {
        scale: 0.08,
        eval_runs: 0,
        threads: 1,
    };
    let dataset = Dataset::generate_with_model(
        DatasetKind::Epinions,
        ProbModel::Exponential,
        &scale,
        0x50ac,
    );
    let opts = TirmOptions {
        eps: 0.2,
        seed: 0x50ac,
        max_theta_per_ad: Some(50_000),
        ..TirmOptions::default()
    };
    let cfg = ServerConfig {
        online: OnlineConfig {
            tirm: opts,
            kappa: 2,
            ..OnlineConfig::default()
        },
        queue_depth: QUEUE_DEPTH,
        ..ServerConfig::default()
    };

    // One long event stream: a calibration prefix (closed-loop with
    // retry, measuring sustainable throughput) and an overdrive body.
    let secs = soak_secs();
    let stream = EventStreamSpec::for_dataset(DatasetKind::Epinions, 100_000, 0xab1e);
    let log = stream.generate(dataset.size_ratio);
    const CALIBRATION_EVENTS: usize = 40;

    let (driven, report) = serve(&dataset.graph, &dataset.topic_probs, cfg, |handle| {
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Readers poll stats throughout; their queue-depth samples
            // independently witness the bound.
            let sampler = {
                let stop = &stop;
                let addr = handle.addr();
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut max_depth_seen = 0usize;
                    let mut samples = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let stats = client.stats().unwrap();
                        max_depth_seen = max_depth_seen.max(stats.queue_depth);
                        samples += 1;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    (max_depth_seen, samples)
                })
            };

            let mut client = Client::connect(handle.addr()).unwrap();
            let mut events = log.iter().map(|e| &e.event);

            // Calibration: closed-loop with retry ⇒ sustainable rate.
            let t0 = Instant::now();
            for ev in events.by_ref().take(CALIBRATION_EVENTS) {
                client
                    .send_event_retrying(ev, Duration::from_millis(1), Duration::from_secs(60))
                    .unwrap();
            }
            while handle.queue_depth() > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let sustainable = CALIBRATION_EVENTS as f64 / t0.elapsed().as_secs_f64();

            // Overdrive: open-loop Poisson at 2× sustainable. Arrivals
            // fire on the clock's schedule whether or not the last
            // response liked it — that is what open-loop means.
            let target = 2.0 * sustainable;
            let mut rng = SmallRng::seed_from_u64(0xd21f7);
            let t0 = Instant::now();
            let deadline = Duration::from_secs_f64(secs);
            let mut next = Duration::ZERO;
            let (mut offered, mut accepted, mut shed) = (0u64, 0u64, 0u64);
            for ev in events {
                let gap: f64 = rng.gen::<f64>().max(1e-12);
                next += Duration::from_secs_f64(-gap.ln() / target);
                if next >= deadline {
                    break;
                }
                let now = t0.elapsed();
                if next > now {
                    std::thread::sleep(next - now);
                }
                offered += 1;
                match client.send_event(ev).unwrap() {
                    Response::Accepted { queue_depth, .. } => {
                        assert!(
                            queue_depth <= QUEUE_DEPTH + 1,
                            "queue depth {queue_depth} broke the bound"
                        );
                        accepted += 1;
                    }
                    Response::Overloaded { .. } => shed += 1,
                    Response::Regret { .. } => {} // stream queries ride along
                    other => panic!("unexpected response: {other:?}"),
                }
            }
            stop.store(true, Ordering::Release);
            let (sampled_max_depth, samples) = sampler.join().unwrap();
            (
                sustainable,
                target,
                offered,
                accepted,
                shed,
                sampled_max_depth,
                samples,
            )
        })
    })
    .unwrap();

    let (sustainable, target, offered, accepted, shed, sampled_max_depth, samples) = driven;
    let mutations = accepted + shed; // regret queries ride the stream but aren't offered load
    eprintln!(
        "soak: sustainable {sustainable:.1} ev/s, driven at {target:.1} ev/s for {secs:.0}s | \
         offered {offered} ({mutations} mutations), accepted {accepted}, shed {shed} \
         (shed rate {:.1}%) | max queue depth {} (server) / {} ({} reader samples)",
        report.shed_rate() * 100.0,
        report.max_queue_depth,
        sampled_max_depth,
        samples,
    );

    // Bounded queue, zero panics (serve returned Ok), balanced ledger.
    assert!(
        report.max_queue_depth <= QUEUE_DEPTH + 1,
        "unbounded queue growth: {}",
        report.max_queue_depth
    );
    assert!(sampled_max_depth <= QUEUE_DEPTH + 1);
    // Server-side totals include calibration traffic and its retries;
    // the client-side overdrive ledger is a lower bound on both sides.
    assert!(report.accepted >= accepted && report.shed >= shed);
    assert!(mutations <= offered);
    assert_eq!(
        report.final_snapshot.epoch + report.rejected,
        report.accepted,
        "every accepted mutation must be applied or allocator-rejected"
    );
    assert!(
        shed > 0,
        "2× overdrive against a bounded queue must shed load"
    );
    assert_eq!(report.bad_requests, 0);
}
