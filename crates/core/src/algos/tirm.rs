//! **TIRM** — Two-phase Iterative Regret Minimization (Algorithm 2), the
//! paper's scalable allocator.
//!
//! Per ad `i`, TIRM keeps a collection `R_i` of random RR sets sampled
//! under that ad's projected arc probabilities (CTPs are *not* baked into
//! the samples — Theorem 5 shows multiplying marginal coverage by
//! `δ(u, i)` is equivalent in expectation and avoids the ~1/CTP sample
//! blow-up of RRC sampling). The greedy core mirrors Algorithm 1 but reads
//! marginal revenues from coverage:
//!
//! `MG_i(v) = cpe(i) · n · δ(v,i) · score_i(v) / θ_i`.
//!
//! **Covered-set bookkeeping.** Algorithm 2 (line 12) removes covered RR
//! sets outright, which is exact when seeds click with probability 1 (the
//! §6.2 scalability setup). With realistic 1–3% CTPs a chosen seed only
//! covers a set with probability `δ`, so the exact possible-world
//! bookkeeping *decays* the set's weight by `(1 − δ)` instead
//! ([`WeightedRrCollection`]); at `δ = 1` the two coincide. The literal
//! hard-removal rule is kept behind [`TirmOptions::hard_cover`] and
//! compared in the `ablation` harness — at paper scale the chosen seeds'
//! reachability sets barely overlap and the difference vanishes, at
//! miniature scale hard removal under-estimates revenue and overshoots.
//!
//! Seed-set sizes are unknown upfront (budgets are monetary), so TIRM
//! starts each ad at `s_i = 1` and, whenever `|S_i|` reaches `s_i`, grows
//! `s_i` by `⌊R_i(S_i)/MG_last⌋` (a safe underestimate thanks to
//! submodularity), tops the collection up to `θ_i = max(L(s_i,ε), θ_i)`
//! samples (Eq. 5) and refreshes existing seeds' coverage credit
//! (Algorithm 4 `UpdateEstimates`).

use crate::algos::DROP_TOL;
use crate::allocation::Allocation;
use crate::metrics::AlgoStats;
use crate::problem::ProblemInstance;
use crate::regret::ad_regret;
use std::sync::Arc;
use std::time::Instant;
use tirm_graph::NodeId;
use tirm_rrset::heap::Verdict;
use tirm_rrset::weighted::{score_key, WeightedRrCollection};
use tirm_rrset::{
    FastPath, KptEstimator, KptState, LazyMaxHeap, ParallelSampler, RrIndex, RrSampler,
    SampleBound, SamplerState, SamplingConfig, SamplingLayout,
};

/// Options for TIRM.
#[derive(Clone, Copy, Debug)]
pub struct TirmOptions {
    /// Accuracy parameter ε of the sample-size bound (0.1 in the paper's
    /// quality experiments, 0.2 in the scalability experiments).
    pub eps: f64,
    /// Confidence parameter ℓ (failure probability `n^{-ℓ}`).
    pub ell: f64,
    /// RNG seed (whole run is deterministic given it).
    pub seed: u64,
    /// Worker threads for RR-set sampling (KPT estimation batches and
    /// θ-sample top-ups run through the [`ParallelSampler`] engine).
    /// `1` (the default) reproduces the serial path bit-for-bit; outputs
    /// are deterministic for every fixed `(seed, threads)` pair.
    pub threads: usize,
    /// Hard per-ad cap on RR sets (memory guard); `None` = uncapped.
    pub max_theta_per_ad: Option<usize>,
    /// Safety cap on total seeds; `None` lets regret terminate alone.
    pub max_total_seeds: Option<usize>,
    /// Ablation: when true, candidate selection maximizes the actual regret
    /// drop (scanning past the max-coverage node when it overshoots) rather
    /// than Algorithm 3's pure max-coverage rule.
    pub exact_drop_selection: bool,
    /// Ablation: the paper's literal line-12 rule — remove covered sets
    /// regardless of the covering seed's CTP (exact only at `δ = 1`).
    pub hard_cover: bool,
    /// Mark-layout policy for the sampling hot path (see [`RelabelMode`]).
    /// Pure cache optimization: the allocation (seeds, revenue estimates,
    /// regret) is bit-identical under every mode — pinned by the
    /// `relabel_equivalence` property tests. Defaults to the
    /// `TIRM_RELABEL` env var (`0` ⇒ [`RelabelMode::Off`], any other
    /// value ⇒ [`RelabelMode::On`], unset ⇒ [`RelabelMode::Auto`]).
    pub relabel: RelabelMode,
}

/// Degree-relabeling only pays once the O(n) mark table stops fitting in
/// cache: below that, every row is a hit whatever its index, and the
/// relabeled arm's extra per-arc `marks[pos]` stream (4 more bytes per
/// arc) is pure cost. 2¹⁸ nodes puts the table at 1 MiB — around where it
/// outgrows typical L2 and scattered hub rows start missing.
pub const RELABEL_AUTO_MIN_NODES: usize = 1 << 18;

/// Policy for the degree-ordered mark layout of the sampling hot path.
/// The sampled sets — and therefore the whole allocation — are
/// bit-identical under every variant; this only picks where the mark
/// array's bytes live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelabelMode {
    /// Relabel only when the graph is large enough for the mark table to
    /// outgrow cache (`n ≥` [`RELABEL_AUTO_MIN_NODES`]). The default.
    Auto,
    /// Always use the degree-ordered layout.
    On,
    /// Always use the identity layout.
    Off,
}

impl RelabelMode {
    /// Whether a graph of `n` nodes gets the degree-ordered layout.
    pub fn enabled_for(self, n: usize) -> bool {
        match self {
            RelabelMode::Auto => n >= RELABEL_AUTO_MIN_NODES,
            RelabelMode::On => true,
            RelabelMode::Off => false,
        }
    }
}

impl TirmOptions {
    /// Shrinks the per-ad θ cap linearly with a sub-unit graph scale
    /// (the workspace-wide convention shared by the perf suite's cells
    /// and the `online_replay` / `tirm_server` binaries, so artifacts
    /// and binaries always measure under the same cap): a 50 000-set
    /// floor keeps coverage estimates meaningful at CI scales, and
    /// scales ≥ 1 are a no-op. The floor never *raises* a configured
    /// cap that was already below it, and uncapped options stay
    /// uncapped.
    pub fn scale_theta_cap(&mut self, scale: f64) {
        self.max_theta_per_ad = self
            .max_theta_per_ad
            .map(|cap| ((cap as f64 * scale.min(1.0)) as usize).max(cap.min(50_000)));
    }
}

impl Default for TirmOptions {
    fn default() -> Self {
        TirmOptions {
            eps: 0.1,
            ell: 1.0,
            seed: 0x7153_11b5,
            threads: 1,
            max_theta_per_ad: Some(4_000_000),
            max_total_seeds: None,
            exact_drop_selection: false,
            hard_cover: false,
            relabel: match std::env::var("TIRM_RELABEL").as_deref() {
                Ok("0") => RelabelMode::Off,
                Ok(_) => RelabelMode::On,
                Err(_) => RelabelMode::Auto,
            },
        }
    }
}

/// Per-ad RNG plan: the seeds driving an ad's KPT-estimation stream and
/// its θ-sampling stream. [`tirm_allocate`] derives one per ad from the
/// ad's *index* in the problem (the historical scheme); long-lived callers
/// like the online serving layer derive them from a stable *ad id* instead
/// ([`AdSeeds::for_ad_id`]), so an ad keeps its streams — and its cached
/// RR index stays valid — no matter how arrivals and departures reshuffle
/// indices around it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdSeeds {
    /// Seed of the KPT estimator's sampling engine.
    pub kpt: u64,
    /// Seed of the θ-sampling engine filling the ad's collection.
    pub engine: u64,
}

impl AdSeeds {
    /// The index-derived plan [`tirm_allocate`] has always used.
    pub fn for_index(base: u64, i: usize) -> AdSeeds {
        AdSeeds {
            kpt: base ^ (0xabcd + i as u64),
            engine: base.wrapping_add(i as u64),
        }
    }

    /// A plan derived from a stable ad id (splitmix64-mixed so nearby ids
    /// land on unrelated streams).
    pub fn for_ad_id(base: u64, id: u64) -> AdSeeds {
        let h = splitmix64(id ^ 0x0a11_0c47_0a11_0c47);
        AdSeeds {
            kpt: base ^ h ^ 0xabcd,
            engine: base ^ h.rotate_left(21),
        }
    }
}

/// SplitMix64 finalizer — a full-avalanche 64-bit mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reusable per-ad sampling capital: everything TIRM pays for that does
/// *not* depend on budgets or on the other ads — the sampled RR sets with
/// their inverted postings, the θ-engine's stream position, the KPT width
/// cache, and the pristine score vector of the initial θ₀ prefix. A later
/// run with the same `(AdSeeds, threads)` resumes from this state and is
/// bit-identical to a cold run, paying graph walks only for sets beyond
/// the cached tail.
pub struct AdWarmState {
    index: RrIndex,
    engine: ParallelSampler,
    kpt: KptState,
    /// `(θ₀, scores)` right after the initial activation, before any decay
    /// (scores are exact integers there, so restoring is bitwise-safe).
    base: Option<(usize, Vec<f64>)>,
    /// Configuration echo, asserted on reuse.
    seeds: AdSeeds,
    threads: usize,
}

impl AdWarmState {
    /// RR sets cached in the index.
    pub fn num_sets(&self) -> usize {
        self.index.num_sets()
    }

    /// Exact bytes of reusable capital — index, θ-engine workspaces, KPT
    /// width cache + estimation workspaces, and the base score snapshot —
    /// the online pool's eviction currency.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes()
            + self.engine.memory_bytes()
            + self.kpt.memory_bytes()
            + self
                .base
                .as_ref()
                .map(|(_, s)| s.capacity() * 8)
                .unwrap_or(0)
    }

    /// The seed plan this state was built under.
    pub fn seeds(&self) -> AdSeeds {
        self.seeds
    }

    /// Decomposes the state into owned flat arrays for checkpointing
    /// (compacting the index first, so the five index arrays are its
    /// entire contents). The seed plan and thread count are *not* part of
    /// the decomposition: both are derivable from the owner's
    /// configuration and are re-supplied — and re-validated — by
    /// [`Self::from_parts`].
    pub fn export_parts(&mut self) -> AdWarmParts {
        let (num_nodes, set_offsets, set_nodes, frozen_offsets, frozen_data) =
            self.index.compacted_parts();
        let (kpt_widths, kpt_engine) = self.kpt.export_parts();
        AdWarmParts {
            num_nodes,
            set_offsets: set_offsets.to_vec(),
            set_nodes: set_nodes.to_vec(),
            frozen_offsets: frozen_offsets.to_vec(),
            frozen_data: frozen_data.to_vec(),
            engine: self.engine.export_state(),
            kpt_widths: kpt_widths.to_vec(),
            kpt_engine,
            base: self.base.clone(),
        }
    }

    /// Rebuilds warm capital from checkpointed parts under the owner's
    /// seed plan and thread count. Everything is re-validated: index
    /// invariants, RNG shard counts, and that the captured engine streams
    /// actually belong to `(seeds, threads)` — a checkpoint restored into
    /// a differently-configured allocator errors instead of silently
    /// producing a diverged sample stream.
    pub fn from_parts(
        parts: AdWarmParts,
        seeds: AdSeeds,
        threads: usize,
    ) -> Result<AdWarmState, String> {
        if parts.engine.config.threads != threads {
            return Err(format!(
                "θ engine checkpointed with {} threads, allocator runs {}",
                parts.engine.config.threads, threads
            ));
        }
        if parts.engine.config.seed != seeds.engine || parts.kpt_engine.config.seed != seeds.kpt {
            return Err("checkpointed engine streams belong to another seed plan".to_string());
        }
        let index = RrIndex::from_compacted_parts(
            parts.num_nodes,
            parts.set_offsets,
            parts.set_nodes,
            parts.frozen_offsets,
            parts.frozen_data,
        )?;
        let engine = ParallelSampler::from_state(&parts.engine, parts.num_nodes)?;
        let kpt = KptState::from_parts(parts.kpt_widths, &parts.kpt_engine, parts.num_nodes)?;
        if let Some((_, scores)) = &parts.base {
            if scores.len() != parts.num_nodes {
                return Err(format!(
                    "base snapshot has {} scores for {} nodes",
                    scores.len(),
                    parts.num_nodes
                ));
            }
        }
        Ok(AdWarmState {
            index,
            engine,
            kpt,
            base: parts.base,
            seeds,
            threads,
        })
    }
}

/// Owned, serializable decomposition of an [`AdWarmState`] — the flat
/// arrays the online checkpoint layer writes through the checksummed
/// snapshot format and reads back on recovery. Restoring the full capital
/// (instead of resampling) is what makes a warm restart both fast and
/// stream-exact: the rebuilt state continues the very same RNG streams,
/// so post-restore reconciliations are bit-identical to an uninterrupted
/// run's.
#[derive(Clone, Debug)]
pub struct AdWarmParts {
    /// Graph size the capital was sampled over.
    pub num_nodes: usize,
    /// RR-set extents: `set_offsets[i]..set_offsets[i+1]` in `set_nodes`.
    pub set_offsets: Vec<u32>,
    /// Flattened RR-set membership lists.
    pub set_nodes: Vec<u32>,
    /// Compacted postings offsets (node → extent in `frozen_data`).
    pub frozen_offsets: Vec<u32>,
    /// Compacted postings (set ids per node, ascending).
    pub frozen_data: Vec<u32>,
    /// θ-sampling engine position.
    pub engine: SamplerState,
    /// Cached KPT sample widths.
    pub kpt_widths: Vec<u64>,
    /// KPT estimation engine position.
    pub kpt_engine: SamplerState,
    /// `(θ₀, scores)` base snapshot, if one was taken.
    pub base: Option<(usize, Vec<f64>)>,
}

/// Per-ad sampling and coverage state.
struct AdState<'a> {
    sampler: RrSampler<'a>,
    /// Precomputed fast sampling route (thresholds + shared mark layout);
    /// bit-identical to the plain route, used for every draw.
    fast: FastPath,
    coll: WeightedRrCollection,
    heap: LazyMaxHeap,
    kpt: KptEstimator<'a>,
    /// Sampling engine for this ad's collection (persistent per-shard RNG
    /// streams across the initial batch and every top-up).
    engine: ParallelSampler,
    /// Base snapshot carried through for the warm-state hand-back.
    base: Option<(usize, Vec<f64>)>,
    ad_seeds: AdSeeds,
    /// Current seed-count estimate `s_i`.
    s_est: usize,
    /// Seeds in selection order: (node, decay δ applied, credited score).
    seeds: Vec<(NodeId, f64, f64)>,
    /// Estimated revenue `Π_i(S_i)`.
    revenue: f64,
    /// Marginal revenue of the most recent seed.
    last_mg: f64,
    /// No further regret-reducing candidate exists.
    saturated: bool,
    /// θ cap was hit (diagnostic).
    capped: bool,
}

impl<'a> AdState<'a> {
    /// Brings the collection up to `theta` active sets: cached dormant
    /// sets are re-activated first (bit-identical to sampling them, per
    /// the engine's batch-split invariance), then fresh sets are drawn.
    fn ensure_theta(&mut self, theta: usize, oracle_calls: &mut usize) {
        let have = self.coll.num_sets();
        if theta <= have {
            return;
        }
        let mut need = theta - have;
        need -= self.coll.activate_next(need);
        if need > 0 {
            let drawn =
                self.engine
                    .sample_into_with(&self.sampler, Some(&self.fast), need, &mut self.coll);
            debug_assert_eq!(drawn, need, "θ engines run uncapped");
            *oracle_calls += drawn;
        }
    }
}

/// Runs TIRM (Algorithm 2). Returns the allocation and run statistics.
pub fn tirm_allocate(problem: &ProblemInstance<'_>, opts: TirmOptions) -> (Allocation, AlgoStats) {
    let seeds: Vec<AdSeeds> = (0..problem.num_ads())
        .map(|i| AdSeeds::for_index(opts.seed, i))
        .collect();
    tirm_allocate_seeded(problem, opts, &seeds)
}

/// [`tirm_allocate`] with an explicit per-ad seed plan. With
/// `AdSeeds::for_index(opts.seed, i)` for every ad this *is*
/// [`tirm_allocate`]; stable-id plans let a caller reproduce the batch
/// result for an ad population whose indices have churned.
pub fn tirm_allocate_seeded(
    problem: &ProblemInstance<'_>,
    opts: TirmOptions,
    ad_seeds: &[AdSeeds],
) -> (Allocation, AlgoStats) {
    let warm = (0..problem.num_ads()).map(|_| None).collect();
    let (alloc, stats, _) = tirm_run(problem, opts, ad_seeds, warm, false);
    (alloc, stats)
}

/// The warm-start entry point behind the online serving layer: per-ad
/// sampling capital flows in (`None` ⇒ cold start for that ad) and the
/// updated capital flows back out alongside the allocation. The returned
/// allocation is **bit-identical** to a cold
/// [`tirm_allocate_seeded`] run with the same `(problem, opts, ad_seeds)`
/// — warm states only change *where sets come from* (cache vs fresh graph
/// walks), never their contents or the selection arithmetic. Enforced by
/// the `replay ≡ batch` property tests in `tirm_online`.
pub fn tirm_allocate_warm(
    problem: &ProblemInstance<'_>,
    opts: TirmOptions,
    ad_seeds: &[AdSeeds],
    warm: Vec<Option<AdWarmState>>,
) -> (Allocation, AlgoStats, Vec<AdWarmState>) {
    tirm_run(problem, opts, ad_seeds, warm, true)
}

/// Shared driver behind the three entry points. `want_warm` gates the
/// θ₀-score base snapshot (an O(n) copy per ad that only pays off when
/// the caller keeps the warm states).
fn tirm_run(
    problem: &ProblemInstance<'_>,
    opts: TirmOptions,
    ad_seeds: &[AdSeeds],
    warm: Vec<Option<AdWarmState>>,
    want_warm: bool,
) -> (Allocation, AlgoStats, Vec<AdWarmState>) {
    let start = Instant::now();
    let h = problem.num_ads();
    assert_eq!(ad_seeds.len(), h, "one seed plan per ad");
    assert_eq!(warm.len(), h, "one warm slot per ad");
    let n = problem.num_nodes();
    let nf = n as f64;
    let mut alloc = Allocation::empty(h, n);
    let mut oracle_calls = 0usize;

    let mut bound = SampleBound::new(n, opts.eps);
    bound.ell = opts.ell;
    bound.max_theta = opts.max_theta_per_ad;

    // One mark layout for the whole run (same graph for every ad); the
    // per-ad FastPaths share it. Building the degree ordering is
    // O(n log n + m) once — noise against the sampling volume.
    let layout = Arc::new(if opts.relabel.enabled_for(n) {
        tirm_obs::registry::RELABEL_SCALE_AWARE.inc();
        SamplingLayout::degree_ordered(problem.graph)
    } else {
        tirm_obs::registry::RELABEL_IDENTITY.inc();
        SamplingLayout::identity()
    });

    // Initialise per-ad state: s_i = 1, θ_i = L(1, ε), sample (or
    // re-activate the cached prefix), build heap (Algorithm 2, lines 1–3).
    let mut states: Vec<AdState<'_>> = Vec::with_capacity(h);
    for (i, slot) in warm.into_iter().enumerate() {
        let sampler = RrSampler::new(problem.graph, &problem.edge_probs[i]);
        let fast = FastPath::new(layout.clone(), problem.graph, &problem.edge_probs[i]);
        let seeds = ad_seeds[i];
        let (kpt, engine, index, base) = match slot {
            Some(w) => {
                assert_eq!(w.seeds, seeds, "warm state belongs to another seed plan");
                assert_eq!(
                    w.threads, opts.threads,
                    "warm state from another thread count"
                );
                (
                    KptEstimator::from_state(sampler, opts.ell, w.kpt),
                    w.engine,
                    w.index,
                    w.base,
                )
            }
            None => (
                KptEstimator::with_config(
                    sampler,
                    opts.ell,
                    SamplingConfig::new(opts.threads, seeds.kpt),
                ),
                ParallelSampler::new(SamplingConfig::new(opts.threads, seeds.engine), n),
                RrIndex::new(n),
                None,
            ),
        };
        let mut st = AdState {
            sampler,
            fast,
            coll: WeightedRrCollection::from_index(index),
            heap: LazyMaxHeap::new(),
            kpt,
            engine,
            base,
            ad_seeds: seeds,
            s_est: 1,
            seeds: Vec::new(),
            revenue: 0.0,
            last_mg: f64::INFINITY,
            saturated: false,
            capped: false,
        };
        let kpt1 = st.kpt.estimate_with(1, Some(&st.fast));
        let (theta, capped) = bound.theta(1, kpt1);
        st.capped = capped;
        match &st.base {
            // O(n) shortcut past the O(entries) activation walk: the
            // pristine θ₀ scores are integers, so restoring them is
            // bit-identical to re-activating set by set.
            Some((t0, scores)) if *t0 == theta => st.coll.restore_prefix(theta, scores),
            _ => {
                st.ensure_theta(theta, &mut oracle_calls);
                st.base = want_warm.then(|| (theta, st.coll.scores().to_vec()));
            }
        }
        rebuild_heap(&mut st);
        states.push(st);
    }

    // Main loop (Algorithm 2, lines 4–19).
    loop {
        if let Some(cap) = opts.max_total_seeds {
            if alloc.total_seeds() >= cap {
                break;
            }
        }
        let mut best: Option<(usize, NodeId, f64, f64, f64)> = None; // ad, node, drop, mg, score
        for (i, st) in states.iter_mut().enumerate() {
            if st.saturated {
                continue;
            }
            let cand = if opts.exact_drop_selection {
                select_best_drop(problem, &alloc, st, i, nf, &mut oracle_calls)
            } else {
                select_best_node(problem, &alloc, st, i, &mut oracle_calls).map(|(v, score)| {
                    let mg = marginal_revenue(problem, i, v, score, st.coll.num_sets(), nf);
                    (v, score, mg)
                })
            };
            let (v, score, mg) = match cand {
                Some(c) => c,
                None => {
                    st.saturated = true;
                    continue;
                }
            };
            let budget = problem.target_budget(i);
            let seeds_len = alloc.seeds(i).len();
            let current = ad_regret(budget, st.revenue, problem.lambda, seeds_len);
            let next = ad_regret(budget, st.revenue + mg, problem.lambda, seeds_len + 1);
            let drop = current - next;
            if drop <= DROP_TOL {
                // The best candidate for this ad no longer reduces regret —
                // the ad is saturated (Algorithm 1's per-pair constraint).
                st.saturated = true;
                continue;
            }
            if best.is_none_or(|(_, _, d, _, _)| drop > d) {
                best = Some((i, v, drop, mg, score));
            }
        }
        let (i, v, _drop, mg, _score) = match best {
            Some(b) => b,
            None => break,
        };

        // Commit (lines 10–12): assign, credit coverage, decay covered
        // sets (hard removal when the ablation flag asks for it).
        alloc.assign(v, i);
        let st = &mut states[i];
        let delta = problem.ctp.get(v, i) as f64;
        let decay = if opts.hard_cover { 1.0 } else { delta };
        let credited = st.coll.decay_node(v, decay);
        st.revenue += mg;
        st.last_mg = mg;
        st.seeds.push((v, decay, credited));

        // Seed-count growth + sample top-up (lines 14–19).
        if alloc.seeds(i).len() == st.s_est {
            grow_and_resample(problem, st, i, &bound, nf, &mut oracle_calls);
        }
    }

    // Settle the postings layout before measuring so artifacts report the
    // exact-fit frozen tier, not the transient hot-arena slack. (Inside
    // `start.elapsed()` on purpose: compaction is part of the work the
    // allocation pays for.)
    for st in &mut states {
        st.coll.compact_postings();
    }
    let stats = AlgoStats {
        runtime: start.elapsed(),
        seeds_per_ad: (0..h).map(|i| alloc.seeds(i).len()).collect(),
        estimated_revenue: states.iter().map(|s| s.revenue).collect(),
        memory_bytes: states.iter().map(|s| s.coll.memory_bytes()).sum(),
        rr_sets_per_ad: states.iter().map(|s| s.coll.num_sets()).collect(),
        oracle_calls,
        postings_bytes: states.iter().map(|s| s.coll.postings_bytes()).sum(),
        postings_entries: states.iter().map(|s| s.coll.total_entries()).sum(),
        legacy_postings_bytes: states.iter().map(|s| s.coll.legacy_postings_bytes()).sum(),
    };
    let warm_out = states
        .into_iter()
        .map(|st| AdWarmState {
            index: st.coll.take_index(),
            engine: st.engine,
            kpt: st.kpt.into_state(),
            base: st.base,
            seeds: st.ad_seeds,
            threads: opts.threads,
        })
        .collect();
    (alloc, stats, warm_out)
}

/// `MG_i(v) = cpe(i) · n · δ(v,i) · score / θ`.
#[inline]
fn marginal_revenue(
    problem: &ProblemInstance<'_>,
    ad: usize,
    v: NodeId,
    score: f64,
    theta: usize,
    nf: f64,
) -> f64 {
    problem.ads[ad].cpe * nf * problem.ctp.get(v, ad) as f64 * score / theta as f64
}

/// Algorithm 3 — `SelectBestNode`: the eligible node with maximum weighted
/// coverage, via the lazy heap. The winner is *peeked*: it is re-pushed so
/// the heap stays consistent if another ad wins this round.
fn select_best_node(
    problem: &ProblemInstance<'_>,
    alloc: &Allocation,
    st: &mut AdState<'_>,
    ad: usize,
    oracle_calls: &mut usize,
) -> Option<(NodeId, f64)> {
    *oracle_calls += 1;
    let coll = &st.coll;
    let got = st.heap.pop_best(|v, key| {
        if !alloc.can_assign(problem, v, ad) {
            return Verdict::Drop;
        }
        let cur = coll.score(v);
        if cur <= 1e-12 {
            return Verdict::Drop;
        }
        let cur_key = score_key(cur);
        if cur_key != key {
            Verdict::Refresh(cur_key)
        } else {
            Verdict::Take
        }
    });
    if let Some((v, key)) = got {
        st.heap.push(v, key); // peek semantics
        Some((v, f64::from_bits(key)))
    } else {
        None
    }
}

/// Ablation variant: scan candidates in decreasing coverage and return the
/// one with the best *regret drop*. Early-stops when the next candidate's
/// optimistic drop (≤ its marginal revenue) cannot beat the best found.
fn select_best_drop(
    problem: &ProblemInstance<'_>,
    alloc: &Allocation,
    st: &mut AdState<'_>,
    ad: usize,
    nf: f64,
    oracle_calls: &mut usize,
) -> Option<(NodeId, f64, f64)> {
    let budget = problem.target_budget(ad);
    let seeds_len = alloc.seeds(ad).len();
    let current = ad_regret(budget, st.revenue, problem.lambda, seeds_len);
    let theta = st.coll.num_sets();
    let mut popped: Vec<(NodeId, u64)> = Vec::new();
    let mut best: Option<(NodeId, f64, f64, f64)> = None; // v, score, mg, drop
    loop {
        *oracle_calls += 1;
        let coll = &st.coll;
        let got = st.heap.pop_best(|v, key| {
            if !alloc.can_assign(problem, v, ad) {
                return Verdict::Drop;
            }
            let cur = coll.score(v);
            if cur <= 1e-12 {
                return Verdict::Drop;
            }
            let cur_key = score_key(cur);
            if cur_key != key {
                Verdict::Refresh(cur_key)
            } else {
                Verdict::Take
            }
        });
        let (v, key) = match got {
            Some(x) => x,
            None => break,
        };
        popped.push((v, key));
        let score = f64::from_bits(key);
        let mg = marginal_revenue(problem, ad, v, score, theta, nf);
        let next = ad_regret(budget, st.revenue + mg, problem.lambda, seeds_len + 1);
        let drop = current - next;
        if best.as_ref().is_none_or(|&(_, _, _, d)| drop > d) {
            best = Some((v, score, mg, drop));
        }
        if let Some(&(_, _, _, best_drop)) = best.as_ref() {
            // Later candidates have smaller scores, hence smaller mg, and
            // drop ≤ mg — stop once mg can no longer win.
            if mg <= best_drop {
                break;
            }
        }
        if popped.len() > 64 {
            break; // bounded scan; diminishing returns beyond this
        }
    }
    for &(v, key) in &popped {
        st.heap.push(v, key);
    }
    best.map(|(v, score, mg, _)| (v, score, mg))
}

/// Lines 14–19 of Algorithm 2 plus Algorithm 4 (`UpdateEstimates`).
fn grow_and_resample(
    problem: &ProblemInstance<'_>,
    st: &mut AdState<'_>,
    ad: usize,
    bound: &SampleBound,
    nf: f64,
    oracle_calls: &mut usize,
) {
    let budget = problem.target_budget(ad);
    let budget_regret = (budget - st.revenue).abs();
    // s_i ← s_i + ⌊R_i(S_i)/MG_last⌋ (line 15). MG_last > 0 by construction.
    let growth = if st.last_mg > 0.0 && st.revenue < budget {
        (budget_regret / st.last_mg).floor() as usize
    } else {
        0
    };
    if growth == 0 {
        return;
    }
    st.s_est += growth;

    // θ_i ← max(L(s_i, ε), θ_i) (line 16) with the TIM+-style OPT lower
    // bound: the larger of KPT(s_i) and the (1−ε)-discounted CTP-free
    // union-coverage estimate of the current seed set (both are
    // high-probability lower bounds on OPT_{s_i}).
    let kpt = st.kpt.estimate_with(st.s_est, Some(&st.fast));
    let theta_now = st.coll.num_sets();
    let union_est = nf * st.coll.union_coverage() as f64 / theta_now.max(1) as f64;
    let opt_lb = kpt.max(union_est * (1.0 - bound.eps)).max(1.0);
    let (theta_needed, capped) = bound.theta(st.s_est, opt_lb);
    st.capped |= capped;
    if theta_needed > theta_now {
        let first_new_sid = theta_now as u32;
        st.ensure_theta(theta_needed, oracle_calls);
        // Algorithm 4: apply existing seeds (in selection order) to the
        // fresh sets so future marginals stay marginal, crediting the
        // extra coverage to each seed.
        for k in 0..st.seeds.len() {
            let (v, decay, credited) = st.seeds[k];
            let extra = st.coll.decay_node_from(v, decay, first_new_sid);
            st.seeds[k] = (v, decay, credited + extra);
        }
        // Π_i(S_i) recomputed against the enlarged collection (line 18).
        let theta_new = st.coll.num_sets() as f64;
        st.revenue = if decayed_estimates_exact(st) {
            // Weighted mode: n/θ·Σ_R (1 − w_R) is the unbiased σ_ctp.
            problem.ads[ad].cpe * nf * st.coll.deficit() / theta_new
        } else {
            // Hard-removal mode: the paper's Σ δ(v)·cov(v) bookkeeping.
            st.seeds
                .iter()
                .map(|&(v, _, credited)| {
                    problem.ads[ad].cpe * nf * problem.ctp.get(v, ad) as f64 * credited / theta_new
                })
                .sum()
        };
        // Scores grew for everyone → lazy invalidation is unsound until
        // the heap is rebuilt.
        rebuild_heap(st);
    }
}

/// True when the collection's decay deltas equal the seeds' CTPs (weighted
/// mode), making the deficit estimator exact.
fn decayed_estimates_exact(st: &AdState<'_>) -> bool {
    // In hard-cover mode every decay was 1.0; CTPs below 1 then mismatch.
    // (With genuinely all-1 CTPs the two branches agree anyway.)
    st.seeds.iter().all(|&(_, decay, _)| decay < 1.0) || st.seeds.is_empty()
}

/// Fills the per-ad heap from current weighted scores.
fn rebuild_heap(st: &mut AdState<'_>) {
    let coll = &st.coll;
    let n = coll.num_nodes();
    st.heap.rebuild((0..n as NodeId).filter_map(|v| {
        let s = coll.score(v);
        (s > 1e-12).then(|| (v, score_key(s)))
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{myopic_allocate, myopic_plus_allocate};
    use crate::eval::evaluate;
    use crate::problem::{Advertiser, Attention};
    use tirm_graph::generators;
    use tirm_topics::{CtpTable, TopicDist};

    fn opts(seed: u64) -> TirmOptions {
        TirmOptions {
            eps: 0.2,
            seed,
            max_theta_per_ad: Some(200_000),
            ..TirmOptions::default()
        }
    }

    #[test]
    fn relabel_mode_policy() {
        assert!(!RelabelMode::Auto.enabled_for(RELABEL_AUTO_MIN_NODES - 1));
        assert!(RelabelMode::Auto.enabled_for(RELABEL_AUTO_MIN_NODES));
        assert!(RelabelMode::On.enabled_for(1));
        assert!(!RelabelMode::Off.enabled_for(usize::MAX));
    }

    #[test]
    fn scale_theta_cap_convention() {
        let capped = |cap, scale| {
            let mut o = TirmOptions {
                max_theta_per_ad: cap,
                ..TirmOptions::default()
            };
            o.scale_theta_cap(scale);
            o.max_theta_per_ad
        };
        // Linear shrink below scale 1, floored at 50k.
        assert_eq!(capped(Some(400_000), 0.1), Some(50_000));
        assert_eq!(capped(Some(1_000_000), 0.5), Some(500_000));
        // Scales ≥ 1 are a no-op — even for caps under the floor.
        assert_eq!(capped(Some(400_000), 1.0), Some(400_000));
        assert_eq!(capped(Some(400_000), 40.0), Some(400_000));
        assert_eq!(capped(Some(20_000), 1.0), Some(20_000));
        // The floor never raises a small configured cap.
        assert_eq!(capped(Some(20_000), 0.1), Some(20_000));
        // Uncapped stays uncapped.
        assert_eq!(capped(None, 0.1), None);
    }

    #[test]
    fn single_ad_star_reaches_budget() {
        // Star: hub spread 1+99·0.3 = 30.7, leaves 1. Budget 50 keeps the
        // paper's §4.1 working assumption p_i < 1 (no single node can
        // overshoot the whole budget), so greedy can land near the target:
        // hub + ~28 leaves ≈ 50.
        let g = generators::star(100);
        let ads = vec![Advertiser::new(50.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.3f32; g.num_edges()]];
        let ctp = CtpTable::constant(100, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, stats) = tirm_allocate(&p, opts(1));
        alloc.validate(&p).unwrap();
        let ev = evaluate(&p, &alloc, 20_000, 9, 2);
        assert!(
            ev.regret.total() < 8.0,
            "regret {} revenue {}",
            ev.regret.total(),
            ev.revenues[0]
        );
        assert!(
            (stats.estimated_revenue[0] - ev.revenues[0]).abs() < 0.25 * ev.revenues[0].max(1.0),
            "estimate {} vs MC {}",
            stats.estimated_revenue[0],
            ev.revenues[0]
        );
    }

    #[test]
    fn estimate_unbiased_at_small_ctp() {
        // The weighted-coverage estimator must track MC revenue closely
        // even with overlapping cascades and tiny CTPs (this is exactly
        // where hard removal under-estimates).
        let g = generators::preferential_attachment(400, 6, 0.3, 3);
        let ads = vec![Advertiser::new(4.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.15f32; g.num_edges()]];
        let ctp = CtpTable::constant(400, 1, 0.05);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, stats) = tirm_allocate(&p, opts(5));
        let ev = evaluate(&p, &alloc, 40_000, 3, 2);
        let est = stats.estimated_revenue[0];
        let mc = ev.revenues[0];
        assert!(
            (est - mc).abs() < 0.2 * mc.max(0.5) + 0.1,
            "estimate {est} vs MC {mc}"
        );
    }

    #[test]
    fn hard_cover_underestimates_under_overlap() {
        // With tiny CTPs and overlapping cascades, the literal line-12
        // rule must end up with MC revenue noticeably above its own
        // estimate (the bias the weighted rule removes).
        let g = generators::preferential_attachment(400, 6, 0.3, 3);
        let ads = vec![Advertiser::new(6.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.15f32; g.num_edges()]];
        let ctp = CtpTable::constant(400, 1, 0.05);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let mut o = opts(5);
        o.hard_cover = true;
        let (alloc, stats) = tirm_allocate(&p, o);
        let ev = evaluate(&p, &alloc, 40_000, 3, 2);
        assert!(
            ev.revenues[0] > stats.estimated_revenue[0] * 1.02,
            "hard removal should under-estimate: est {} vs MC {}",
            stats.estimated_revenue[0],
            ev.revenues[0]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::preferential_attachment(300, 3, 0.2, 5);
        let ads = vec![Advertiser::new(15.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.1f32; g.num_edges()]];
        let ctp = CtpTable::constant(300, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (a1, _) = tirm_allocate(&p, opts(42));
        let (a2, _) = tirm_allocate(&p, opts(42));
        assert_eq!(a1.seeds(0), a2.seeds(0));
    }

    #[test]
    fn parallel_sampling_deterministic_and_comparable() {
        let g = generators::preferential_attachment(300, 3, 0.2, 5);
        let mk = || {
            let ads = vec![Advertiser::new(15.0, 1.0, TopicDist::single(1, 0))];
            let probs = vec![vec![0.1f32; g.num_edges()]];
            let ctp = CtpTable::constant(300, 1, 1.0);
            ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0)
        };
        let p = mk();
        let mut par = opts(42);
        par.threads = 4;
        // Same (seed, threads) ⇒ identical allocation.
        let (a1, _) = tirm_allocate(&p, par);
        let (a2, _) = tirm_allocate(&p, par);
        assert_eq!(a1.seeds(0), a2.seeds(0));
        // Parallel sampling must not change solution quality materially.
        let (serial, _) = tirm_allocate(&p, opts(42));
        let r_par = evaluate(&p, &a1, 8_000, 3, 2).regret.total();
        let r_ser = evaluate(&p, &serial, 8_000, 3, 2).regret.total();
        assert!(
            r_par <= r_ser * 1.5 + 1.0,
            "parallel regret {r_par} vs serial {r_ser}"
        );
    }

    #[test]
    fn beats_myopic_baselines_on_regret() {
        let g = generators::preferential_attachment(500, 4, 0.3, 7);
        let h = 3;
        let ads = (0..h)
            .map(|_| Advertiser::new(12.0, 1.0, TopicDist::single(1, 0)))
            .collect::<Vec<_>>();
        let probs = vec![vec![0.05f32; g.num_edges()]; h];
        let ctp = CtpTable::uniform_random(500, h, 0.05, 0.15, 3);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(2), 0.0);
        let (tirm_alloc, _) = tirm_allocate(&p, opts(11));
        let (myo_alloc, _) = myopic_allocate(&p);
        let (myop_alloc, _) = myopic_plus_allocate(&p);
        tirm_alloc.validate(&p).unwrap();
        let runs = 4_000;
        let r_tirm = evaluate(&p, &tirm_alloc, runs, 1, 2).regret.total();
        let r_myo = evaluate(&p, &myo_alloc, runs, 1, 2).regret.total();
        let r_myop = evaluate(&p, &myop_alloc, runs, 1, 2).regret.total();
        assert!(
            r_tirm < r_myo && r_tirm < r_myop,
            "TIRM {r_tirm} vs MYOPIC {r_myo} / MYOPIC+ {r_myop}"
        );
    }

    #[test]
    fn lambda_reduces_seed_usage() {
        let g = generators::preferential_attachment(400, 3, 0.2, 9);
        let mk = |lambda: f64| {
            let ads = vec![Advertiser::new(10.0, 1.0, TopicDist::single(1, 0))];
            let probs = vec![vec![0.05f32; g.num_edges()]];
            let ctp = CtpTable::constant(400, 1, 0.2);
            ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), lambda)
        };
        let p0 = mk(0.0);
        let p1 = mk(0.15);
        let (a0, _) = tirm_allocate(&p0, opts(3));
        let (a1, _) = tirm_allocate(&p1, opts(3));
        assert!(
            a1.total_seeds() <= a0.total_seeds(),
            "λ>0 used {} seeds vs {} at λ=0",
            a1.total_seeds(),
            a0.total_seeds()
        );
    }

    #[test]
    fn attention_bound_respected_under_competition() {
        let g = generators::star(50);
        let h = 4;
        let ads = (0..h)
            .map(|_| Advertiser::new(8.0, 1.0, TopicDist::single(1, 0)))
            .collect::<Vec<_>>();
        let probs = vec![vec![0.4f32; g.num_edges()]; h];
        let ctp = CtpTable::constant(50, h, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (alloc, _) = tirm_allocate(&p, opts(5));
        alloc.validate(&p).unwrap();
        let hub_owners = (0..h).filter(|&i| alloc.seeds(i).contains(&0)).count();
        assert!(hub_owners <= 1);
    }

    #[test]
    fn exact_drop_ablation_not_worse() {
        let g = generators::preferential_attachment(300, 3, 0.2, 13);
        let ads = vec![Advertiser::new(10.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.08f32; g.num_edges()]];
        let ctp = CtpTable::constant(300, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (a_std, _) = tirm_allocate(&p, opts(21));
        let mut o = opts(21);
        o.exact_drop_selection = true;
        let (a_exact, _) = tirm_allocate(&p, o);
        let r_std = evaluate(&p, &a_std, 8_000, 2, 2).regret.total();
        let r_exact = evaluate(&p, &a_exact, 8_000, 2, 2).regret.total();
        assert!(r_exact <= r_std * 1.5 + 1.0, "std {r_std} exact {r_exact}");
    }

    #[test]
    fn seeded_with_index_plan_matches_plain() {
        let g = generators::preferential_attachment(300, 3, 0.2, 5);
        let h = 2;
        let ads = (0..h)
            .map(|_| Advertiser::new(12.0, 1.0, TopicDist::single(1, 0)))
            .collect::<Vec<_>>();
        let probs = vec![vec![0.1f32; g.num_edges()]; h];
        let ctp = CtpTable::constant(300, h, 0.5);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(2), 0.0);
        let (a, _) = tirm_allocate(&p, opts(42));
        let plan: Vec<AdSeeds> = (0..h).map(|i| AdSeeds::for_index(42, i)).collect();
        let (b, _) = tirm_allocate_seeded(&p, opts(42), &plan);
        for i in 0..h {
            assert_eq!(a.seeds(i), b.seeds(i));
        }
    }

    #[test]
    fn warm_rerun_is_bit_identical_and_samples_nothing() {
        let g = generators::preferential_attachment(400, 4, 0.2, 9);
        let h = 3;
        let mk = || {
            let ads = (0..h)
                .map(|i| Advertiser::new(10.0 + i as f64, 1.0, TopicDist::single(1, 0)))
                .collect::<Vec<_>>();
            let probs = vec![vec![0.06f32; g.num_edges()]; h];
            let ctp = CtpTable::constant(400, h, 0.3);
            ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(3), 0.0)
        };
        let p = mk();
        let plan: Vec<AdSeeds> = (0..h)
            .map(|i| AdSeeds::for_ad_id(7, 100 + i as u64))
            .collect();
        let (cold, cold_stats, warm) =
            tirm_allocate_warm(&p, opts(7), &plan, vec![None, None, None]);
        let cached: Vec<usize> = warm.iter().map(|w| w.num_sets()).collect();
        assert!(warm.iter().all(|w| w.memory_bytes() > 0));

        // Re-running on the warm capital must reproduce the allocation
        // bit for bit without drawing a single fresh RR set.
        let p2 = mk();
        let (hot, hot_stats, warm2) =
            tirm_allocate_warm(&p2, opts(7), &plan, warm.into_iter().map(Some).collect());
        for i in 0..h {
            assert_eq!(cold.seeds(i), hot.seeds(i), "ad {i}");
        }
        assert_eq!(cold_stats.estimated_revenue, hot_stats.estimated_revenue);
        let cached2: Vec<usize> = warm2.iter().map(|w| w.num_sets()).collect();
        assert_eq!(cached, cached2, "warm rerun must not sample");

        // And the warm result equals the plain seeded batch run.
        let (batch, _) = tirm_allocate_seeded(&mk(), opts(7), &plan);
        for i in 0..h {
            assert_eq!(batch.seeds(i), hot.seeds(i));
        }
    }

    #[test]
    fn ad_id_seed_plans_are_stable_and_distinct() {
        let a = AdSeeds::for_ad_id(5, 1);
        assert_eq!(a, AdSeeds::for_ad_id(5, 1));
        assert_ne!(a, AdSeeds::for_ad_id(5, 2));
        assert_ne!(a, AdSeeds::for_ad_id(6, 1));
        assert_ne!(a.kpt, a.engine);
    }

    #[test]
    fn reports_rr_memory() {
        let g = generators::erdos_renyi(200, 800, 3);
        let ads = vec![Advertiser::new(5.0, 1.0, TopicDist::single(1, 0))];
        let probs = vec![vec![0.1f32; g.num_edges()]];
        let ctp = CtpTable::constant(200, 1, 1.0);
        let p = ProblemInstance::new(&g, ads, probs, ctp, Attention::Uniform(1), 0.0);
        let (_, stats) = tirm_allocate(&p, opts(8));
        assert!(stats.memory_bytes > 0);
        assert_eq!(stats.rr_sets_per_ad.len(), 1);
        assert!(stats.rr_sets_per_ad[0] > 0);
    }
}
