//! Stand-alone serving frontend: generate (or snapshot-load) a dataset,
//! bind a TCP port, and serve the wire protocol until a client sends a
//! `shutdown` request.
//!
//! ```text
//! # terminal 1 — serve an EPINIONS-like network on port 7401
//! cargo run -p tirm_server --bin tirm_server --release -- \
//!     --dataset EPINIONS --bind 127.0.0.1:7401
//!
//! # terminal 2 — drive it (see `loadgen` in tirm_bench)
//! cargo run -p tirm_bench --bin loadgen --release -- \
//!     --addr 127.0.0.1:7401 --events 200 --readers 4 --shutdown
//! ```
//!
//! Flags:
//! * `--dataset NAME`   — FLIXSTER | EPINIONS | DBLP | LIVEJOURNAL
//!   (default EPINIONS).
//! * `--model NAME`     — topic | exp | wc (default: canonical).
//! * `--bind ADDR`      — listen address (default `127.0.0.1:7401`;
//!   port 0 picks an ephemeral port, printed on stderr).
//! * `--kappa N` / `--lambda F` / `--seed N` — serving parameters.
//! * `--queue-depth N`  — write-queue bound (admission control; default
//!   64).
//! * `--max-connections N` — connection admission bound (default 64).
//! * `--state-dir DIR`  — enable durability: recover from DIR on boot,
//!   then WAL every admitted mutation (group-commit fsync) and
//!   checkpoint on a cadence. Without it the server is memory-only.
//! * `--checkpoint-interval N` — applied events between checkpoints
//!   (default 256; needs `--state-dir`).
//! * `--segment-events N` — WAL frames per segment file (default 1024;
//!   needs `--state-dir`).
//! * `--shard-writers S` — per-ad shard threads for reconciliation
//!   (default 1 = classic single-writer; any S is bit-identical).
//! * `--follow ADDR` — run as a **follower** of the leader at ADDR:
//!   tail its WAL over the wire, serve snapshot-swapped reads at
//!   `--bind`, answer mutations with a typed `not_leader` redirect.
//!   Requires `--state-dir` (the follower keeps its own WAL +
//!   checkpoints). A wire `promote` request turns this process into
//!   the leader in place: fencing epoch bumped, same state dir, same
//!   bind address.
//! * `--peer ADDR` — (repeatable, follower mode) other replicas to try
//!   when the leader stops answering — how a follower finds the new
//!   leader after a hand-off.
//! * `--metrics-addr ADDR` — serve the observability registry over
//!   HTTP: `GET /metrics` (Prometheus text) and `GET /metrics.json`
//!   (structured dump). Out-of-band — reads the registry, never the
//!   serving state. Works in leader and follower modes; port 0 picks
//!   an ephemeral port, printed on stderr.
//! * `--metrics-json PATH` — on clean shutdown, write the final
//!   registry snapshot to PATH as JSON (atomic temp+rename).
//! * `--trace-json PATH` — flight-recorder dump: on clean shutdown
//!   *or panic*, write the event-lineage timeline to PATH as Chrome
//!   trace-event JSON (atomic temp+rename; load in `about:tracing`).
//!   A SIGKILL leaves no dump — scrape HTTP `/trace.json` for
//!   last-breath timelines instead.
//!
//! `TIRM_SCALE` / `TIRM_THREADS` scale the run; `TIRM_SNAPSHOT_DIR`
//! warm-starts the dataset from the binary snapshot cache.

use std::process::ExitCode;
use tirm_server::{serve, serve_follower, wal, FollowerConfig, ServerConfig};
use tirm_workloads::{Dataset, DatasetKind, ProbModel, ScaleConfig};

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: tirm_server [--dataset NAME] [--model topic|exp|wc] [--bind ADDR] \
         [--kappa N] [--lambda F] [--seed N] [--queue-depth N] [--max-connections N] \
         [--state-dir DIR] [--checkpoint-interval N] [--segment-events N] [--shard-writers S] \
         [--follow LEADER_ADDR [--peer ADDR]...] [--metrics-addr ADDR] [--metrics-json PATH] \
         [--trace-json PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut dataset_kind = DatasetKind::Epinions;
    let mut model: Option<ProbModel> = None;
    let mut bind = "127.0.0.1:7401".to_string();
    let mut kappa = 2u32;
    let mut lambda = 0.0f64;
    let mut seed = 0x0e5e_17f1u64;
    let mut queue_depth = 64usize;
    let mut max_connections = 64usize;
    let mut state_dir: Option<String> = None;
    let mut checkpoint_interval: Option<u64> = None;
    let mut segment_events: Option<u64> = None;
    let mut shard_writers = 1usize;
    let mut follow: Option<String> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut metrics_addr: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut trace_json: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => match args.next().as_deref().and_then(DatasetKind::parse) {
                Some(d) => dataset_kind = d,
                None => return usage("--dataset expects FLIXSTER|EPINIONS|DBLP|LIVEJOURNAL"),
            },
            "--model" => match args.next().as_deref().and_then(ProbModel::parse) {
                Some(m) => model = Some(m),
                None => return usage("--model expects topic|exp|wc"),
            },
            "--bind" => match args.next() {
                Some(a) => bind = a,
                None => return usage("--bind expects an address"),
            },
            "--kappa" => match args.next().and_then(|s| s.parse().ok()) {
                Some(k) if k >= 1 => kappa = k,
                _ => return usage("--kappa expects a positive integer"),
            },
            "--lambda" => match args.next().and_then(|s| s.parse().ok()) {
                Some(l) if l >= 0.0 && f64::is_finite(l) => lambda = l,
                _ => return usage("--lambda expects a non-negative float"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--queue-depth" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => queue_depth = n,
                _ => return usage("--queue-depth expects a positive integer"),
            },
            "--max-connections" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => max_connections = n,
                _ => return usage("--max-connections expects a positive integer"),
            },
            "--state-dir" => match args.next() {
                Some(d) if !d.is_empty() => state_dir = Some(d),
                _ => return usage("--state-dir expects a directory path"),
            },
            "--checkpoint-interval" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => checkpoint_interval = Some(n),
                _ => return usage("--checkpoint-interval expects a positive integer"),
            },
            "--segment-events" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => segment_events = Some(n),
                _ => return usage("--segment-events expects a positive integer"),
            },
            "--shard-writers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => shard_writers = n,
                _ => return usage("--shard-writers expects a positive integer"),
            },
            "--follow" => match args.next() {
                Some(a) if !a.is_empty() => follow = Some(a),
                _ => return usage("--follow expects the leader's address"),
            },
            "--peer" => match args.next() {
                Some(a) if !a.is_empty() => peers.push(a),
                _ => return usage("--peer expects a replica address"),
            },
            "--metrics-addr" => match args.next() {
                Some(a) if !a.is_empty() => metrics_addr = Some(a),
                _ => return usage("--metrics-addr expects an address"),
            },
            "--metrics-json" => match args.next() {
                Some(p) if !p.is_empty() => metrics_json = Some(p),
                _ => return usage("--metrics-json expects a file path"),
            },
            "--trace-json" => match args.next() {
                Some(p) if !p.is_empty() => trace_json = Some(p),
                _ => return usage("--trace-json expects a file path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let model = model.unwrap_or_else(|| ProbModel::canonical(dataset_kind));
    let cfg = ScaleConfig::from_env();
    eprintln!(
        "== tirm_server {} / {} κ={kappa} λ={lambda} | scale={} threads={} ==",
        dataset_kind.name(),
        model.name(),
        cfg.scale,
        cfg.threads
    );
    let (dataset, timing) = Dataset::load_or_generate_env(dataset_kind, model, &cfg, seed);
    if timing.warm_s > 0.0 {
        eprintln!("dataset warm-loaded from snapshot in {:.3}s", timing.warm_s);
    } else {
        eprintln!("dataset generated in {:.3}s", timing.cold_s);
    }

    // The perf suite's θ-cap scaling convention, so a served instance
    // measures under the same cap as the suite's cells at this scale;
    // shared with out-of-process oracles via the library.
    let online = tirm_server::serving_online_config(dataset_kind, &cfg, kappa, lambda, seed);

    // The metrics endpoint outlives role changes: one HTTP server for
    // the whole process, spanning follower tailing and a post-promotion
    // leader run alike (the registry is process-global).
    let _metrics_server = match &metrics_addr {
        Some(addr) => match tirm_obs::http::serve(addr) {
            Ok(srv) => {
                eprintln!("metrics on http://{}/metrics", srv.addr());
                Some(srv)
            }
            Err(e) => {
                eprintln!("error: metrics endpoint bind failed on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Crash flight recorder: a panic anywhere in the process dumps the
    // lineage timeline before unwinding continues, so the last thing
    // the server did is reconstructable post-mortem. (A SIGKILL leaves
    // no dump — the soaks scrape /trace.json right before each kill.)
    if let Some(path) = trace_json.clone() {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let dump = tirm_obs::flight::dump_chrome_json();
            match tirm_graph::snapshot::write_atomic(std::path::Path::new(&path), dump.as_bytes()) {
                Ok(()) => eprintln!("panic — flight-recorder dump written to {path}"),
                Err(e) => eprintln!("panic — flight-recorder dump to {path} failed: {e}"),
            }
            previous(info);
        }));
    }

    // Final registry snapshot on clean shutdown — same atomic
    // temp+rename discipline as checkpoints, so a scraper never reads a
    // torn dump.
    let dump_metrics_json = |path: &Option<String>| -> ExitCode {
        if let Some(path) = path {
            let dump = tirm_obs::dump_json();
            if let Err(e) =
                tirm_graph::snapshot::write_atomic(std::path::Path::new(path), dump.as_bytes())
            {
                eprintln!("error: metrics dump to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("metrics dump written to {path}");
        }
        ExitCode::SUCCESS
    };

    // Clean-shutdown twin of the panic hook above.
    let dump_trace_json = |path: &Option<String>| -> ExitCode {
        if let Some(path) = path {
            let dump = tirm_obs::flight::dump_chrome_json();
            if let Err(e) =
                tirm_graph::snapshot::write_atomic(std::path::Path::new(path), dump.as_bytes())
            {
                eprintln!("error: flight-recorder dump to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("flight-recorder dump written to {path}");
        }
        ExitCode::SUCCESS
    };

    // Follower mode: tail the leader until shutdown or promotion; a
    // promotion falls through into the leader path below over the same
    // state dir and bind address.
    if let Some(leader_addr) = follow {
        let Some(dir) = state_dir.clone() else {
            return usage("--follow requires --state-dir (a follower keeps its own WAL)");
        };
        let mut fcfg = FollowerConfig::new(leader_addr.clone(), &dir);
        fcfg.online = online.clone();
        fcfg.bind = bind.clone();
        fcfg.peer_addrs = peers.clone();
        fcfg.max_connections = max_connections;
        if let Some(n) = checkpoint_interval {
            fcfg.checkpoint_interval = n;
        }
        if let Some(n) = segment_events {
            fcfg.segment_events = n;
        }
        let followed = serve_follower(&dataset.graph, &dataset.topic_probs, fcfg, |handle| {
            eprintln!(
                "following {leader_addr} — serving reads on {} (state dir [{dir}], wal_seq {}, \
                 fencing epoch {}); send {{\"type\":\"promote\"}} to take over, \
                 {{\"type\":\"shutdown\"}} to stop",
                handle.addr(),
                handle.wal_seq(),
                handle.fencing_epoch(),
            );
            handle.wait_shutdown();
        });
        match followed {
            Ok(((), report)) => {
                eprintln!(
                    "follower wound down at seq {} (lag {}): {} applied ({} re-rejected), \
                     {} bootstrap(s), {} fenced reject(s)",
                    report.frontier.durable_seq,
                    report.frontier.lag(),
                    report.applied,
                    report.rejected_on_apply,
                    report.bootstraps,
                    report.fenced_rejects,
                );
                if !report.promoted {
                    let trace_rc = dump_trace_json(&trace_json);
                    let metrics_rc = dump_metrics_json(&metrics_json);
                    return if metrics_rc != ExitCode::SUCCESS {
                        metrics_rc
                    } else {
                        trace_rc
                    };
                }
                match wal::bump_fencing_epoch(std::path::Path::new(&dir)) {
                    Ok(epoch) => {
                        eprintln!("promoted — taking over as leader under fencing epoch {epoch}")
                    }
                    Err(e) => {
                        eprintln!("error: fencing epoch bump failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut builder = ServerConfig::builder()
        .online(online)
        .bind(bind)
        .queue_depth(queue_depth)
        .max_connections(max_connections)
        .shard_writers(shard_writers);
    if let Some(dir) = &state_dir {
        builder = builder.state_dir(dir);
    }
    if let Some(n) = checkpoint_interval {
        builder = builder.checkpoint_interval(n);
    }
    if let Some(n) = segment_events {
        builder = builder.segment_events(n);
    }
    let server_cfg = match builder.build() {
        Ok(cfg) => cfg,
        Err(why) => return usage(&why),
    };
    // A promoted follower re-binds the port its own listener just
    // closed; lingering TIME_WAIT connections can hold it briefly, so
    // retry AddrInUse for a bounded window instead of dying mid
    // hand-off.
    let mut bind_attempts = 0u32;
    let served = loop {
        let served = serve(
            &dataset.graph,
            &dataset.topic_probs,
            server_cfg.clone(),
            |handle| {
                eprintln!(
                    "listening on {} (queue depth {queue_depth}, ≤ {max_connections} connections, \
                     {shard_writers} shard writer(s), durability {}); \
                     send {{\"type\":\"shutdown\"}} to stop",
                    handle.addr(),
                    match &state_dir {
                        Some(d) => format!(
                            "on [{d}], wal_seq {}, fencing epoch {}",
                            handle.wal_seq(),
                            handle.fencing_epoch()
                        ),
                        None => "off".to_string(),
                    },
                );
                handle.wait_shutdown();
                eprintln!("shutdown requested — draining the write queue");
            },
        );
        match &served {
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && bind_attempts < 50 => {
                bind_attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            _ => break served,
        }
    };
    match served {
        Ok(((), report)) => {
            if let Some(rec) = &report.recovery {
                eprintln!(
                    "recovery: checkpoint {:?}, {} replayed ({} re-rejected), resumed at wal_seq {}",
                    rec.checkpoint_seq, rec.replayed, rec.rejected_on_replay, rec.wal_seq
                );
                for w in &rec.warnings {
                    eprintln!("recovery warning: {w}");
                }
            }
            eprintln!(
                "drained. epoch {} | {} accepted / {} shed ({:.1}% shed) / {} rejected / {} bad \
                 frames | max queue {} | {} connections ({} refused) | {} live ads, {} seeds, \
                 regret {:.3}",
                report.final_snapshot.epoch,
                report.accepted,
                report.shed,
                report.shed_rate() * 100.0,
                report.rejected,
                report.bad_requests,
                report.max_queue_depth,
                report.connections,
                report.connections_refused,
                report.final_snapshot.num_ads(),
                report.final_snapshot.total_seeds(),
                report.final_snapshot.regret_estimate,
            );
            let trace_rc = dump_trace_json(&trace_json);
            let metrics_rc = dump_metrics_json(&metrics_json);
            if metrics_rc != ExitCode::SUCCESS {
                metrics_rc
            } else {
                trace_rc
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
