//! Offline, API-compatible subset of `serde` (serialization only).
//!
//! Provides the [`Serialize`] / [`Serializer`] traits plus a
//! `#[derive(Serialize)]` macro (re-exported from the vendored
//! `serde_derive`), covering exactly the surface this workspace uses:
//! named-field structs, `#[serde(serialize_with = "path")]`, and the
//! primitive / `Vec` / `Option` impls. The only consumer is the vendored
//! `serde_json`.

pub mod ser;

pub use ser::{Serialize, Serializer};

// Derive macro (macro namespace; coexists with the trait of the same name).
pub use serde_derive::Serialize;
