//! Fig. 3(a–d): total regret (log scale in the paper) vs attention bound
//! κ ∈ {1..5}, at λ ∈ {0, 0.5}, on the FLIXSTER- and EPINIONS-like data
//! sets, for all four algorithms.
//!
//! Expected shape (paper §6.1): TIRM < GREEDY-IRIE ≪ MYOPIC ≈ MYOPIC+;
//! TIRM's regret falls as κ grows, the myopic baselines' regret rises
//! (more seeds → more uncontrolled virality → larger overshoot).

use tirm_bench::{banner, run_quality_cell, write_json, AlgoKind, QualityWorkload};
use tirm_core::report::{fnum, Table};
use tirm_workloads::DatasetKind;

fn main() {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Flixster, DatasetKind::Epinions] {
        let w = QualityWorkload::new(kind, 0xf163 + kind as u64);
        banner(&format!("fig3: {}", kind.name()), &w.cfg);
        for lambda in [0.0, 0.5] {
            let mut t = Table::new(&["kappa", "Myopic", "Myopic+", "IRIE", "TIRM"]);
            for kappa in 1..=5u32 {
                let mut cells = vec![kappa.to_string()];
                for algo in AlgoKind::ALL {
                    let row = run_quality_cell(&w, algo, kappa, lambda, 0x5eed);
                    eprintln!(
                        "  {} λ={lambda} κ={kappa} {}: regret={:.1} ({:.1}% of budget) seeds={} in {:.1}s",
                        kind.name(),
                        algo.name(),
                        row.total_regret,
                        100.0 * row.relative_regret,
                        row.total_seeds,
                        row.runtime_s
                    );
                    cells.push(fnum(row.total_regret));
                    rows.push(row);
                }
                t.row(cells);
            }
            println!(
                "\nFig. 3 — {} (lambda = {lambda}): total regret vs attention bound",
                kind.name()
            );
            println!("{}", t.render());
        }
    }
    write_json("fig3", &rows);
}
