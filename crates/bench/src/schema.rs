//! The versioned, machine-readable benchmark artifact (`BENCH_<sha>.json`).
//!
//! Every experiment in the repo — the scenario-matrix `perf_suite`, the
//! figure/table binaries, the ablations — reports through [`BenchCell`] /
//! [`BenchReport`], so any two artifacts can be joined on cell ids and
//! diffed by `bench_diff`. The vendored `serde` is serialize-only;
//! decoding goes through the vendored `serde_json` parser's [`Value`] tree
//! (see [`BenchReport::from_json_str`]), which keeps the schema honest:
//! a field that doesn't survive the round trip fails the tier-1 tests.

use serde::Serialize;
use serde_json::Value;
use std::path::Path;
use tirm_workloads::ScaleConfig;

/// Version stamp of the artifact layout. Bump on any field change; the
/// decoder rejects *newer* versions and reads older ones leniently
/// (fields added later default), so `bench_diff` can still gate a fresh
/// artifact against an older committed baseline.
///
/// v2 added the dataset ingestion timings `dataset_cold_s` /
/// `dataset_warm_s` (cache-miss vs cache-hit cost; absent ⇒ 0.0 in v1
/// artifacts).
///
/// v3 added the online-serving metrics `latency_p50_us` /
/// `latency_p95_us` / `latency_p99_us` / `events_per_s` (0.0 on batch
/// cells; absent ⇒ 0.0 in v1/v2 artifacts).
///
/// v4 added the network-serving metrics `read_p99_us` / `reads_per_s` /
/// `shed_rate` (0.0 outside `SERVING/…` cells; absent ⇒ 0.0 in pre-v4
/// artifacts).
///
/// v5 added the RR-index layout metrics `bytes_per_posting` /
/// `legacy_bytes_per_posting` (deterministic — the arena-vs-legacy
/// footprint ratio the regression gate pins) and the machine-dependent
/// `postings_scan_mentries_per_s` scan-throughput probe (0.0 outside
/// TIRM cells; absent ⇒ 0.0 in pre-v5 artifacts).
///
/// v6 added the replication metrics `follower_reads_per_s` /
/// `follower_lag_p99` (0.0 outside `SERVING-REPL/…` cells; absent ⇒
/// 0.0 in pre-v6 artifacts).
pub const SCHEMA_VERSION: u64 = 6;

/// Where an artifact was measured. Wall-clock comparisons are only
/// meaningful between comparable environments (same OS/arch/CPU count);
/// deterministic payloads are comparable everywhere.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct EnvFingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism when the suite ran.
    pub cpus: usize,
    /// True for debug builds (timings from those are never comparable).
    pub debug_assertions: bool,
    /// `TIRM_SCALE` multiplier in effect.
    pub scale: f64,
    /// Monte-Carlo evaluation runs in effect.
    pub eval_runs: usize,
}

impl EnvFingerprint {
    /// Fingerprint of this process under the given scale configuration.
    pub fn current(cfg: &ScaleConfig) -> Self {
        EnvFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            debug_assertions: cfg!(debug_assertions),
            scale: cfg.scale,
            eval_runs: cfg.eval_runs,
        }
    }

    /// True when wall-clock times from `self` and `other` can be compared
    /// with a relative threshold (same machine class and fidelity).
    pub fn time_comparable(&self, other: &EnvFingerprint) -> bool {
        self.os == other.os
            && self.arch == other.arch
            && self.cpus == other.cpus
            && !self.debug_assertions
            && !other.debug_assertions
            && self.scale == other.scale
            && self.eval_runs == other.eval_runs
    }
}

/// One measured scenario cell. The `id` is the join key between two
/// artifacts; everything below `wall_s` is wall-clock/machine-dependent,
/// everything above is deterministic given the cell's seed.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct BenchCell {
    /// Stable cell identity (`DATASET/model/ALLOC/t1/k1/l0`, or a
    /// bin-specific id like `FIG6/DBLP/wc/TIRM/h5/B50`).
    pub id: String,
    /// Data set name.
    pub dataset: String,
    /// Probability model name (`topic` / `exp` / `wc`).
    pub prob_model: String,
    /// Allocator name (`TIRM` / `GREEDY` / `IRIE`, or an ablation label).
    pub allocator: String,
    /// Worker threads used by the allocator and evaluator.
    pub threads: usize,
    /// Attention bound κ.
    pub kappa: u32,
    /// Penalty λ.
    pub lambda: f64,
    /// RNG seed the cell ran with. Stored as a hex *string* in JSON: the
    /// vendored `serde_json` keeps numbers as `f64`, which cannot carry
    /// full-width hash-derived seeds (> 2^53) losslessly.
    #[serde(serialize_with = "ser_u64_hex")]
    pub seed: u64,
    /// Graph nodes.
    pub nodes: usize,
    /// Graph arcs.
    pub edges: usize,
    /// Advertisers h.
    pub ads: usize,
    /// Total RR sets sampled (θ summed over ads; 0 for non-RR allocators).
    pub theta: usize,
    /// Seeds allocated in total.
    pub total_seeds: usize,
    /// Distinct users targeted (Table 3 metric).
    pub distinct_targeted: usize,
    /// MC-evaluated total regret (Eq. 4); 0 when the cell skips evaluation.
    pub total_regret: f64,
    /// Regret / total budget; 0 when the cell skips evaluation.
    pub relative_regret: f64,
    /// MC-evaluated total revenue; 0 when the cell skips evaluation.
    pub revenue: f64,
    /// Bytes held by the algorithm's dominant structures (Table 4 metric).
    pub memory_bytes: usize,
    /// RR-index bytes per stored posting entry after end-of-run
    /// compaction — `postings_bytes / postings_entries`. Deterministic
    /// (both numerator and denominator are), so cross-machine diffs can
    /// pin the arena layout's footprint. 0 for non-RR cells and cells
    /// that sampled nothing; absent pre-v5, decoded as 0.
    pub bytes_per_posting: f64,
    /// Same ratio costed under the pre-arena `Vec<Vec<u32>>` layout
    /// (per-node header + capacity slack). The `bytes_per_posting /
    /// legacy_bytes_per_posting` quotient is the layout's measured
    /// reduction. 0 for non-RR cells; absent pre-v5, decoded as 0.
    pub legacy_bytes_per_posting: f64,
    /// Allocation wall-clock seconds.
    pub wall_s: f64,
    /// Evaluation wall-clock seconds (0 when evaluation is skipped).
    pub eval_s: f64,
    /// Seconds this cell's dataset cost as a *cache miss*: generation
    /// from scratch, plus snapshot write-back when a `TIRM_SNAPSHOT_DIR`
    /// is in use. 0 when the dataset came from a snapshot or was already
    /// in memory from an earlier cell of the same run. Absent in
    /// schema-v1 artifacts (decoded as 0).
    pub dataset_cold_s: f64,
    /// Seconds spent *loading* this cell's dataset from a
    /// `TIRM_SNAPSHOT_DIR` snapshot (warm). 0 when generated cold or
    /// reused in memory. Absent in schema-v1 artifacts (decoded as 0).
    pub dataset_warm_s: f64,
    /// RR-set sampling throughput, `theta / wall_s` (0 for non-RR cells).
    pub rr_sets_per_s: f64,
    /// Synthetic postings-scan probe: millions of posting entries
    /// traversed per second through the arena index, measured once per
    /// suite run and stamped on its TIRM cells (0 elsewhere). Machine-
    /// dependent — a cache-locality canary, not a gate; absent pre-v5,
    /// decoded as 0.
    pub postings_scan_mentries_per_s: f64,
    /// Online cells: median per-event serving latency in microseconds
    /// (0 on batch cells; absent in pre-v3 artifacts, decoded as 0).
    pub latency_p50_us: f64,
    /// Online cells: p95 per-event serving latency in microseconds.
    pub latency_p95_us: f64,
    /// Online cells: p99 per-event serving latency in microseconds.
    pub latency_p99_us: f64,
    /// Online cells: accepted events per wall-clock second.
    pub events_per_s: f64,
    /// Network serving cells: p99 latency of the concurrent readers'
    /// wire queries in microseconds — the snapshot-swapped read path
    /// under a grinding writer (0 elsewhere; absent pre-v4, decoded 0).
    pub read_p99_us: f64,
    /// Network serving cells: read queries served per wall-clock second
    /// across the reader pool.
    pub reads_per_s: f64,
    /// Network serving cells: mutations shed by admission control /
    /// offered mutations (retries count as offers, so deterministic-
    /// delivery runs report their backpressure here).
    pub shed_rate: f64,
    /// Replicated serving cells: read queries answered by the follower
    /// per wall-clock second — the replication read path's throughput
    /// (0 elsewhere; absent pre-v6, decoded 0).
    pub follower_reads_per_s: f64,
    /// Replicated serving cells: p99 of the follower's replication lag
    /// in events, sampled at each reader's periodic stats probe.
    pub follower_lag_p99: f64,
    /// Process peak RSS (`VmHWM`) when the cell finished, bytes; 0 if
    /// unavailable. A high-water mark is monotone across a run, so this
    /// is *not* a per-cell quantity: it depends on matrix order and
    /// filtering, and `bench_diff` only gates the run-wide maximum.
    pub peak_rss_bytes: usize,
}

impl BenchCell {
    /// Zeroes every machine-dependent field, leaving the deterministic
    /// metric payload — what the determinism test and cross-machine diffs
    /// compare.
    pub fn strip_timings(&mut self) {
        self.wall_s = 0.0;
        self.eval_s = 0.0;
        self.dataset_cold_s = 0.0;
        self.dataset_warm_s = 0.0;
        self.rr_sets_per_s = 0.0;
        self.postings_scan_mentries_per_s = 0.0;
        self.latency_p50_us = 0.0;
        self.latency_p95_us = 0.0;
        self.latency_p99_us = 0.0;
        self.events_per_s = 0.0;
        self.read_p99_us = 0.0;
        self.reads_per_s = 0.0;
        self.shed_rate = 0.0;
        self.follower_reads_per_s = 0.0;
        self.follower_lag_p99 = 0.0;
        self.peak_rss_bytes = 0;
    }
}

/// A full benchmark artifact: fingerprinted, versioned cells.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct BenchReport {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Git commit the artifact was measured at (`unknown` outside a repo).
    pub git_sha: String,
    /// Tier or experiment name (`quick`, `full`, `fig6`, `ablation`, …).
    pub tier: String,
    /// Seconds since the Unix epoch when the run started.
    pub created_unix: u64,
    /// Environment fingerprint.
    pub env: EnvFingerprint,
    /// Measured cells, in matrix order.
    pub cells: Vec<BenchCell>,
}

/// Decode failure when reading a `BENCH_*.json` artifact.
#[derive(Debug)]
pub enum SchemaError {
    /// The file is not syntactically valid JSON.
    Parse(String),
    /// A required field is absent or has the wrong type.
    Field(String),
    /// The artifact was written by an unknown (newer) schema version.
    Version(u64),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Parse(e) => write!(f, "invalid JSON: {e}"),
            SchemaError::Field(which) => write!(f, "missing or mistyped field `{which}`"),
            SchemaError::Version(v) => write!(
                f,
                "artifact has schema_version {v}, this binary understands {SCHEMA_VERSION}"
            ),
            SchemaError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for SchemaError {}

fn ser_u64_hex<S: serde::Serializer>(v: &u64, s: S) -> Result<S::Ok, S::Error> {
    s.serialize_str(&format!("{v:#018x}"))
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, SchemaError> {
    v.get(key)
        .ok_or_else(|| SchemaError::Field(key.to_string()))
}

fn u64_hex_field(v: &Value, key: &str) -> Result<u64, SchemaError> {
    field(v, key)?
        .as_str()
        .and_then(|s| s.strip_prefix("0x"))
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| SchemaError::Field(key.to_string()))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, SchemaError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| SchemaError::Field(key.to_string()))
}

/// A field added in schema version `since`: required (strict) in
/// artifacts of that version or newer, and defaulted to `0.0` only when
/// decoding an *older* artifact that predates the field — a newer cell
/// missing it is mistyped/corrupt and is rejected like any other missing
/// metric field.
fn f64_field_since(
    v: &Value,
    key: &str,
    since: u64,
    schema_version: u64,
) -> Result<f64, SchemaError> {
    if schema_version >= since {
        return f64_field(v, key);
    }
    match v.get(key) {
        None => Ok(0.0),
        Some(val) => val
            .as_f64()
            .ok_or_else(|| SchemaError::Field(key.to_string())),
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, SchemaError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| SchemaError::Field(key.to_string()))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, SchemaError> {
    Ok(u64_field(v, key)? as usize)
}

fn str_field(v: &Value, key: &str) -> Result<String, SchemaError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| SchemaError::Field(key.to_string()))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, SchemaError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| SchemaError::Field(key.to_string()))
}

impl EnvFingerprint {
    fn from_value(v: &Value) -> Result<Self, SchemaError> {
        Ok(EnvFingerprint {
            os: str_field(v, "os")?,
            arch: str_field(v, "arch")?,
            cpus: usize_field(v, "cpus")?,
            debug_assertions: bool_field(v, "debug_assertions")?,
            scale: f64_field(v, "scale")?,
            eval_runs: usize_field(v, "eval_runs")?,
        })
    }
}

impl BenchCell {
    fn from_value(v: &Value, schema_version: u64) -> Result<Self, SchemaError> {
        Ok(BenchCell {
            id: str_field(v, "id")?,
            dataset: str_field(v, "dataset")?,
            prob_model: str_field(v, "prob_model")?,
            allocator: str_field(v, "allocator")?,
            threads: usize_field(v, "threads")?,
            kappa: u64_field(v, "kappa")? as u32,
            lambda: f64_field(v, "lambda")?,
            seed: u64_hex_field(v, "seed")?,
            nodes: usize_field(v, "nodes")?,
            edges: usize_field(v, "edges")?,
            ads: usize_field(v, "ads")?,
            theta: usize_field(v, "theta")?,
            total_seeds: usize_field(v, "total_seeds")?,
            distinct_targeted: usize_field(v, "distinct_targeted")?,
            total_regret: f64_field(v, "total_regret")?,
            relative_regret: f64_field(v, "relative_regret")?,
            revenue: f64_field(v, "revenue")?,
            memory_bytes: usize_field(v, "memory_bytes")?,
            bytes_per_posting: f64_field_since(v, "bytes_per_posting", 5, schema_version)?,
            legacy_bytes_per_posting: f64_field_since(
                v,
                "legacy_bytes_per_posting",
                5,
                schema_version,
            )?,
            wall_s: f64_field(v, "wall_s")?,
            eval_s: f64_field(v, "eval_s")?,
            dataset_cold_s: f64_field_since(v, "dataset_cold_s", 2, schema_version)?,
            dataset_warm_s: f64_field_since(v, "dataset_warm_s", 2, schema_version)?,
            rr_sets_per_s: f64_field(v, "rr_sets_per_s")?,
            postings_scan_mentries_per_s: f64_field_since(
                v,
                "postings_scan_mentries_per_s",
                5,
                schema_version,
            )?,
            latency_p50_us: f64_field_since(v, "latency_p50_us", 3, schema_version)?,
            latency_p95_us: f64_field_since(v, "latency_p95_us", 3, schema_version)?,
            latency_p99_us: f64_field_since(v, "latency_p99_us", 3, schema_version)?,
            events_per_s: f64_field_since(v, "events_per_s", 3, schema_version)?,
            read_p99_us: f64_field_since(v, "read_p99_us", 4, schema_version)?,
            reads_per_s: f64_field_since(v, "reads_per_s", 4, schema_version)?,
            shed_rate: f64_field_since(v, "shed_rate", 4, schema_version)?,
            follower_reads_per_s: f64_field_since(v, "follower_reads_per_s", 6, schema_version)?,
            follower_lag_p99: f64_field_since(v, "follower_lag_p99", 6, schema_version)?,
            peak_rss_bytes: usize_field(v, "peak_rss_bytes")?,
        })
    }
}

impl BenchReport {
    /// Assembles a report around measured cells, stamping the current
    /// time and commit.
    pub fn new(tier: &str, env: EnvFingerprint, cells: Vec<BenchCell>) -> Self {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: git_sha(),
            tier: tier.to_string(),
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            env,
            cells,
        }
    }

    /// Pretty-printed JSON (what lands on disk).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Decodes an artifact produced by [`Self::to_json_string`].
    pub fn from_json_str(s: &str) -> Result<Self, SchemaError> {
        let v = serde_json::from_str(s).map_err(|e| SchemaError::Parse(e.to_string()))?;
        let schema_version = u64_field(&v, "schema_version")?;
        if schema_version > SCHEMA_VERSION {
            return Err(SchemaError::Version(schema_version));
        }
        let cells = field(&v, "cells")?
            .as_array()
            .ok_or_else(|| SchemaError::Field("cells".to_string()))?
            .iter()
            .map(|c| BenchCell::from_value(c, schema_version))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            git_sha: str_field(&v, "git_sha")?,
            tier: str_field(&v, "tier")?,
            created_unix: u64_field(&v, "created_unix")?,
            env: EnvFingerprint::from_value(field(&v, "env")?)?,
            cells,
        })
    }

    /// Reads and decodes an artifact file.
    pub fn load(path: &Path) -> Result<Self, SchemaError> {
        let text = std::fs::read_to_string(path).map_err(SchemaError::Io)?;
        Self::from_json_str(&text)
    }

    /// Writes the artifact, creating parent directories as needed.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Looks a cell up by id.
    pub fn cell(&self, id: &str) -> Option<&BenchCell> {
        self.cells.iter().find(|c| c.id == id)
    }
}

/// Current commit: `$GITHUB_SHA` (CI), else `git rev-parse`, else
/// `unknown`. Truncated to 12 hex chars for file names.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().chars().take(12).collect::<String>())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_cell(id: &str) -> BenchCell {
        BenchCell {
            id: id.to_string(),
            dataset: "FLIXSTER".into(),
            prob_model: "topic".into(),
            allocator: "TIRM".into(),
            threads: 1,
            kappa: 1,
            lambda: 0.5,
            // Deliberately > 2^53: seeds must survive via the hex-string
            // encoding, not f64 numbers.
            seed: 0xdead_beef_dead_beef,
            nodes: 480,
            edges: 6400,
            ads: 10,
            theta: 123_456,
            total_seeds: 42,
            distinct_targeted: 40,
            total_regret: 17.25,
            relative_regret: 0.31,
            revenue: 38.5,
            memory_bytes: 1_048_576,
            bytes_per_posting: 5.5,
            legacy_bytes_per_posting: 8.25,
            wall_s: 0.75,
            eval_s: 0.125,
            dataset_cold_s: 3.5,
            dataset_warm_s: 0.25,
            rr_sets_per_s: 164_608.0,
            postings_scan_mentries_per_s: 420.0,
            latency_p50_us: 850.0,
            latency_p95_us: 2_100.0,
            latency_p99_us: 4_200.0,
            events_per_s: 118.5,
            read_p99_us: 310.0,
            reads_per_s: 5_400.0,
            shed_rate: 0.125,
            follower_reads_per_s: 2_700.0,
            follower_lag_p99: 12.0,
            peak_rss_bytes: 52_428_800,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![
                sample_cell("a/b/TIRM/t1/k1/l0.5"),
                sample_cell("c/d/IRIE/t2/k1/l0.5"),
            ],
        );
        let text = report.to_json_string();
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn rejects_future_versions_and_missing_fields() {
        let mut report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![],
        );
        report.schema_version = SCHEMA_VERSION + 1;
        let text = report.to_json_string();
        assert!(matches!(
            BenchReport::from_json_str(&text),
            Err(SchemaError::Version(_))
        ));
        assert!(matches!(
            BenchReport::from_json_str("{}"),
            Err(SchemaError::Field(_))
        ));
        assert!(matches!(
            BenchReport::from_json_str("not json"),
            Err(SchemaError::Parse(_))
        ));
        // A cell missing a metric field is rejected, not zero-filled.
        let text = r#"{"schema_version":1,"git_sha":"x","tier":"quick","created_unix":0,
            "env":{"os":"linux","arch":"x86_64","cpus":1,"debug_assertions":false,
                   "scale":1,"eval_runs":10},
            "cells":[{"id":"a"}]}"#;
        assert!(matches!(
            BenchReport::from_json_str(text),
            Err(SchemaError::Field(_))
        ));
    }

    #[test]
    fn strip_timings_zeroes_machine_fields_only() {
        let mut c = sample_cell("x");
        c.strip_timings();
        assert_eq!(c.wall_s, 0.0);
        assert_eq!(c.eval_s, 0.0);
        assert_eq!(c.dataset_cold_s, 0.0);
        assert_eq!(c.dataset_warm_s, 0.0);
        assert_eq!(c.rr_sets_per_s, 0.0);
        assert_eq!(c.postings_scan_mentries_per_s, 0.0);
        assert_eq!(c.latency_p50_us, 0.0);
        assert_eq!(c.latency_p95_us, 0.0);
        assert_eq!(c.latency_p99_us, 0.0);
        assert_eq!(c.events_per_s, 0.0);
        assert_eq!(c.read_p99_us, 0.0);
        assert_eq!(c.reads_per_s, 0.0);
        assert_eq!(c.shed_rate, 0.0);
        assert_eq!(c.peak_rss_bytes, 0);
        assert_eq!(c.theta, 123_456, "deterministic payload untouched");
        assert_eq!(c.total_regret, 17.25);
        assert_eq!(
            c.bytes_per_posting, 5.5,
            "layout ratios are deterministic, not timings"
        );
        assert_eq!(c.legacy_bytes_per_posting, 8.25);
    }

    #[test]
    fn v1_artifacts_without_ingestion_timings_still_load() {
        // A schema-v1 cell (no dataset_cold_s / dataset_warm_s) must
        // decode with zeros, not be rejected — committed baselines predate
        // the fields.
        let report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![sample_cell("v1cell")],
        );
        let mut text = report.to_json_string();
        text = text.replace("\"schema_version\": 6", "\"schema_version\": 1");
        for key in [
            "dataset_cold_s",
            "dataset_warm_s",
            "latency_p50_us",
            "latency_p95_us",
            "latency_p99_us",
            "read_p99_us",
            "reads_per_s",
            "shed_rate",
            // v5 additions; list the plain key before its `legacy_…`
            // superstring so `find` strips the right line.
            "bytes_per_posting",
            "legacy_bytes_per_posting",
            "postings_scan_mentries_per_s",
            "events_per_s",
        ] {
            let from = text.find(key).expect("field serialized");
            let to = text[from..].find('\n').unwrap() + from + 1;
            text.replace_range(from - 1..to, ""); // leading quote … newline
        }
        assert!(!text.contains("dataset_cold_s"));
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.cells[0].dataset_cold_s, 0.0);
        assert_eq!(back.cells[0].dataset_warm_s, 0.0);
        assert_eq!(back.cells[0].latency_p50_us, 0.0);
        assert_eq!(back.cells[0].events_per_s, 0.0);
        assert_eq!(back.cells[0].wall_s, 0.75, "other fields unaffected");
        // Present but mistyped is still an error.
        let bad = text.replace(
            "\"eval_s\": 0.125,",
            "\"eval_s\": 0.125, \"dataset_cold_s\": \"x\",",
        );
        assert!(matches!(
            BenchReport::from_json_str(&bad),
            Err(SchemaError::Field(_))
        ));
        // The leniency is version-gated: a v2 artifact missing a v2 field
        // is corrupt and must be rejected, not zero-filled.
        let v2_missing = text.replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(matches!(
            BenchReport::from_json_str(&v2_missing),
            Err(SchemaError::Field(_))
        ));
    }

    #[test]
    fn v2_artifacts_without_latency_metrics_still_load() {
        // PR-3-era baselines are v2: no serving metrics. They must decode
        // with zeros; a v3 artifact missing them is rejected.
        let report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![sample_cell("v2cell")],
        );
        let mut text = report.to_json_string();
        text = text.replace("\"schema_version\": 6", "\"schema_version\": 2");
        for key in [
            "latency_p50_us",
            "latency_p95_us",
            "latency_p99_us",
            "events_per_s",
            "read_p99_us",
            "reads_per_s",
            "shed_rate",
        ] {
            let from = text.find(key).expect("field serialized");
            let to = text[from..].find('\n').unwrap() + from + 1;
            text.replace_range(from - 1..to, "");
        }
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(back.schema_version, 2);
        assert_eq!(back.cells[0].latency_p50_us, 0.0);
        assert_eq!(back.cells[0].latency_p95_us, 0.0);
        assert_eq!(back.cells[0].latency_p99_us, 0.0);
        assert_eq!(back.cells[0].events_per_s, 0.0);
        assert_eq!(
            back.cells[0].dataset_cold_s, 3.5,
            "v2 fields still strict in v2"
        );
        let v3_missing = text.replace("\"schema_version\": 2", "\"schema_version\": 3");
        assert!(matches!(
            BenchReport::from_json_str(&v3_missing),
            Err(SchemaError::Field(_))
        ));
    }

    #[test]
    fn v3_artifacts_without_serving_frontend_metrics_still_load() {
        // PR-4-era baselines are v3: no network-serving metrics. They
        // must decode with zeros; a v4 artifact missing them is
        // rejected.
        let report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![sample_cell("v3cell")],
        );
        let mut text = report.to_json_string();
        text = text.replace("\"schema_version\": 6", "\"schema_version\": 3");
        for key in ["read_p99_us", "reads_per_s", "shed_rate"] {
            let from = text.find(key).expect("field serialized");
            let to = text[from..].find('\n').unwrap() + from + 1;
            text.replace_range(from - 1..to, "");
        }
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(back.schema_version, 3);
        assert_eq!(back.cells[0].read_p99_us, 0.0);
        assert_eq!(back.cells[0].reads_per_s, 0.0);
        assert_eq!(back.cells[0].shed_rate, 0.0);
        assert_eq!(
            back.cells[0].latency_p99_us, 4_200.0,
            "v3 fields still strict in v3"
        );
        let v4_missing = text.replace("\"schema_version\": 3", "\"schema_version\": 4");
        assert!(matches!(
            BenchReport::from_json_str(&v4_missing),
            Err(SchemaError::Field(_))
        ));
    }

    #[test]
    fn v4_artifacts_without_postings_layout_metrics_still_load() {
        // PR-5-era baselines are v4: no RR-index layout metrics. They
        // must decode with zeros; a v5 artifact missing them is
        // rejected.
        let report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![sample_cell("v4cell")],
        );
        let mut text = report.to_json_string();
        text = text.replace("\"schema_version\": 6", "\"schema_version\": 4");
        // The plain key before its `legacy_…` superstring so `find`
        // strips the right line.
        for key in [
            "bytes_per_posting",
            "legacy_bytes_per_posting",
            "postings_scan_mentries_per_s",
        ] {
            let from = text.find(key).expect("field serialized");
            let to = text[from..].find('\n').unwrap() + from + 1;
            text.replace_range(from - 1..to, "");
        }
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(back.schema_version, 4);
        assert_eq!(back.cells[0].bytes_per_posting, 0.0);
        assert_eq!(back.cells[0].legacy_bytes_per_posting, 0.0);
        assert_eq!(back.cells[0].postings_scan_mentries_per_s, 0.0);
        assert_eq!(
            back.cells[0].read_p99_us, 310.0,
            "v4 fields still strict in v4"
        );
        let v5_missing = text.replace("\"schema_version\": 4", "\"schema_version\": 5");
        assert!(matches!(
            BenchReport::from_json_str(&v5_missing),
            Err(SchemaError::Field(_))
        ));
    }

    #[test]
    fn time_comparability_requires_matching_machine_class() {
        let a = EnvFingerprint {
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 4,
            debug_assertions: false,
            scale: 0.08,
            eval_runs: 200,
        };
        let mut b = a.clone();
        assert!(a.time_comparable(&b));
        b.cpus = 8;
        assert!(!a.time_comparable(&b));
        b = a.clone();
        b.debug_assertions = true;
        assert!(!a.time_comparable(&b));
        b = a.clone();
        b.scale = 1.0;
        assert!(!a.time_comparable(&b));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("tirm_schema_test");
        let path = dir.join("BENCH_test.json");
        let report = BenchReport::new(
            "quick",
            EnvFingerprint::current(&ScaleConfig::default()),
            vec![sample_cell("roundtrip")],
        );
        report.save(&path).unwrap();
        let back = BenchReport::load(&path).unwrap();
        assert_eq!(report, back);
        assert!(back.cell("roundtrip").is_some());
        assert!(back.cell("absent").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_sha_is_nonempty() {
        assert!(!git_sha().is_empty());
    }
}
