//! Multicore acceptance tier — the parallel hot path measured on real
//! cores, not simulated ones.
//!
//! Every test here is `#[ignore]`d and additionally self-gates on
//! `available_parallelism() ≥ 4`: the PR CI container is 1-CPU, where a
//! 4-thread speedup assertion is meaningless. The nightly `multicore`
//! job runs them with
//!
//! ```text
//! cargo test --release -p tirm_bench --test multicore -- --ignored --nocapture
//! ```
//!
//! and uploads the `BENCH_multicore.json` artifact the suite-cell test
//! writes under `target/experiments/` (override via
//! `TIRM_EXPERIMENTS_DIR`).
//!
//! Acceptance floors (release builds on ≥4 idle cores):
//! * [`parallel_sampler_scales_on_four_threads`] — the RR sampling
//!   engine must clear **1.6×** at 4 threads over 1 (arena sharding +
//!   ordered merge; the merge and the shared frontier are the only
//!   serial parts).
//! * [`tirm_cells_speed_up_with_threads`] — end-to-end TIRM allocation
//!   cells at t4 vs t1 must clear 1.3× (sampling dominates but
//!   selection is serial).
//! * [`server_keeps_reading_under_a_grinding_writer`] — the serving
//!   cell's reader pool must make progress on every connection and
//!   sustain a positive read rate while mutations grind.

use tirm_bench::schema::{BenchReport, EnvFingerprint};
use tirm_bench::suite::{run_scenario, run_serving_cell, SuiteConfig};
use tirm_bench::write_report;
use tirm_rrset::{ParallelSampler, RrCollection, RrSampler, SamplingConfig};
use tirm_workloads::{AllocatorKind, Dataset, ScaleConfig, Tier};

/// True when the machine can honestly measure a 4-thread speedup.
fn multicore() -> bool {
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if cpus < 4 {
        eprintln!("skipping: multicore acceptance needs ≥4 CPUs, found {cpus}");
        return false;
    }
    true
}

/// Best-of-`reps` wall time of `f` — the minimum is the least noisy
/// estimator of the true cost on a shared machine.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
#[ignore = "multicore acceptance: needs ≥4 CPUs, run via the nightly multicore job"]
fn parallel_sampler_scales_on_four_threads() {
    if !multicore() {
        return;
    }
    let cfg = ScaleConfig {
        scale: 0.25,
        eval_runs: 0,
        threads: 1,
    };
    let d = Dataset::generate(tirm_workloads::DatasetKind::Epinions, &cfg, 1);
    let ad = tirm_topics::TopicDist::concentrated(10, 0, 0.91);
    let probs = d.topic_probs.project(&ad);
    let sampler = RrSampler::new(&d.graph, &probs);
    let n = d.graph.num_nodes();
    let theta = 120_000usize;

    let time_at = |threads: usize| {
        best_of(3, || {
            let mut engine = ParallelSampler::new(SamplingConfig::new(threads, 7), n);
            let mut coll = RrCollection::new(n);
            let drawn = engine.sample_into(&sampler, theta, &mut coll);
            assert_eq!(drawn, theta);
        })
    };
    let t1 = time_at(1);
    let t4 = time_at(4);
    let speedup = t1 / t4;
    eprintln!("parallel sampler: t1={t1:.3}s t4={t4:.3}s speedup={speedup:.2}x");
    assert!(
        speedup >= 1.6,
        "4-thread RR sampling must clear 1.6x over 1 thread, got {speedup:.2}x \
         (t1={t1:.3}s, t4={t4:.3}s)"
    );
}

#[test]
#[ignore = "multicore acceptance: needs ≥4 CPUs, run via the nightly multicore job"]
fn tirm_cells_speed_up_with_threads() {
    if !multicore() {
        return;
    }
    let cfg = SuiteConfig::from_env(Tier::Quick);
    let spec = Tier::Quick
        .matrix()
        .into_iter()
        .find(|s| s.allocator == AllocatorKind::Tirm && !s.online && !s.serving)
        .expect("quick tier has a batch TIRM cell");

    let mut cells = Vec::new();
    let mut wall_at = |threads: usize| {
        let mut spec = spec;
        spec.threads = threads;
        // Warm-up + measured run: the first run pays dataset generation
        // and page faults; the second is the comparable number.
        let _ = run_scenario(&spec, &cfg.scale, cfg.base_seed);
        let cell = run_scenario(&spec, &cfg.scale, cfg.base_seed);
        let wall = cell.wall_s;
        cells.push(cell);
        wall
    };
    let w1 = wall_at(1);
    let w4 = wall_at(4);
    let speedup = w1 / w4;
    eprintln!(
        "tirm cell {}: t1={w1:.3}s t4={w4:.3}s speedup={speedup:.2}x",
        spec.id()
    );

    write_report(
        "BENCH_multicore",
        &BenchReport::new("multicore", EnvFingerprint::current(&cfg.scale), cells),
    );
    assert!(
        speedup >= 1.3,
        "4-thread TIRM allocation must clear 1.3x over 1 thread, got {speedup:.2}x \
         (t1={w1:.3}s, t4={w4:.3}s)"
    );
}

#[test]
#[ignore = "multicore acceptance: needs ≥4 CPUs, run via the nightly multicore job"]
fn server_keeps_reading_under_a_grinding_writer() {
    if !multicore() {
        return;
    }
    let cfg = SuiteConfig::from_env(Tier::Quick);
    let mut spec = Tier::Quick
        .matrix()
        .into_iter()
        .find(|s| s.serving)
        .expect("quick tier has a serving cell");
    spec.threads = 4;
    let dataset = Dataset::generate_with_model(
        spec.dataset,
        spec.model,
        &cfg.scale,
        spec.problem_seed(cfg.base_seed),
    );
    // `run_serving_cell` already asserts every reader connection made
    // progress while the writer ground through the mutation stream; the
    // acceptance here is that the read path stays live at 4 threads.
    let cell = run_serving_cell(&dataset, &spec, &cfg.scale, cfg.base_seed);
    eprintln!(
        "serving cell {}: {:.0} reads/s, read p99={:.0}µs, shed {:.1}%",
        cell.id,
        cell.reads_per_s,
        cell.read_p99_us,
        cell.shed_rate * 100.0
    );
    assert!(
        cell.reads_per_s > 0.0,
        "reader pool must sustain a positive read rate under mutation"
    );
}
